"""An audited Interactive-workload run (spec chapters 3.4 and 6).

Reproduces the auditing workflow end to end:

1. generate the dataset and load the bulk part (load time measured);
2. create a validation dataset and run the driver's validation mode;
3. execute the workload — update streams with frequency-interleaved
   complex reads and runtime short-read sequences — under a time
   compression ratio;
4. check the 95 % on-time rule and emit the Full Disclosure Report.

Run:  python examples/interactive_audit.py
"""

from repro import SocialNetworkBenchmark
from repro.analysis.report import BenchmarkChecklist, full_disclosure_report


def main() -> None:
    # -- 6.1: preparation & load -----------------------------------------
    bench = SocialNetworkBenchmark.generate(num_persons=300, seed=42)
    print(
        f"dataset loaded: {bench.graph.node_count()} nodes in"
        f" {bench.load_seconds:.2f}s (~SF {bench.scale_factor:.4f})"
    )

    # -- 6.2: validation mode ---------------------------------------------
    validation_set = bench.create_validation_set(bindings_per_query=1)
    mismatches = bench.validate(validation_set)
    print(
        f"validation: {len(validation_set['entries'])} queries checked,"
        f" {len(mismatches)} mismatches"
    )
    if mismatches:
        raise SystemExit("validation failed — aborting audit")

    # -- 6.2: the measured run ---------------------------------------------
    # A fresh SUT for the measured run (validation warmed the caches of
    # the Python process, which stands in for the spec's warmup phase).
    measured = SocialNetworkBenchmark(bench.network)
    report = measured.run_driver(max_updates=1000)
    print(f"\nresults log ({report.total_operations} operations):")
    print(report.format_table())
    print(f"valid run per the 95% rule: {report.is_valid_run}")

    # -- FDR --------------------------------------------------------------
    checklist = BenchmarkChecklist(
        cross_validated_one_sf=True,
        persistent_storage=False,
        acid_transactions=False,
        warmup_rounds=1,
        execution_rounds=1,
        summarization="single measured run (demo)",
    )
    print()
    print(
        full_disclosure_report(
            scale_description=(
                f"{len(measured.network.persons)} persons"
                f" (~SF {measured.scale_factor:.4f})"
            ),
            load_seconds=measured.load_seconds,
            report=report,
            checklist=checklist,
        )
    )


if __name__ == "__main__":
    main()
