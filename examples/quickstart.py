"""Quickstart: generate a micro social network, run queries, and drive
the Interactive workload.

Run:  python examples/quickstart.py
"""

from repro import SocialNetworkBenchmark


def main() -> None:
    # 1. Generate a deterministic network (~0.01 scale-factor equivalent)
    #    and bulk-load the first 90 % of it into the in-memory SUT.
    bench = SocialNetworkBenchmark.generate(num_persons=300, seed=42)
    graph = bench.graph
    print(
        f"loaded {len(graph.persons)} persons, "
        f"{len(graph.posts)} posts, {len(graph.comments)} comments, "
        f"{len(graph.likes_edges)} likes "
        f"(~SF {bench.scale_factor:.4f}, load {bench.load_seconds:.2f}s)"
    )

    # 2. A BI read with curated parameters: BI 12, trending posts.
    print("\nBI 12 — trending posts (top 5):")
    for row in bench.bi.run(12)[:5]:
        print(
            f"  message {row.message_id} by {row.creator_first_name} "
            f"{row.creator_last_name}: {row.like_count} likes"
        )

    # 3. A BI read with explicit parameters: BI 13 for a named country.
    print("\nBI 13 — popular tags per month in India (top 3 months):")
    for row in bench.bi.run(13, "India")[:3]:
        tags = ", ".join(f"{name} ({count})" for name, count in row.popular_tags[:3])
        print(f"  {row.year}-{row.month:02d}: {tags}")

    # 4. An Interactive complex read: IC 9, messages of the 2-hop circle.
    print("\nIC 9 — recent messages from friends and friends of friends:")
    for row in bench.interactive.run_complex(9)[:5]:
        print(
            f"  {row.person_first_name} {row.person_last_name}: "
            f"{row.message_content[:40]!r}"
        )

    # 5. Replay the update streams with the full query mix (the
    #    Interactive workload), then print the driver's results table.
    print("\ndriver run (first 500 update-stream operations):")
    report = bench.run_driver(max_updates=500)
    print(report.format_table())


if __name__ == "__main__":
    main()
