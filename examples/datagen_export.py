"""Datagen tour: generate a network and export every serializer format
(spec section 2.3.4) plus the update streams, then reload the CsvBasic
dataset and prove the round trip.

Run:  python examples/datagen_export.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import DatagenConfig, SocialGraph, generate
from repro.datagen.serializers import SERIALIZERS, serialize_csv, serialize_turtle
from repro.datagen.update_streams import build_update_streams, write_update_streams
from repro.graph.loader import load_csv_basic


def main(output_dir: Path) -> None:
    config = DatagenConfig(num_persons=200, seed=42)
    net = generate(config)
    print(
        f"generated {len(net.persons)} persons -> {net.node_count()} nodes,"
        f" {net.edge_count()} edges"
    )
    print(
        f"simulation {config.start_year}-01-01 +{config.num_years}y,"
        f" update cutoff at t={net.cutoff}"
    )

    for variant in SERIALIZERS:
        root = serialize_csv(net, output_dir / variant, variant)
        files = sorted(root.rglob("*.csv"))
        size_kb = sum(f.stat().st_size for f in files) / 1024
        print(f"\n{variant}: {len(files)} files, {size_kb:.0f} KiB")
        for path in files[:4]:
            print(f"  {path.relative_to(root)}")
        print("  ...")

    root = serialize_turtle(net, output_dir / "Turtle")
    for path in sorted(root.glob("*.ttl")):
        print(f"\nTurtle: {path.name} ({path.stat().st_size / 1024:.0f} KiB)")

    operations = build_update_streams(net)
    person_path, forum_path = write_update_streams(
        operations, output_dir / "CsvBasic"
    )
    print(
        f"\nupdate streams: {len(operations)} operations"
        f" ({person_path.name}, {forum_path.name})"
    )

    # Round trip: the loader (spec 6.1.3 load phase) must reproduce the
    # in-memory bulk graph exactly.
    loaded = load_csv_basic(output_dir / "CsvBasic" / "social_network")
    reference = SocialGraph.from_data(net, until=net.cutoff)
    assert loaded.node_count() == reference.node_count()
    assert len(loaded.knows_edges) == len(reference.knows_edges)
    print(
        f"\nround trip OK: reloaded {loaded.node_count()} nodes,"
        f" {len(loaded.knows_edges)} knows edges"
    )


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(Path(tmp))
