"""Business-intelligence analyst session — the scenario the BI workload
models: "analytic queries a social network company would like to perform
... to take advantage of the data and to discover new business
opportunities" (spec chapter 1).

Runs a themed selection of the BI reads and renders an analyst-style
report: posting volume, tag trends, community health (zombies), topic
experts and international reach.

Run:  python examples/bi_analytics_report.py
"""

from repro import SocialNetworkBenchmark
from repro.util.dates import format_date, make_date


def section(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main() -> None:
    bench = SocialNetworkBenchmark.generate(num_persons=400, seed=7)
    graph, params = bench.graph, bench.params

    section("Content volume (BI 1 — posting summary)")
    cutoff = make_date(2012, 10, 1)
    print(f"messages before {format_date(cutoff)}, by year/type/length:")
    print(f"{'year':>6} {'type':>8} {'len':>4} {'count':>7} {'avg':>7} {'%':>6}")
    for row in bench.bi.run(1, cutoff)[:10]:
        kind = "comment" if row.is_comment else "post"
        print(
            f"{row.year:>6} {kind:>8} {row.length_category:>4}"
            f" {row.message_count:>7} {row.average_message_length:>7.1f}"
            f" {row.percentage_of_messages:>6.2f}"
        )

    section("Trending now (BI 12) and tag momentum (BI 3)")
    for row in bench.bi.run(12, make_date(2012, 6, 1), 2)[:5]:
        print(
            f"  hot message {row.message_id}"
            f" ({row.creator_first_name} {row.creator_last_name}),"
            f" {row.like_count} likes"
        )
    print("tag momentum May->June 2012:")
    for row in bench.bi.run(3, 2012, 5)[:5]:
        print(
            f"  {row.tag_name}: {row.count_month1} -> {row.count_month2}"
            f" (diff {row.diff})"
        )

    section("Community health — zombies (BI 21)")
    country = params.country_names(1)[0]
    zombies = bench.bi.run(21, country, make_date(2012, 9, 1))
    print(f"{len(zombies)} low-activity profiles in {country}; worst:")
    for row in zombies[:5]:
        print(
            f"  person {row.zombie_id}: score {row.zombie_score:.2f}"
            f" ({row.zombie_like_count}/{row.total_like_count} zombie likes)"
        )

    section("Who owns a topic (BI 6 + BI 7)")
    tag = params.tag_names(1)[0]
    print(f"most active posters on '{tag}':")
    for row in bench.bi.run(6, tag)[:5]:
        print(
            f"  person {row.person_id}: score {row.score}"
            f" ({row.message_count} msgs, {row.reply_count} replies,"
            f" {row.like_count} likes)"
        )
    print(f"most authoritative on '{tag}':")
    for row in bench.bi.run(7, tag)[:5]:
        print(f"  person {row.person_id}: authority {row.authority_score}")

    section("International reach (BI 22 + BI 23)")
    countries = params.country_names(4)
    pairs = bench.bi.run(22, countries[0], countries[1])
    print(f"strongest {countries[0]}<->{countries[1]} dialogues:")
    for row in pairs[:5]:
        print(
            f"  {row.person1_id} ({row.city1_name}) <-> {row.person2_id}:"
            f" score {row.score}"
        )
    print(f"holiday destinations of {countries[0]} residents:")
    for row in bench.bi.run(23, countries[0])[:5]:
        print(f"  {row.destination_name} in month {row.month}: "
              f"{row.message_count} messages")

    section("High-level topic mix (BI 20)")
    classes = params.tagclass_names(4)
    for row in bench.bi.run(20, classes):
        print(f"  {row.tag_class_name}: {row.message_count} messages")


if __name__ == "__main__":
    main()
