"""The BI benchmark's two execution modes (VLDB 2022 methodology):

* the **power test** — a sequential pass over BI 1-25 on a frozen
  snapshot, scored by the geometric mean of runtimes;
* the **throughput test** — daily write microbatches (inserts IU 1-8
  *and* deletes DEL 1-8) alternating with blocks of BI reads.

Run:  python examples/bi_power_throughput.py
"""

from repro import SocialNetworkBenchmark
from repro.datagen.scale import approximate_scale_factor
from repro.driver.bi_driver import (
    build_microbatches,
    power_test,
    throughput_test,
)


def main() -> None:
    bench = SocialNetworkBenchmark.generate(num_persons=300, seed=42)
    sf = approximate_scale_factor(len(bench.network.persons))
    print(
        f"snapshot: {bench.graph.node_count()} nodes (~SF {sf:.4f}),"
        f" loaded in {bench.load_seconds:.2f}s"
    )

    print("\n-- power test (BI 1-25, sequential, curated parameters) --")
    result = power_test(bench.graph, bench.params, sf)
    print(result.format_table())

    print("\n-- throughput test (daily write microbatches + read blocks) --")
    batches = build_microbatches(bench.network, include_deletes=True)
    inserts = sum(len(b.inserts) for b in batches)
    deletes = sum(len(b.deletes) for b in batches)
    print(f"{len(batches)} daily batches: {inserts} inserts, {deletes} deletes")
    outcome = throughput_test(
        bench.graph, bench.params, batches, reads_per_batch=3
    )
    print(outcome.format_table())

    print("\n-- snapshot after churn --")
    print(
        f"{bench.graph.node_count()} nodes,"
        f" {len(bench.graph.knows_edges)} knows,"
        f" {len(bench.graph.likes_edges)} likes"
    )


if __name__ == "__main__":
    main()
