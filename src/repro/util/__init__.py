"""Shared utilities: deterministic RNG derivation, date arithmetic, top-k."""

from repro.util.dates import (
    MILLIS_PER_DAY,
    Date,
    DateTime,
    date_to_datetime,
    datetime_to_date,
    days_between,
    format_date,
    format_datetime,
    make_date,
    make_datetime,
    month_of,
    months_between_inclusive,
    parse_date,
    parse_datetime,
    year_of,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.topk import TopK

__all__ = [
    "MILLIS_PER_DAY",
    "Date",
    "DateTime",
    "DeterministicRng",
    "TopK",
    "date_to_datetime",
    "datetime_to_date",
    "days_between",
    "derive_seed",
    "format_date",
    "format_datetime",
    "make_date",
    "make_datetime",
    "month_of",
    "months_between_inclusive",
    "parse_date",
    "parse_datetime",
    "year_of",
]
