"""Date and DateTime handling per LDBC SNB spec Table 2.1.

The spec encodes:

* ``Date`` as ``yyyy-mm-dd`` with day precision.
* ``DateTime`` as ``yyyy-mm-ddTHH:MM:ss.sss+0000`` with millisecond
  precision, always in GMT.

Internally both are integers: a ``Date`` is a day number and a
``DateTime`` is milliseconds since the Unix epoch (UTC).  Integer
representations keep the generator deterministic and make comparisons
between the two types trivial: per spec section 3.2, a ``Date`` compared
against a ``DateTime`` is implicitly the ``DateTime`` at midnight GMT of
that day.
"""

from __future__ import annotations

import datetime as _dt

# Type aliases used in signatures across the code base.  A ``Date`` is a
# day ordinal (days since 1970-01-01); a ``DateTime`` is epoch millis.
Date = int
DateTime = int

MILLIS_PER_SECOND = 1_000
MILLIS_PER_MINUTE = 60 * MILLIS_PER_SECOND
MILLIS_PER_HOUR = 60 * MILLIS_PER_MINUTE
MILLIS_PER_DAY = 24 * MILLIS_PER_HOUR

_EPOCH = _dt.date(1970, 1, 1)


def make_date(year: int, month: int, day: int) -> Date:
    """Build a ``Date`` (day ordinal) from calendar components."""
    return (_dt.date(year, month, day) - _EPOCH).days


def make_datetime(
    year: int,
    month: int,
    day: int,
    hour: int = 0,
    minute: int = 0,
    second: int = 0,
    millisecond: int = 0,
) -> DateTime:
    """Build a ``DateTime`` (epoch millis, GMT) from calendar components."""
    days = make_date(year, month, day)
    return (
        days * MILLIS_PER_DAY
        + hour * MILLIS_PER_HOUR
        + minute * MILLIS_PER_MINUTE
        + second * MILLIS_PER_SECOND
        + millisecond
    )


def date_to_datetime(date: Date) -> DateTime:
    """Midnight GMT of ``date``, per the spec's Date/DateTime comparison rule."""
    return date * MILLIS_PER_DAY


def datetime_to_date(ts: DateTime) -> Date:
    """The calendar day a ``DateTime`` falls on (GMT)."""
    return ts // MILLIS_PER_DAY


def _as_date(date: Date) -> _dt.date:
    return _EPOCH + _dt.timedelta(days=date)


def format_date(date: Date) -> str:
    """Serialize per spec: ``yyyy-mm-dd``."""
    return _as_date(date).isoformat()


def format_datetime(ts: DateTime) -> str:
    """Serialize per spec: ``yyyy-mm-ddTHH:MM:ss.sss+0000``."""
    days, rem = divmod(ts, MILLIS_PER_DAY)
    hours, rem = divmod(rem, MILLIS_PER_HOUR)
    minutes, rem = divmod(rem, MILLIS_PER_MINUTE)
    seconds, millis = divmod(rem, MILLIS_PER_SECOND)
    return (
        f"{_as_date(days).isoformat()}T"
        f"{hours:02d}:{minutes:02d}:{seconds:02d}.{millis:03d}+0000"
    )


def parse_date(text: str) -> Date:
    """Parse ``yyyy-mm-dd`` into a day ordinal."""
    return (_dt.date.fromisoformat(text) - _EPOCH).days


def parse_datetime(text: str) -> DateTime:
    """Parse ``yyyy-mm-ddTHH:MM:ss.sss+0000`` into epoch millis."""
    date_part, time_part = text.split("T")
    time_part = time_part.removesuffix("+0000")
    hms, _, millis = time_part.partition(".")
    hour, minute, second = (int(x) for x in hms.split(":"))
    return make_datetime(
        *(int(x) for x in date_part.split("-")),
        hour=hour,
        minute=minute,
        second=second,
        millisecond=int(millis or 0),
    )


def year_of(ts: DateTime) -> int:
    """The spec's ``year(date)`` function (GMT)."""
    return _as_date(datetime_to_date(ts)).year


def month_of(ts: DateTime) -> int:
    """The spec's ``month(date)`` function, 1-12 (GMT)."""
    return _as_date(datetime_to_date(ts)).month


def day_of(ts: DateTime) -> int:
    """Day of month, 1-31 (GMT)."""
    return _as_date(datetime_to_date(ts)).day


def month_bucket(ts: DateTime) -> int:
    """The calendar-month ordinal of a ``DateTime`` (months since 1970-01).

    This is the bucketing key of the store's messages-by-month secondary
    index: contiguous month buckets make window scans a range of bucket
    lookups instead of a full scan (choke point CP-3.2).
    """
    d = _as_date(datetime_to_date(ts))
    return (d.year - 1970) * 12 + (d.month - 1)


def month_window(year: int, month: int) -> tuple[DateTime, DateTime]:
    """The closed-open ``DateTime`` interval covering one calendar month.

    Handles the December→January wrap: ``month_window(2012, 12)`` ends at
    midnight of 2013-01-01.  This is the single definition of the
    "messages created in a month" predicate that BI 3 and friends use.
    """
    start = make_datetime(year, month, 1)
    if month == 12:
        end = make_datetime(year + 1, 1, 1)
    else:
        end = make_datetime(year, month + 1, 1)
    return start, end


def days_between(start: Date, end: Date) -> int:
    """Whole days from ``start`` to ``end`` (may be negative)."""
    return end - start


def months_between_inclusive(start: DateTime, end: DateTime) -> int:
    """Month span with partial months on both ends counting as one month.

    This is the counting rule of BI 21 ("Zombies in a country"): a
    creationDate of Jan 31 and an endDate of Mar 1 span 3 months.
    """
    if end < start:
        raise ValueError("end must not precede start")
    s = _as_date(datetime_to_date(start))
    e = _as_date(datetime_to_date(end))
    return (e.year - s.year) * 12 + (e.month - s.month) + 1


def add_months(date: Date, months: int) -> Date:
    """Shift a day ordinal by a number of calendar months (day clamped)."""
    d = _as_date(date)
    total = d.year * 12 + (d.month - 1) + months
    year, month0 = divmod(total, 12)
    month = month0 + 1
    if month == 12:
        last_day = 31
    else:
        last_day = (_dt.date(year, month + 1, 1) - _dt.timedelta(days=1)).day
    return make_date(year, month, min(d.day, last_day))
