"""Bounded top-k accumulator (choke point CP-1.3, top-k pushdown).

Every read query in the workloads ends with ``ORDER BY ... LIMIT k``.
``TopK`` keeps only the best *k* rows seen so far using a bounded heap,
so queries never materialize and sort their full result set.  The
ablation benchmark FABL compares this against full sort.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")


class _Reversed:
    """Wrapper inverting comparison, for descending sort components."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def sort_key(*components: tuple[Any, bool]) -> tuple[Any, ...]:
    """Build a composite ascending sort key from (value, descending) pairs.

    Query definitions mix ascending and descending components (e.g. BI 12
    sorts likeCount descending, then message id ascending).  Numeric
    descending components are negated (cheap, compares at C speed);
    anything else is wrapped in a comparison-inverting object.
    """
    return tuple(
        (-v if isinstance(v, (int, float)) else _Reversed(v)) if desc else v
        for v, desc in components
    )


class TopK(Generic[T]):
    """Keep the ``k`` smallest items by ``key`` (ties resolved by key only).

    ``key`` must be a total order over the inserted rows — exactly what
    the spec's sort clauses define (a final unique-id component breaks
    ties everywhere it matters).

    Implementation: a buffer of up to ``2k`` candidates compacted by a
    (C-level) sort, plus a rejection threshold — once ``k`` rows are
    retained, rows at or above the k-th key are dropped with a single
    comparison.  This beats a binary heap here because heap sifting
    makes O(log k) Python-level comparisons per insert, while the
    threshold path makes one.
    """

    def __init__(self, k: int, key: Callable[[T], Any]) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._key = key
        self._buffer: list[tuple[Any, T]] = []
        #: Key of the current k-th best row, None until k rows are kept.
        self._threshold: Any = None
        self._capacity = max(2 * k, 64)

    def _compact(self) -> None:
        self._buffer.sort(key=lambda entry: entry[0])
        del self._buffer[self.k:]
        if len(self._buffer) == self.k:
            self._threshold = self._buffer[-1][0]

    def add(self, item: T) -> None:
        key = self._key(item)
        if self._threshold is not None and not key < self._threshold:
            return
        self._buffer.append((key, item))
        if len(self._buffer) >= self._capacity:
            self._compact()

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.add(item)

    def would_enter(self, key: Any) -> bool:
        """True if a row with ``key`` would make the current top-k.

        Lets callers skip expensive per-row work (projection, sub-queries)
        for rows that cannot affect the result — the essence of CP-1.3.
        """
        if self._threshold is None and len(self._buffer) >= self.k:
            self._compact()
        return self._threshold is None or key < self._threshold

    def __len__(self) -> int:
        self._compact()
        return len(self._buffer)

    def result(self) -> list[T]:
        """The retained items in ascending key order."""
        self._compact()
        return [item for _, item in self._buffer]

    def __iter__(self) -> Iterator[T]:
        return iter(self.result())
