"""Deterministic random number generation for Datagen.

The spec (section 2.3.3) requires Datagen to be *deterministic regardless
of the number of cores/machines used*.  The original generator achieves
this by seeding every MapReduce task from (master seed, task id).  We
reproduce the property with stream derivation: every generation stage and
every per-entity decision draws from a ``random.Random`` seeded by a
stable 64-bit hash of ``(master_seed, *labels)``, so the output never
depends on iteration order, process count or Python hash randomization.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Iterable, Sequence, TypeVar

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a stable 64-bit sub-seed from a master seed and labels.

    Labels may be strings or integers; they are folded into a SHA-256
    digest so distinct label tuples yield independent streams.
    """
    hasher = hashlib.sha256()
    hasher.update(str(master_seed).encode())
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(str(label).encode())
    return int.from_bytes(hasher.digest()[:8], "big") & _MASK64


class DeterministicRng:
    """A labelled random stream, plus helpers used throughout Datagen."""

    def __init__(self, master_seed: int, *labels: object) -> None:
        self.seed = derive_seed(master_seed, *labels)
        self._rng = random.Random(self.seed)

    # -- thin wrappers ---------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list[Any]) -> None:
        self._rng.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    # -- distributions used by the spec ----------------------------------
    def geometric(self, p: float) -> int:
        """Number of failures before the first success, support {0, 1, ...}.

        Used for the sorted-window edge picking of section 2.3.3.2: the
        probability of connecting to a person *k* positions away in the
        similarity ranking decays geometrically.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        u = self._rng.random()
        if p == 1.0:
            return 0
        # Inverse CDF of the geometric distribution.
        import math

        return int(math.log(1.0 - u) / math.log(1.0 - p))

    def zipf_rank(self, n: int, exponent: float = 1.0) -> int:
        """A rank in [0, n) drawn from a Zipf-like distribution.

        Implements the probability function F of the property-dictionary
        model (section 2.3.3.1): low ranks are much more likely.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        # Rejection-free approximation via inverse CDF of the continuous
        # bounded Pareto; adequate for dictionary value picking.
        u = self._rng.random()
        if exponent == 1.0:
            import math

            rank = int((n + 1) ** u) - 1
        else:
            import math

            h = (n + 1) ** (1.0 - exponent)
            rank = int((u * (h - 1.0) + 1.0) ** (1.0 / (1.0 - exponent))) - 1
        return min(max(rank, 0), n - 1)

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Pick an index proportionally to ``weights``."""
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must have a positive sum")
        target = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target < acc:
                return i
        return len(weights) - 1

    def subset(self, seq: Iterable[T], probability: float) -> list[T]:
        """Independent Bernoulli selection of elements."""
        return [x for x in seq if self._rng.random() < probability]
