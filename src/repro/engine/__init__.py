"""The shared query-operator layer (scan / expand / aggregate / top-k).

See :mod:`repro.engine.operators` for the operator inventory and
:mod:`repro.engine.stats` for the per-operator instrumentation the BI
driver surfaces in its run metrics.
"""

from repro.engine.operators import (
    expand,
    group_agg,
    group_count,
    morsel_ranges,
    scan_forum_morsel,
    scan_message_morsel,
    scan_person_morsel,
    scan_tag_morsel,
    scan_forum_posts,
    scan_forums,
    scan_likes,
    scan_messages,
    scan_persons,
    sort_key,
    top_k,
)
from repro.engine.stats import (
    COUNTER_NAMES,
    OperatorCounters,
    counters,
    merge_counters,
    reset_counters,
)

__all__ = [
    "COUNTER_NAMES",
    "OperatorCounters",
    "counters",
    "expand",
    "group_agg",
    "group_count",
    "merge_counters",
    "morsel_ranges",
    "reset_counters",
    "scan_forum_morsel",
    "scan_message_morsel",
    "scan_person_morsel",
    "scan_tag_morsel",
    "scan_forum_posts",
    "scan_forums",
    "scan_likes",
    "scan_messages",
    "scan_persons",
    "sort_key",
    "top_k",
]
