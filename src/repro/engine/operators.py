"""Reusable query operators with predicate pushdown and instrumentation.

The BI and Interactive read queries are compositions of a handful of
physical operators:

* :func:`scan_messages` — Message access with pushdown of temporal
  (creationDate window), tag, and creator predicates into the store's
  secondary indexes (CP-2.2 late projection / CP-3.2 dimensional
  clustering / CP-3.3 scattered index access);
* :func:`scan_forum_posts` — a Forum's Posts through the forum→post
  date index;
* :func:`expand` — adjacency flat-map (CP-2.3 index-based joins);
* :func:`group_count` / :func:`group_agg` — hash aggregation
  (CP-1.2 / CP-1.4);
* :func:`top_k` — the bounded-heap ORDER BY … LIMIT accumulator
  (CP-1.3 top-k pushdown), unifying :mod:`repro.util.topk`.

Every operator tallies its work into :mod:`repro.engine.stats`, so a
driver run can report rows scanned, the access path taken, and heap
activity per query.  Access-path selection honours the store's
``use_indexes`` / ``use_date_index`` / ``use_tag_index`` ablation flags:
with an index disabled the same operator silently degrades to a
filtered full scan, so ablation runs return identical rows.

When tracing is enabled (:mod:`repro.obs`), every operator additionally
opens a leaf ``operator`` span recording its access path and row count.
Scan/expand spans cover the *generator's lifetime* (opened at the first
row pulled, closed when the consumer exhausts or drops the iterator),
so their duration includes consumer time between pulls — the right
shape for seeing where a query's time goes, documented in
``docs/OBSERVABILITY.md``.  With tracing disabled the per-operator cost
is a single ``enabled`` check.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import Counter
from heapq import merge as _heap_merge
from itertools import compress, repeat
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, TypeVar, cast

from repro.engine.stats import counters
from repro.obs.spans import Span, tracer
from repro.graph.frozen import FrozenGraph
from repro.graph.store import SocialGraph

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.graph.delta import DeltaOverlay
from repro.schema.entities import Forum, Message, Person, Post
from repro.schema.relations import Likes
from repro.util.dates import DateTime
from repro.util.topk import TopK, sort_key

__all__ = [
    "morsel_ranges",
    "scan_message_morsel",
    "scan_forum_morsel",
    "scan_person_morsel",
    "scan_tag_morsel",
    "scan_messages",
    "scan_forum_posts",
    "scan_persons",
    "scan_forums",
    "scan_likes",
    "expand",
    "group_count",
    "group_agg",
    "top_k",
    "sort_key",
]

T = TypeVar("T")
K = TypeVar("K")
S = TypeVar("S")

#: (start, end) closed-open DateTime window; either bound may be None.
Window = "tuple[DateTime | None, DateTime | None]"


def _bounds(
    window: tuple[DateTime | None, DateTime | None] | None,
) -> tuple[DateTime | None, DateTime | None]:
    if window is None:
        return None, None
    start, end = window
    return start, end


def _in_bounds(
    ts: DateTime, start: DateTime | None, end: DateTime | None
) -> bool:
    return (start is None or ts >= start) and (end is None or ts < end)


def _operator_span(name: str, **attrs: Any) -> Span | None:
    """An ``operator`` leaf span, or ``None`` when tracing is disabled
    (the disabled path is one attribute check — the engine's hot-loop
    budget)."""
    trace = tracer()
    if not trace.enabled:
        return None
    return trace.open_span(name, kind="operator", **attrs)


def _close_operator_span(span: Span | None, rows: int) -> None:
    if span is not None:
        span.attrs["rows"] = rows
        span.close()


def scan_messages(
    graph: SocialGraph,
    *,
    window: tuple[DateTime | None, DateTime | None] | None = None,
    tag: int | None = None,
    creator: int | None = None,
    kind: str | None = None,
    language: "Iterable[str] | None" = None,
) -> Iterator[Message]:
    """Scan Messages, pushing the given predicates into the best index.

    ``window`` is a closed-open ``[start, end)`` creationDate interval
    (either bound ``None``); ``tag`` a Tag id the Message must carry;
    ``creator`` the creating Person's id; ``kind`` restricts to
    ``"post"`` or ``"comment"``; ``language`` keeps only Messages whose
    BI-18 language (a Comment's is its root Post's) is in the given
    set.  Access-path order: creator adjacency, tag postings
    (date-bisected), month buckets, full scan.  All remaining
    predicates are applied as filters, so every path returns the same
    rows; ``rows_scanned`` counts the rows produced after filtering on
    every path.  On a frozen snapshot the language predicate runs over
    the dictionary-encoded root-language code column (integer-set
    membership in C via ``map`` + ``compress``) instead of per-row
    root-post chasing.
    """
    start, end = _bounds(window)
    languages = None if language is None else frozenset(language)
    stats = counters()
    if creator is not None:
        if kind == "post":
            source: Iterable[Message] = graph.posts_by(creator)
        elif kind == "comment":
            source = graph.comments_by(creator)
        else:
            source = graph.messages_by(creator)
        if graph.use_indexes:
            stats.index_scans += 1
            access = "creator-index"
        else:
            stats.full_scans += 1
            access = "full"
        span = _operator_span("scan_messages", access=access)
        produced = 0
        try:
            for message in source:
                if not _in_bounds(message.creation_date, start, end):
                    continue
                if tag is not None and tag not in message.tag_ids:
                    continue
                if (
                    languages is not None
                    and graph.language_of_message(message) not in languages
                ):
                    continue
                produced += 1
                yield message
        finally:
            stats.rows_scanned += produced
            _close_operator_span(span, produced)
        return

    if tag is not None:
        if graph.use_indexes and graph.use_tag_index:
            stats.index_scans += 1
            access = "tag-index"
        else:
            stats.full_scans += 1
            access = "full"
        span = _operator_span("scan_messages", access=access)
        produced = 0
        try:
            for message in graph.messages_with_tag_in_window(tag, start, end):
                if kind == "post" and message.is_comment:
                    continue
                if kind == "comment" and not message.is_comment:
                    continue
                if (
                    languages is not None
                    and graph.language_of_message(message) not in languages
                ):
                    continue
                produced += 1
                yield message
        finally:
            stats.rows_scanned += produced
            _close_operator_span(span, produced)
        return

    if (start is not None or end is not None) and isinstance(
        graph, FrozenGraph
    ):
        overlay = graph.delta_overlay
        if overlay is not None and overlay.messages_dirty(kind):
            # Overlay merge path: per slab, bisect the base date column
            # as usual, filter base rows through the tombstone set, and
            # merge the date-windowed overlay inserts in
            # ``(creationDate, id)`` order.  Same counters as the other
            # window paths: one index scan, rows counted as produced.
            stats.index_scans += 1
            span = _operator_span(
                "scan_messages", access="frozen-overlay-merge"
            )
            produced = 0
            try:
                for message in _merge_overlay_slabs(
                    graph, overlay, kind, start, end
                ):
                    if (
                        languages is not None
                        and graph.language_of_message(message)
                        not in languages
                    ):
                        continue
                    produced += 1
                    yield message
            finally:
                stats.rows_scanned += produced
                _close_operator_span(span, produced)
            return
        # Frozen fast path: bisect the int64 date columns and yield the
        # ``(creationDate, id)``-sorted object lists by contiguous slice
        # — no month-bucket walk, no boundary re-checks.  Rows are
        # accounted per slice (frozen scans are consumed whole by every
        # query); the counter names and values match the live date-index
        # path exactly.
        stats.index_scans += 1
        span = _operator_span("scan_messages", access="frozen-date-column")
        produced = 0
        try:
            if languages is None:
                for objs, dates in graph.date_slabs(kind):
                    lo = 0 if start is None else bisect_left(dates, start)
                    hi = len(dates) if end is None else bisect_left(dates, end)
                    if lo < hi:
                        produced += hi - lo
                        yield from objs[lo:hi]
            else:
                # Language pushdown over the dictionary-encoded root-
                # language code column: integer-set membership via
                # ``map`` + ``compress``, all C-level per slab slice.
                wanted = graph.language_codes(languages)
                for objs, dates, codes in graph.language_slabs(kind):
                    lo = 0 if start is None else bisect_left(dates, start)
                    hi = len(dates) if end is None else bisect_left(dates, end)
                    if lo >= hi or not wanted:
                        continue
                    selected = list(
                        compress(
                            objs[lo:hi],
                            map(wanted.__contains__, codes[lo:hi]),
                        )
                    )
                    produced += len(selected)
                    yield from selected
        finally:
            stats.rows_scanned += produced
            _close_operator_span(span, produced)
        return

    if (start is not None or end is not None) and (
        graph.use_indexes and graph.use_date_index
    ):
        stats.index_scans += 1
        span = _operator_span("scan_messages", access="date-index")
        produced = 0
        try:
            for message in graph.messages_in_window(start, end, kind):
                if (
                    languages is not None
                    and graph.language_of_message(message) not in languages
                ):
                    continue
                produced += 1
                yield message
        finally:
            stats.rows_scanned += produced
            _close_operator_span(span, produced)
        return

    stats.full_scans += 1
    span = _operator_span("scan_messages", access="full")
    if kind == "post":
        source = graph.posts.values()
    elif kind == "comment":
        source = graph.comments.values()
    else:
        source = graph.messages()
    produced = 0
    try:
        for message in source:
            if not _in_bounds(message.creation_date, start, end):
                continue
            if (
                languages is not None
                and graph.language_of_message(message) not in languages
            ):
                continue
            produced += 1
            yield message
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


#: A morsel: one contiguous ``[lo, hi)`` row range of a frozen scan
#: slab (``"post"``/``"comment"``), or the whole-scan fallback
#: ``("*", 0, -1)`` when the graph has no clean frozen columns.
Morsel = tuple[str, int, int]


#: Entity slab kinds ``morsel_ranges`` can chunk besides the message
#: date slabs: forum ordinals, person ordinals (optionally restricted
#: to one Country's residents), and one tag's postings list.
ENTITY_SLAB_KINDS: frozenset[str] = frozenset({"forum", "person", "tag"})


def morsel_ranges(
    graph: SocialGraph,
    *,
    window: tuple[DateTime | None, DateTime | None] | None = None,
    kind: str | None = None,
    morsel_size: int = 65536,
    key: int | None = None,
) -> list[Morsel]:
    """Split a range-addressable scan into fixed-size morsels a pool
    can dispatch independently.

    ``kind`` selects the slab family.  ``None``/``"post"``/
    ``"comment"`` chunk the :func:`scan_messages` date slabs: each
    slab's ``window`` is bisected once and cut into ``[lo, hi)`` ranges
    of at most ``morsel_size`` rows.  The entity kinds chunk ordinal
    ranges instead: ``"forum"`` over the forum-ordinal column
    (:func:`scan_forum_morsel`), ``"tag"`` over Tag ``key``'s postings
    list (:func:`scan_tag_morsel`), and ``"person"`` over the
    person-ordinal column — or, with ``key`` set, over Country
    ``key``'s residents in sorted-id order (:func:`scan_person_morsel`).

    On a live store or a dirty overlaid view no scan is
    range-addressable, so one whole-scan fallback morsel
    ``("*", 0, -1)`` is returned and every morsel operator degrades to
    its serial counterpart.  Ranges are emitted in the serial frozen
    scan's row order (post slab before comment slab, ordinals
    ascending), so a merge in submission order is deterministic; an
    empty domain yields one degenerate zero-row morsel to keep the
    task-per-query accounting uniform.
    """
    if morsel_size < 1:
        raise ValueError("morsel_size must be >= 1")
    if not isinstance(graph, FrozenGraph) or graph.delta_overlay is not None:
        return [("*", 0, -1)]
    ranges: list[Morsel] = []
    if kind in ENTITY_SLAB_KINDS:
        if kind == "forum":
            total = len(graph._forum_ids)
        elif kind == "tag":
            postings = () if key is None else graph._tag_objs.get(key, [])
            total = len(postings)
        elif key is None:
            total = len(graph._person_ids)
        else:
            total = sum(1 for _ in graph.persons_in_country(key))
        for base in range(0, total, morsel_size):
            ranges.append((kind, base, min(base + morsel_size, total)))
        return ranges or [(kind, 0, 0)]
    start, end = _bounds(window)
    kinds = ("post", "comment") if kind is None else (kind,)
    for slab_kind in kinds:
        ((_objs, dates),) = graph.date_slabs(slab_kind)
        lo = 0 if start is None else bisect_left(dates, start)
        hi = len(dates) if end is None else bisect_left(dates, end)
        for base in range(lo, hi, morsel_size):
            ranges.append((slab_kind, base, min(base + morsel_size, hi)))
    if not ranges:
        ranges.append((kinds[0], 0, 0))
    return ranges


def scan_message_morsel(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    *,
    window: tuple[DateTime | None, DateTime | None] | None = None,
    language: "Iterable[str] | None" = None,
    lead: bool = True,
) -> Iterator[Message]:
    """One morsel of a frozen date-window scan: rows ``[lo, hi)`` of
    ``slab_kind``'s ``(creationDate, id)``-sorted slab, with the same
    language pushdown as :func:`scan_messages`.

    ``(slab_kind, lo, hi)`` must come from :func:`morsel_ranges` over
    an equivalent snapshot and the same ``window`` — the range *is* the
    window predicate, so no per-row date checks are repeated here.  The
    ``("*", 0, -1)`` fallback morsel delegates to :func:`scan_messages`
    wholesale.  ``lead`` marks the first morsel of a decomposed scan:
    only the lead tallies the scan's ``index_scans`` counter, so the
    summed counters of a morselized run stay independent of how many
    morsels the range was cut into; every morsel counts its own
    ``rows_scanned``.
    """
    if slab_kind == "*":
        yield from scan_messages(graph, window=window, language=language)
        return
    if not isinstance(graph, FrozenGraph):
        raise TypeError("slab morsels require a frozen snapshot")
    languages = None if language is None else frozenset(language)
    stats = counters()
    if lead:
        stats.index_scans += 1
    span = _operator_span(
        "scan_messages",
        access="frozen-morsel",
        morsel=f"{slab_kind}[{lo}:{hi}]",
    )
    produced = 0
    try:
        if languages is None:
            ((objs, _dates),) = graph.date_slabs(slab_kind)
            if lo < hi:
                produced += hi - lo
                yield from objs[lo:hi]
        else:
            wanted = graph.language_codes(languages)
            ((objs, _dates, codes),) = graph.language_slabs(slab_kind)
            if lo < hi and wanted:
                selected = list(
                    compress(
                        objs[lo:hi],
                        map(wanted.__contains__, codes[lo:hi]),
                    )
                )
                produced += len(selected)
                yield from selected
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


def scan_forum_morsel(
    graph: SocialGraph, lo: int, hi: int, *, lead: bool = True
) -> Iterator[Forum]:
    """One morsel of the full-Forum scan: ordinals ``[lo, hi)`` of the
    frozen forum-id column — the same order the serial
    :func:`scan_forums` walks on a clean snapshot.  ``lead`` gates the
    scan's once-per-scan ``full_scans`` tally; every morsel counts its
    own rows.  The ``("*", 0, -1)`` fallback delegates wholesale."""
    if lo == 0 and hi == -1:
        yield from scan_forums(graph)
        return
    if not isinstance(graph, FrozenGraph):
        raise TypeError("entity morsels require a frozen snapshot")
    stats = counters()
    if lead:
        stats.full_scans += 1
    span = _operator_span(
        "scan_forums", access="frozen-morsel", morsel=f"forum[{lo}:{hi}]"
    )
    produced = 0
    forums = graph.forums
    try:
        for forum_id in graph._forum_ids[lo:hi]:
            produced += 1
            yield forums[forum_id]
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


def scan_person_morsel(
    graph: SocialGraph,
    lo: int,
    hi: int,
    *,
    country: int | None = None,
    lead: bool = True,
) -> Iterator[Person]:
    """One morsel of a Person scan in canonical (sorted-id) order.

    With ``country`` the slab is that Country's residents sorted by id
    — the order :func:`scan_persons`' country pushdown scans — and the
    lead tallies the pushdown's ``index_scans``; without, the frozen
    person-id column and ``full_scans``.  The ``("*", 0, -1)`` fallback
    delegates wholesale."""
    if lo == 0 and hi == -1:
        yield from scan_persons(graph, country=country)
        return
    if not isinstance(graph, FrozenGraph):
        raise TypeError("entity morsels require a frozen snapshot")
    stats = counters()
    persons = graph.persons
    slab: Iterable[int]
    if country is None:
        if lead:
            stats.full_scans += 1
        slab = graph._person_ids[lo:hi]
    else:
        if lead:
            stats.index_scans += 1
        slab = sorted(graph.persons_in_country(country))[lo:hi]
    span = _operator_span(
        "scan_persons", access="frozen-morsel", morsel=f"person[{lo}:{hi}]"
    )
    produced = 0
    try:
        for person_id in slab:
            produced += 1
            yield persons[person_id]
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


def scan_tag_morsel(
    graph: SocialGraph,
    tag_id: int,
    lo: int,
    hi: int,
    *,
    lead: bool = True,
) -> Iterator[Message]:
    """One morsel of a tag-postings scan: rows ``[lo, hi)`` of Tag
    ``tag_id``'s ``(creationDate, id)``-sorted postings list — the
    order serial ``scan_messages(tag=...)`` yields on a clean
    snapshot.  ``lead`` gates the scan's ``index_scans`` tally (also on
    a degenerate empty range — the serial scan counts the probe before
    finding zero rows).  The ``("*", 0, -1)`` fallback delegates
    wholesale."""
    if lo == 0 and hi == -1:
        yield from scan_messages(graph, tag=tag_id)
        return
    if not isinstance(graph, FrozenGraph):
        raise TypeError("entity morsels require a frozen snapshot")
    stats = counters()
    if lead:
        stats.index_scans += 1
    span = _operator_span(
        "scan_messages", access="frozen-morsel", morsel=f"tag[{lo}:{hi}]"
    )
    produced = 0
    try:
        if lo < hi:
            chunk = graph._tag_objs.get(tag_id, [])[lo:hi]
            produced += len(chunk)
            yield from chunk
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


def _message_sort_key(message: Message) -> tuple[DateTime, int]:
    return (message.creation_date, message.id)


def _merge_overlay_slabs(
    graph: FrozenGraph,
    overlay: "DeltaOverlay",
    kind: str | None,
    start: DateTime | None,
    end: DateTime | None,
) -> Iterator[Message]:
    """The window rows of a delta-overlaid snapshot, per slab: the base
    column slice minus tombstoned ids, merged with the overlay's
    windowed inserts (both sides ``(creationDate, id)``-sorted)."""
    kinds = ("post", "comment") if kind is None else (kind,)
    for slab_kind in kinds:
        ((objs, dates),) = graph.date_slabs(slab_kind)
        lo = 0 if start is None else bisect_left(dates, start)
        hi = len(dates) if end is None else bisect_left(dates, end)
        base: Iterable[Message] = objs[lo:hi]
        tombstones = overlay.message_tombstones(slab_kind)
        if tombstones:
            base = (m for m in base if m.id not in tombstones)
        delta = overlay.window_messages(slab_kind, start, end)
        if delta:
            yield from _heap_merge(base, delta, key=_message_sort_key)
        else:
            yield from base


def scan_forum_posts(
    graph: SocialGraph,
    forum_id: int,
    *,
    window: tuple[DateTime | None, DateTime | None] | None = None,
) -> Iterator[Post]:
    """Scan one Forum's Posts, date window pushed into the forum index."""
    start, end = _bounds(window)
    stats = counters()
    if graph.use_indexes and graph.use_date_index:
        stats.index_scans += 1
        access = "forum-date-index"
        source: Iterable[Post] = graph.posts_in_forum_window(
            forum_id, start, end
        )
    elif graph.use_indexes:
        stats.index_scans += 1
        access = "forum-index"
        source = (
            p
            for p in graph.posts_in_forum(forum_id)
            if _in_bounds(p.creation_date, start, end)
        )
    else:
        stats.full_scans += 1
        access = "full"
        source = (
            p
            for p in graph.posts_in_forum(forum_id)
            if _in_bounds(p.creation_date, start, end)
        )
    span = _operator_span("scan_forum_posts", access=access)
    produced = 0
    try:
        for post in source:
            produced += 1
            yield post
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


def _counted_scan(name: str, source: Iterable[T]) -> Iterator[T]:
    """Full-table scan bookkeeping shared by the entity scan operators."""
    stats = counters()
    stats.full_scans += 1
    span = _operator_span(name, access="full")
    produced = 0
    try:
        for item in source:
            produced += 1
            yield item
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


def scan_persons(
    graph: SocialGraph, *, country: int | None = None
) -> Iterator[Person]:
    """Scan Persons; ``country`` restricts to that Country's residents.

    The instrumented counterpart of ``graph.persons.values()`` — query
    modules must come through here so the scan shows up in the
    per-query operator counters (and so R2 of ``repro.lint`` can hold
    the engine boundary).  The country pushdown (isLocatedIn City
    isPartOf Country, served by the place adjacency indexes — BI 21's
    zombie hunt) yields residents in sorted-id order, the canonical
    order :func:`scan_person_morsel` slices; the unrestricted scan
    walks the person-ordinal column on a clean frozen snapshot for the
    same reason.  Iteration order never changes rows — every BI/IC
    sort is a total order (lint R4).
    """
    if country is not None:
        return _scan_persons_in_country(graph, country)
    if isinstance(graph, FrozenGraph) and graph.delta_overlay is None:
        persons = graph.persons
        return _counted_scan(
            "scan_persons", (persons[pid] for pid in graph._person_ids)
        )
    return _counted_scan("scan_persons", graph.persons.values())


def _scan_persons_in_country(
    graph: SocialGraph, country: int
) -> Iterator[Person]:
    stats = counters()
    if graph.use_indexes:
        stats.index_scans += 1
        access = "country-index"
    else:
        stats.full_scans += 1
        access = "full"
    span = _operator_span("scan_persons", access=access)
    persons = graph.persons
    produced = 0
    try:
        for person_id in sorted(graph.persons_in_country(country)):
            produced += 1
            yield persons[person_id]
    finally:
        stats.rows_scanned += produced
        _close_operator_span(span, produced)


def scan_forums(graph: SocialGraph) -> Iterator[Forum]:
    """Scan every Forum, tallying the full-scan into the counters.  On
    a clean frozen snapshot the scan walks the forum-ordinal column —
    the canonical order :func:`scan_forum_morsel` slices."""
    if isinstance(graph, FrozenGraph) and graph.delta_overlay is None:
        forums = graph.forums
        return _counted_scan(
            "scan_forums", (forums[fid] for fid in graph._forum_ids)
        )
    return _counted_scan("scan_forums", graph.forums.values())


def scan_likes(graph: SocialGraph) -> Iterator[Likes]:
    """Scan every likes edge, tallying the full-scan into the counters."""
    return _counted_scan("scan_likes", graph.likes_edges)


def expand(
    sources: Iterable[S], neighbors: Callable[[S], Iterable[T]]
) -> Iterator[tuple[S, T]]:
    """Adjacency flat-map: yield ``(source, neighbor)`` for every edge.

    ``neighbors`` is any store adjacency accessor (``friends_of``,
    ``replies_of``, ``members_of_forum``, …).  Tallies the number of
    edges followed (CP-2.3 index-based join work).

    When ``neighbors`` is a frozen snapshot's ``friends_of``, the pairs
    come from contiguous knows-CSR offset slices instead of per-object
    adjacency-dict iteration — pair construction happens in C
    (``zip`` + ``repeat`` over an ``array('q')`` slice), with the same
    pair order and the same ``edges_expanded`` tally.
    """
    bound = getattr(neighbors, "__self__", None)
    if (
        isinstance(bound, FrozenGraph)
        and getattr(neighbors, "__name__", "") == "friends_of"
    ):
        return cast(
            "Iterator[tuple[S, T]]",
            _expand_frozen_knows(bound, cast("Iterable[int]", sources)),
        )
    return _expand_generic(sources, neighbors)


def _expand_generic(
    sources: Iterable[S], neighbors: Callable[[S], Iterable[T]]
) -> Iterator[tuple[S, T]]:
    stats = counters()
    span = _operator_span("expand")
    followed = 0
    try:
        for source in sources:
            for item in neighbors(source):
                followed += 1
                yield source, item
    finally:
        stats.edges_expanded += followed
        _close_operator_span(span, followed)


def _expand_frozen_knows(
    graph: FrozenGraph, sources: Iterable[int]
) -> Iterator[tuple[int, int]]:
    """The knows-CSR expand fast path (one offset slice per source).

    On a delta-overlaid snapshot, sources whose adjacency the overlay
    dirtied walk the live (shared, current) ``_friends`` row instead of
    their stale CSR slice — per source, so clean sources keep the
    columnar path.  Same ``edges_expanded`` tally either way.
    """
    stats = counters()
    span = _operator_span("expand", access="frozen-knows-csr")
    offsets = graph._knows_offsets
    targets = graph._knows_targets
    ordinal_of = graph._person_ord
    overlay = graph.delta_overlay
    dirty: frozenset[int] | set[int] = (
        frozenset() if overlay is None else overlay.knows_dirty_persons
    )
    live_friends = graph._friends
    followed = 0
    try:
        for source in sources:
            if source in dirty:
                row = live_friends.get(source)
                if row:
                    followed += len(row)
                    yield from zip(repeat(source, len(row)), row)
                continue
            ordinal = ordinal_of.get(source)
            if ordinal is None:
                continue
            lo = offsets[ordinal]
            hi = offsets[ordinal + 1]
            if lo == hi:
                continue
            followed += hi - lo
            yield from zip(repeat(source, hi - lo), targets[lo:hi])
    finally:
        stats.edges_expanded += followed
        _close_operator_span(span, followed)


def group_count(keys: Iterable[K]) -> Counter[K]:
    """Hash-aggregate COUNT(*) per key (CP-1.2 group-by).

    An ``array`` key column (frozen ordinal ranges) is materialized via
    ``tolist()`` first, which keeps the whole count on
    ``Counter``'s C fast path for sequences.
    """
    span = _operator_span("group_count")
    if isinstance(keys, (array, memoryview)):
        keys = cast("Iterable[K]", keys.tolist())
    groups = Counter(keys)
    counters().groups_created += len(groups)
    _close_operator_span(span, len(groups))
    return groups


def group_agg(
    items: Iterable[T],
    key: Callable[[T], K],
    zero: Callable[[], Any],
    fold: Callable[[Any, T], None],
) -> dict[K, Any]:
    """Hash-aggregate with a mutable accumulator per group.

    ``zero`` builds a fresh accumulator, ``fold(acc, item)`` updates it
    in place — the shape every multi-measure BI group-by uses.
    """
    span = _operator_span("group_agg")
    groups: dict[K, Any] = {}
    for item in items:
        k = key(item)
        acc = groups.get(k)
        if acc is None:
            acc = groups[k] = zero()
        fold(acc, item)
    counters().groups_created += len(groups)
    _close_operator_span(span, len(groups))
    return groups


class _CountingTopK(TopK[T]):
    """A :class:`TopK` that tallies heap activity into the engine stats."""

    def add(self, item: T) -> None:
        stats = counters()
        stats.heap_inserts += 1
        key = self._key(item)
        if self._threshold is not None and not key < self._threshold:
            stats.heap_rejections += 1
            return
        self._buffer.append((key, item))
        if len(self._buffer) >= self._capacity:
            self._compact()

    def _compact(self) -> None:
        before = len(self._buffer)
        super()._compact()
        dropped = before - len(self._buffer)
        if dropped:
            counters().heap_evictions += dropped


def top_k(limit: int, key: Callable[[T], Any]) -> TopK[T]:
    """An ORDER BY … LIMIT accumulator with eviction instrumentation.

    The single entry point for query result limiting (CP-1.3): behaves
    exactly like :class:`repro.util.topk.TopK` but reports inserts,
    threshold rejections and compaction evictions.
    """
    return _CountingTopK(limit, key=key)
