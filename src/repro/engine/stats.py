"""Per-operator instrumentation for the query-operator layer.

Every engine operator tallies its work into a process-global
:class:`OperatorCounters` record: rows produced by scans, which access
path a scan took (secondary index vs full scan), adjacency expansions,
aggregation group counts, and bounded-heap activity of the top-k
accumulator.  The BI driver resets the counters around each query and
attaches the per-query snapshot to its run metrics, giving the power
test the per-operator profile the choke-point analysis needs
(``repro.analysis.chokepoints.OPERATOR_COUNTER_CPS`` maps each counter
to its spec choke-point id).

A single global record (rather than a per-query context object) keeps
the per-row cost of counting to one integer add and works unchanged in
the fork-based concurrent driver — each worker process accumulates into
its own copy.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Mapping


@dataclass
class OperatorCounters:
    """Work tallies of the engine operators since the last reset."""

    #: Rows produced by scan operators (post-pushdown, pre-predicate).
    rows_scanned: int = 0
    #: Scans served by a secondary or adjacency index.
    index_scans: int = 0
    #: Scans that fell back to a full relation scan.
    full_scans: int = 0
    #: Adjacency edges followed by expand().
    edges_expanded: int = 0
    #: Distinct groups materialized by group_count()/group_agg().
    groups_created: int = 0
    #: Rows offered to top_k() accumulators.
    heap_inserts: int = 0
    #: Rows rejected by the top-k threshold without entering the heap.
    heap_rejections: int = 0
    #: Buffered rows evicted when a top-k accumulator compacted.
    heap_evictions: int = 0

    def as_dict(self, skip_zero: bool = False) -> dict[str, int]:
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        if skip_zero:
            values = {name: v for name, v in values.items() if v}
        return values

    def clear(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


#: Names of all counters, in declaration order (the driver's table order).
COUNTER_NAMES: tuple[str, ...] = tuple(
    f.name for f in fields(OperatorCounters)
)

#: The process-global tally the operators write into.
_COUNTERS = OperatorCounters()


def counters() -> OperatorCounters:
    """The live global counter record (mutated in place by operators)."""
    return _COUNTERS


def reset_counters() -> OperatorCounters:
    """Snapshot the current counters and zero the global record."""
    snapshot = OperatorCounters(**_COUNTERS.as_dict())
    _COUNTERS.clear()
    return snapshot


def merge_counters(parts: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Sum per-worker/per-task counter snapshots into one record.

    The parallel executor tallies operator work in each worker process
    separately (the global record is per-process); merging is a plain
    per-name sum, returned name-sorted so merged results are identical
    however the work was scheduled.
    """
    totals: dict[str, int] = {}
    for part in parts:
        for name, value in part.items():
            totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}
