"""Workload query implementations.

* :mod:`repro.queries.bi` — Business Intelligence reads BI 1-25 (spec chapter 5).
* :mod:`repro.queries.interactive` — Interactive complex reads IC 1-14,
  short reads IS 1-7, updates IU 1-8 (spec chapter 4).
"""
