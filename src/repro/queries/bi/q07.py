"""BI 7 — Most authoritative users on a given topic.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Tag, consider every Person who created a Message with the Tag.
Their *authority score* is the sum, over the distinct Persons who liked
any of those Messages, of the liker's *popularity* — the total number
of likes ever received on the liker's own Messages.

Sort: authority score descending, person id ascending.  Limit 100.
Choke points: 1.2, 2.3, 3.2, 3.3, 6.1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    7,
    "Most authoritative users on a given topic",
    ("1.2", "2.3", "3.2", "3.3", "6.1"),
    from_spec_text=False,
)


class Bi7Row(NamedTuple):
    person_id: int
    authority_score: int


def _popularity(graph: SocialGraph, person_id: int, cache: dict[int, int]) -> int:
    """Total likes received on a person's messages (memoized — the same
    liker typically appears under many posters; CP-6.1 result reuse)."""
    cached = cache.get(person_id)
    if cached is not None:
        return cached
    score = sum(
        len(graph.likes_of_message(m.id)) for m in graph.messages_by(person_id)
    )
    cache[person_id] = score
    return score


def bi7(graph: SocialGraph, tag: str) -> list[Bi7Row]:
    """Run BI 7 for a tag name."""
    tag_id = graph.tag_id(tag)
    likers_of_poster: dict[int, set[int]] = defaultdict(set)
    for message in scan_messages(graph, tag=tag_id):
        for like in graph.likes_of_message(message.id):
            likers_of_poster[message.creator_id].add(like.person_id)

    popularity_cache: dict[int, int] = {}
    top = top_k(
        INFO.limit,
        key=lambda r: sort_key((r.authority_score, True), (r.person_id, False)),
    )
    for person_id, likers in likers_of_poster.items():
        score = sum(_popularity(graph, liker, popularity_cache) for liker in likers)
        top.add(Bi7Row(person_id, score))
    return top.result()
