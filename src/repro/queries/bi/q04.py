"""BI 4 — Popular topics in a country.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a TagClass and a Country, find Forums whose moderator is located
in the Country (city isPartOf country) and count each Forum's Posts that
carry a Tag whose direct type is the given TagClass.  Forums without
such posts are excluded.

Sort: post count descending, forum id ascending.  Limit 20.
Choke points: 1.1, 1.2, 1.3, 2.1, 2.2, 2.4, 3.3, 5.3.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.engine import scan_forum_posts, scan_forums, sort_key, top_k
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.schema.entities import Forum
from repro.util.dates import DateTime

INFO = BiQueryInfo(
    4,
    "Popular topics in a country",
    ("1.1", "1.2", "1.3", "2.1", "2.2", "2.4", "3.3"),
    limit=20,
    from_spec_text=False,
)


class Bi4Row(NamedTuple):
    forum_id: int
    forum_title: str
    forum_creation_date: DateTime
    moderator_id: int
    post_count: int


def bi4_candidates(
    graph: SocialGraph,
    forums: Iterable[Forum],
    class_tags: set[int],
    country_id: int,
) -> Iterator[Bi4Row]:
    """Qualifying rows among ``forums`` — shared with the BI 4 morsel
    plan, which feeds forum-ordinal morsels through the same filter."""
    for forum in forums:
        moderator = graph.persons.get(forum.moderator_id)
        if moderator is None:
            continue
        city = graph.places[moderator.city_id]
        if city.part_of != country_id:
            continue
        post_count = sum(
            1
            for post in scan_forum_posts(graph, forum.id)
            if class_tags.intersection(post.tag_ids)
        )
        if post_count:
            yield Bi4Row(
                forum.id,
                forum.title,
                forum.creation_date,
                forum.moderator_id,
                post_count,
            )


def bi4(graph: SocialGraph, tag_class: str, country: str) -> list[Bi4Row]:
    """Run BI 4 for a tag class name and a country name."""
    country_id = graph.country_id(country)
    class_id = graph.tagclass_id(tag_class)
    class_tags = set(graph.tags_of_class(class_id))

    top = top_k(
        INFO.limit, key=lambda r: sort_key((r.post_count, True), (r.forum_id, False))
    )
    for row in bi4_candidates(graph, scan_forums(graph), class_tags, country_id):
        top.add(row)
    return top.result()
