"""BI 11 — Unrelated replies.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Country and a list of blacklisted words, find Comments created
by Persons located in the Country that reply to a Message without
sharing any Tag with it (negative condition, CP-8.1) and whose content
contains none of the blacklisted words.  Group the qualifying replies by
(creator, reply tag); per group count distinct replies and the likes
those replies received.

Sort: like count descending, person id ascending, tag name ascending.
Limit 100.
Choke points: 1.1, 2.1, 2.2, 2.3, 3.1, 3.2, 6.1, 8.1, 8.3.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple, Sequence

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    11,
    "Unrelated replies",
    ("1.1", "2.1", "2.2", "2.3", "3.1", "3.2", "6.1", "8.1", "8.3"),
    from_spec_text=False,
)


class Bi11Row(NamedTuple):
    person_id: int
    tag_name: str
    reply_count: int
    like_count: int


def bi11(
    graph: SocialGraph, country: str, blacklist: Sequence[str]
) -> list[Bi11Row]:
    """Run BI 11 for a country name and blacklisted words."""
    country_id = graph.country_id(country)
    country_persons = set(graph.persons_in_country(country_id))
    lowered = [word.lower() for word in blacklist]

    groups: dict[tuple[int, int], list[int]] = defaultdict(lambda: [0, 0])
    for comment in scan_messages(graph, kind="comment"):
        if comment.creator_id not in country_persons:
            continue
        parent = graph.parent_of(comment)
        if set(comment.tag_ids) & set(parent.tag_ids):
            continue  # related reply — excluded
        content = comment.content.lower()
        if any(word in content for word in lowered):
            continue
        likes = len(graph.likes_of_message(comment.id))
        for tag_id in comment.tag_ids:
            bucket = groups[(comment.creator_id, tag_id)]
            bucket[0] += 1
            bucket[1] += likes

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.like_count, True), (r.person_id, False), (r.tag_name, False)
        ),
    )
    for (person_id, tag_id), (replies, likes) in groups.items():
        top.add(Bi11Row(person_id, graph.tags[tag_id].name, replies, likes))
    return top.result()
