"""Metadata shared by the BI query modules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BiQueryInfo:
    """Descriptor of one BI read query (spec section 5.1)."""

    number: int
    title: str
    #: Choke-point identifiers, e.g. "1.2" (spec Appendix A, Table A.1).
    choke_points: tuple[str, ...]
    #: Result row limit from the query definition (None = unlimited).
    limit: int | None = 100
    #: True when the query text in the supplied spec was readable; False
    #: when the definition was reconstructed from the GRADES-NDA 2018
    #: first draft (see DESIGN.md, paper identification).
    from_spec_text: bool = True
