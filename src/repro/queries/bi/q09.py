"""BI 9 — Forum with related tags.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given two TagClasses and a member threshold, consider Forums with
strictly more than ``threshold`` members.  For each such Forum count the
Posts carrying a Tag of the first class (``count1``) and of the second
class (``count2``); keep forums where either count is positive.

Sort: count1 descending, count2 descending, forum id ascending.
Limit 100.
Choke points: 1.2, 1.3, 2.1, 2.3, 2.4.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_forum_posts, scan_forums, sort_key, top_k
from repro.schema.entities import Forum

INFO = BiQueryInfo(
    9,
    "Forum with related tags",
    ("1.2", "1.3", "2.1", "2.3", "2.4"),
    from_spec_text=False,
)


class Bi9Row(NamedTuple):
    forum_id: int
    forum_title: str
    count1: int
    count2: int


def bi9_candidates(
    graph: SocialGraph,
    forums: Iterable[Forum],
    tags1: set[int],
    tags2: set[int],
    threshold: int,
) -> Iterator[Bi9Row]:
    """Qualifying rows among ``forums`` — shared with the BI 9 morsel
    plan, which feeds forum-ordinal morsels through the same filter."""
    for forum in forums:
        if len(graph.members_of_forum(forum.id)) <= threshold:
            continue
        count1 = count2 = 0
        for post in scan_forum_posts(graph, forum.id):
            post_tags = set(post.tag_ids)
            if post_tags & tags1:
                count1 += 1
            if post_tags & tags2:
                count2 += 1
        if count1 or count2:
            yield Bi9Row(forum.id, forum.title, count1, count2)


def bi9(
    graph: SocialGraph, tag_class1: str, tag_class2: str, threshold: int
) -> list[Bi9Row]:
    """Run BI 9 for two tag class names and a forum-size threshold."""
    tags1 = set(graph.tags_of_class(graph.tagclass_id(tag_class1)))
    tags2 = set(graph.tags_of_class(graph.tagclass_id(tag_class2)))

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.count1, True), (r.count2, True), (r.forum_id, False)
        ),
    )
    for row in bi9_candidates(graph, scan_forums(graph), tags1, tags2, threshold):
        top.add(row)
    return top.result()
