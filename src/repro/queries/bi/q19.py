"""BI 19 — Stranger's interaction.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

A *stranger candidate* is a Person who is a member of at least one Forum
tagged with a Tag of the first TagClass **and** of at least one Forum
tagged with a Tag of the second TagClass.  For each Person born after
the given date, count their interactions with strangers: Comments by the
Person that (directly) reply to a Message created by a stranger the
Person does not know (and is not themselves).  Report the number of
distinct strangers interacted with and the total interaction count;
persons with no interactions are omitted.

Sort: interaction count descending, person id ascending.  Limit 100.
Choke points: 1.1, 1.3, 2.1, 2.3, 2.4, 3.3, 5.1, 7.3, 8.1, 8.5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import Date
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    19,
    "Stranger's interaction",
    ("1.1", "1.3", "2.1", "2.3", "2.4", "3.3", "5.1", "7.3", "7.4", "8.1", "8.5"),
    from_spec_text=False,
)


class Bi19Row(NamedTuple):
    person_id: int
    stranger_count: int
    interaction_count: int


def _members_of_forums_tagged(graph: SocialGraph, tag_ids: set[int]) -> set[int]:
    members: set[int] = set()
    for tag_id in tag_ids:
        for forum_id in graph.forums_with_tag(tag_id):
            members.update(
                m.person_id for m in graph.members_of_forum(forum_id)
            )
    return members


def bi19(
    graph: SocialGraph, date: Date, tag_class1: str, tag_class2: str
) -> list[Bi19Row]:
    """Run BI 19 for a birthday threshold and two tag class names."""
    tags1 = set(graph.tags_of_class(graph.tagclass_id(tag_class1)))
    tags2 = set(graph.tags_of_class(graph.tagclass_id(tag_class2)))
    strangers = _members_of_forums_tagged(graph, tags1) & _members_of_forums_tagged(
        graph, tags2
    )

    interactions: dict[int, set[int]] = defaultdict(set)
    interaction_counts: dict[int, int] = defaultdict(int)
    for comment in scan_messages(graph, kind="comment"):
        author = comment.creator_id
        if graph.persons[author].birthday <= date:
            continue
        target = graph.parent_of(comment).creator_id
        if target == author or target not in strangers:
            continue
        if target in graph.friends_of(author):
            continue  # knows — not a stranger to this person
        interactions[author].add(target)
        interaction_counts[author] += 1

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key((r.interaction_count, True), (r.person_id, False)),
    )
    for person_id, strangers_met in interactions.items():
        top.add(
            Bi19Row(person_id, len(strangers_met), interaction_counts[person_id])
        )
    return top.result()
