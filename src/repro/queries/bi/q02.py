"""BI 2 — Top tags for country, age, gender, time.

Reconstructed from the GRADES-NDA 2018 first draft (the figure embedding
this query's definition in the supplied spec did not survive text
extraction — see DESIGN.md).  Semantics implemented:

Given two countries and a closed-open creation window, find the Tags of
Messages created by Persons located in either country within the window.
Group by (country name, month of creation, creator gender, creator age
group, tag name), where the age group is ``floor(years between birthday
and the simulation end / 5)``.  Keep groups with at least
``min_count`` messages (the draft uses a threshold of 100 at SF100
scale; micro-scale runs pass a smaller one).

Sort: message count descending, then tag name ascending. Limit 100.
Choke points: 1.1, 1.2, 1.3, 2.1, 2.3, 3.1, 3.2, 8.5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import Date, date_to_datetime, month_of
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    2,
    "Top tags for country, age, gender, time",
    ("1.1", "1.2", "1.3", "2.1", "2.3", "3.1", "3.2", "8.5"),
    from_spec_text=False,
)

#: Width of one age group in years.
AGE_GROUP_YEARS = 5
_DAYS_PER_YEAR = 365.25


class Bi2Row(NamedTuple):
    country_name: str
    message_month: int
    person_gender: str
    age_group: int
    tag_name: str
    message_count: int


def bi2(
    graph: SocialGraph,
    start_date: Date,
    end_date: Date,
    country1: str,
    country2: str,
    end_of_simulation: Date,
    min_count: int = 1,
) -> list[Bi2Row]:
    """Run BI 2 over the window [start_date, end_date)."""
    start = date_to_datetime(start_date)
    end = date_to_datetime(end_date)
    groups: dict[tuple[str, int, str, int, str], int] = defaultdict(int)

    for country_name in (country1, country2):
        country = graph.country_id(country_name)
        for person_id in graph.persons_in_country(country):
            person = graph.persons[person_id]
            age_group = int(
                (end_of_simulation - person.birthday)
                / _DAYS_PER_YEAR
                / AGE_GROUP_YEARS
            )
            for message in scan_messages(
                graph, creator=person_id, window=(start, end)
            ):
                month = month_of(message.creation_date)
                for tag_id in message.tag_ids:
                    key = (
                        country_name,
                        month,
                        person.gender,
                        age_group,
                        graph.tags[tag_id].name,
                    )
                    groups[key] += 1

    top = top_k(
        INFO.limit, key=lambda r: sort_key((r.message_count, True), (r.tag_name, False))
    )
    for (country, month, gender, age_group, tag_name), count in groups.items():
        if count >= min_count:
            top.add(Bi2Row(country, month, gender, age_group, tag_name, count))
    return top.result()
