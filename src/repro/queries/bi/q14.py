"""BI 14 — Top thread initiators (spec page readable — implemented verbatim).

For each Person, count the Posts they created in the closed interval
[begin, end] (``threadCount``) and the Messages in the reply trees those
Posts initiated — including the root Post — whose creation date also
falls inside the interval (``messageCount``).  Only Persons with at
least one thread are returned.

Sort: message count descending, person id ascending.  Limit 100.
Choke points: 1.2, 2.2, 2.3, 3.2, 7.2, 7.3, 7.4, 8.1, 8.5.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import Date, MILLIS_PER_DAY, date_to_datetime
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    14,
    "Top thread initiators",
    ("1.2", "2.2", "2.3", "3.2", "7.2", "7.3", "7.4", "8.1", "8.5"),
)


class Bi14Row(NamedTuple):
    person_id: int
    first_name: str
    last_name: str
    thread_count: int
    message_count: int


def bi14(graph: SocialGraph, begin: Date, end: Date) -> list[Bi14Row]:
    """Run BI 14 over the closed day interval [begin, end]."""
    start_ts = date_to_datetime(begin)
    end_ts = date_to_datetime(end) + MILLIS_PER_DAY  # inclusive end day

    threads: dict[int, list[int]] = {}
    for post in scan_messages(graph, window=(start_ts, end_ts), kind="post"):
        counts = threads.setdefault(post.creator_id, [0, 0])
        counts[0] += 1
        # CP-7.4: the traversal terminates early — a reply is always
        # newer than its parent, so a subtree past the end date is
        # never entered.
        stack = [post]
        while stack:
            message = stack.pop()
            if message.creation_date >= end_ts:
                continue
            counts[1] += 1
            stack.extend(graph.replies_of(message.id))

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key((r.message_count, True), (r.person_id, False)),
    )
    for person_id, (thread_count, message_count) in threads.items():
        person = graph.persons[person_id]
        top.add(
            Bi14Row(
                person_id,
                person.first_name,
                person.last_name,
                thread_count,
                message_count,
            )
        )
    return top.result()
