"""BI 15 — Social normals.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Country, compute for each Person living there the number of
their friends who also live in the Country.  The *social normal* is the
floor of the average of these counts; return exactly the Persons whose
count equals it.

Sort: person id ascending.  Limit 100.
Choke points: 1.2, 2.3, 3.2, 3.3, 5.3, 6.1, 8.4.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine import expand, group_count, sort_key, top_k
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo

INFO = BiQueryInfo(
    15,
    "Social normals",
    ("1.2", "2.3", "3.2", "3.3", "5.3", "6.1", "8.4"),
    from_spec_text=False,
)


class Bi15Row(NamedTuple):
    person_id: int
    friend_count: int


def bi15(graph: SocialGraph, country: str) -> list[Bi15Row]:
    """Run BI 15 for a country name."""
    country_id = graph.country_id(country)
    residents = set(graph.persons_in_country(country_id))
    if not residents:
        return []

    in_country = group_count(
        person
        for person, friend in expand(residents, graph.friends_of)
        if friend in residents
    )
    counts = {person_id: in_country.get(person_id, 0) for person_id in residents}
    social_normal = sum(counts.values()) // len(counts)
    top = top_k(INFO.limit, key=lambda r: sort_key((r.person_id, False)))
    for person_id, count in counts.items():
        if count == social_normal:
            top.add(Bi15Row(person_id, count))
    return top.result()
