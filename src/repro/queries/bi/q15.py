"""BI 15 — Social normals.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Country, compute for each Person living there the number of
their friends who also live in the Country.  The *social normal* is the
floor of the average of these counts; return exactly the Persons whose
count equals it.

Sort: person id ascending.  Limit 100.
Choke points: 1.2, 2.3, 3.2, 3.3, 5.3, 6.1, 8.4.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo

INFO = BiQueryInfo(
    15,
    "Social normals",
    ("1.2", "2.3", "3.2", "3.3", "5.3", "6.1", "8.4"),
    from_spec_text=False,
)


class Bi15Row(NamedTuple):
    person_id: int
    friend_count: int


def bi15(graph: SocialGraph, country: str) -> list[Bi15Row]:
    """Run BI 15 for a country name."""
    country_id = graph.country_id(country)
    residents = set(graph.persons_in_country(country_id))
    if not residents:
        return []

    counts = {
        person_id: sum(
            1 for friend in graph.friends_of(person_id) if friend in residents
        )
        for person_id in residents
    }
    social_normal = sum(counts.values()) // len(counts)
    rows = [
        Bi15Row(person_id, count)
        for person_id, count in counts.items()
        if count == social_normal
    ]
    rows.sort(key=lambda r: r.person_id)
    return rows[: INFO.limit]
