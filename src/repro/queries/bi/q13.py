"""BI 13 — Popular tags per month in a country (spec page readable).

Find all Messages located in a given Country, as well as their Tags.
Group Messages by creation year and month.  For each group find the five
most popular Tags — popularity is the number of the group's Messages the
Tag appears on — sorted by popularity descending then name ascending.
Groups exist for every (year, month) with at least one Message in the
Country, even when none of its Messages carries a Tag (empty list).

Sort: year descending, month ascending.  Limit 100.
Choke points: 1.2, 2.2, 2.3, 3.2, 6.1, 8.3, 8.5.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import month_of, year_of
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    13,
    "Popular tags per month in a country",
    ("1.2", "2.2", "2.3", "3.2", "6.1", "8.3", "8.5"),
)

TOP_TAGS_PER_MONTH = 5


class Bi13Row(NamedTuple):
    year: int
    month: int
    #: (tag name, message count) pairs, most popular first.
    popular_tags: tuple[tuple[str, int], ...]


def bi13(graph: SocialGraph, country: str) -> list[Bi13Row]:
    """Run BI 13 for a country name."""
    country_id = graph.country_id(country)
    month_tag_counts: dict[tuple[int, int], Counter] = defaultdict(Counter)
    months_seen: set[tuple[int, int]] = set()
    for message in scan_messages(graph):
        if message.country_id != country_id:
            continue
        key = (year_of(message.creation_date), month_of(message.creation_date))
        months_seen.add(key)
        for tag_id in message.tag_ids:
            month_tag_counts[key][graph.tags[tag_id].name] += 1

    top = top_k(
        # lint: allow-partial-order (year, month) is the group-by key, one row each
        INFO.limit, key=lambda r: sort_key((r.year, True), (r.month, False))
    )
    for key in months_seen:
        ranked = sorted(
            # lint: allow-partial-order kv[0] is the tag name, unique within a month
            month_tag_counts[key].items(), key=lambda kv: (-kv[1], kv[0])
        )[:TOP_TAGS_PER_MONTH]
        top.add(Bi13Row(key[0], key[1], tuple(ranked)))
    return top.result()
