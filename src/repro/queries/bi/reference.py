"""Independent reference implementations of representative BI queries.

The Appendix C checklist asks whether results were *cross-validated*.
With one SUT there is no second system to compare against, so this
module provides a second, deliberately different implementation of a
representative subset of the BI reads: straight relational-style
comprehensions over the full entity tables, no adjacency indexes, no
top-k pushdown, full sort at the end.  They share nothing with the main
implementations except the store's entity dictionaries.

``tests/test_reference_crossvalidation.py`` compares the two
implementations row-for-row on generated graphs.
"""

# lint: file-allow-raw-store the reference implementations are deliberately
#   engine-free so they share no code path with what they cross-validate
# lint: file-allow-unordered-return every reference query ends in a full
#   sorted() over the materialized rows; intermediates need no order
# lint: file-allow-partial-order sort keys mirror the main implementations,
#   ending in the group-by key (unique per row) where no id exists

from __future__ import annotations

from collections import Counter, defaultdict

from repro.graph.store import SocialGraph
from repro.queries.bi.q01 import Bi1Row
from repro.queries.bi.q06 import Bi6Row, LIKE_WEIGHT, MESSAGE_WEIGHT, REPLY_WEIGHT
from repro.queries.bi.q08 import Bi8Row
from repro.queries.bi.q12 import Bi12Row
from repro.queries.bi.q13 import Bi13Row, TOP_TAGS_PER_MONTH
from repro.queries.bi.q14 import Bi14Row
from repro.queries.bi.q18 import Bi18Row
from repro.queries.bi.q21 import Bi21Row
from repro.util.dates import (
    Date,
    MILLIS_PER_DAY,
    date_to_datetime,
    month_of,
    months_between_inclusive,
    year_of,
)


def _all_messages(graph: SocialGraph) -> list:
    return list(graph.posts.values()) + list(graph.comments.values())


def _likes_per_message(graph: SocialGraph) -> Counter:
    counts: Counter = Counter()
    for like in graph.likes_edges:
        counts[like.message_id] += 1
    return counts


def _replies_per_message(graph: SocialGraph) -> Counter:
    counts: Counter = Counter()
    for comment in graph.comments.values():
        parent = (
            comment.reply_of_post
            if comment.reply_of_post >= 0
            else comment.reply_of_comment
        )
        counts[parent] += 1
    return counts


def ref_bi1(graph: SocialGraph, date: Date) -> list[Bi1Row]:
    threshold = date_to_datetime(date)
    selected = [
        m for m in _all_messages(graph) if m.creation_date < threshold
    ]
    groups: dict[tuple, list] = defaultdict(list)
    for message in selected:
        # The band recomputed here, without reusing length_category().
        if message.length < 40:
            category = 0
        elif message.length < 80:
            category = 1
        elif message.length < 160:
            category = 2
        else:
            category = 3
        key = (year_of(message.creation_date), message.is_comment, category)
        groups[key].append(message.length)
    rows = [
        Bi1Row(
            year, is_comment, category,
            len(lengths),
            sum(lengths) / len(lengths),
            sum(lengths),
            100.0 * len(lengths) / len(selected),
        )
        for (year, is_comment, category), lengths in groups.items()
    ]
    return sorted(rows, key=lambda r: (-r.year, r.is_comment, r.length_category))


def ref_bi6(graph: SocialGraph, tag: str) -> list[Bi6Row]:
    tag_id = graph.tag_id(tag)
    likes = _likes_per_message(graph)
    replies = _replies_per_message(graph)
    per_person: dict[int, list[int]] = defaultdict(lambda: [0, 0, 0])
    for message in _all_messages(graph):
        if tag_id not in message.tag_ids:
            continue
        bucket = per_person[message.creator_id]
        bucket[0] += 1
        bucket[1] += replies.get(message.id, 0)
        bucket[2] += likes.get(message.id, 0)
    rows = [
        Bi6Row(
            person, m, r, l,
            MESSAGE_WEIGHT * m + REPLY_WEIGHT * r + LIKE_WEIGHT * l,
        )
        for person, (m, r, l) in per_person.items()
    ]
    return sorted(rows, key=lambda r: (-r.score, r.person_id))[:100]


def ref_bi8(graph: SocialGraph, tag: str) -> list[Bi8Row]:
    tag_id = graph.tag_id(tag)
    tagged = {
        m.id for m in _all_messages(graph) if tag_id in m.tag_ids
    }
    counts: Counter = Counter()
    for comment in graph.comments.values():
        parent = (
            comment.reply_of_post
            if comment.reply_of_post >= 0
            else comment.reply_of_comment
        )
        if parent not in tagged or tag_id in comment.tag_ids:
            continue
        for related in set(comment.tag_ids):
            counts[graph.tags[related].name] += 1
    rows = [Bi8Row(name, count) for name, count in counts.items()]
    return sorted(rows, key=lambda r: (-r.comment_count, r.related_tag_name))[:100]


def ref_bi12(graph: SocialGraph, date: Date, like_threshold: int) -> list[Bi12Row]:
    threshold = date_to_datetime(date)
    likes = _likes_per_message(graph)
    rows = []
    for message in _all_messages(graph):
        count = likes.get(message.id, 0)
        if message.creation_date > threshold and count > like_threshold:
            creator = graph.persons[message.creator_id]
            rows.append(
                Bi12Row(
                    message.id, message.creation_date,
                    creator.first_name, creator.last_name, count,
                )
            )
    return sorted(rows, key=lambda r: (-r.like_count, r.message_id))[:100]


def ref_bi13(graph: SocialGraph, country: str) -> list[Bi13Row]:
    country_id = graph.country_id(country)
    by_month: dict[tuple[int, int], Counter] = defaultdict(Counter)
    months: set[tuple[int, int]] = set()
    for message in _all_messages(graph):
        if message.country_id != country_id:
            continue
        key = (year_of(message.creation_date), month_of(message.creation_date))
        months.add(key)
        for tag_id in message.tag_ids:
            by_month[key][graph.tags[tag_id].name] += 1
    rows = []
    for year, month in months:
        top = sorted(
            by_month[(year, month)].items(), key=lambda kv: (-kv[1], kv[0])
        )[:TOP_TAGS_PER_MONTH]
        rows.append(Bi13Row(year, month, tuple(top)))
    return sorted(rows, key=lambda r: (-r.year, r.month))[:100]


def ref_bi14(graph: SocialGraph, begin: Date, end: Date) -> list[Bi14Row]:
    start_ts = date_to_datetime(begin)
    end_ts = date_to_datetime(end) + MILLIS_PER_DAY
    # Root resolution computed bottom-up, independent of thread_messages.
    root_of: dict[int, int] = {}
    for post in graph.posts.values():
        root_of[post.id] = post.id
    pending = list(graph.comments.values())
    while pending:
        remaining = []
        for comment in pending:
            parent = (
                comment.reply_of_post
                if comment.reply_of_post >= 0
                else comment.reply_of_comment
            )
            if parent in root_of:
                root_of[comment.id] = root_of[parent]
            else:
                remaining.append(comment)
        if len(remaining) == len(pending):
            break  # orphaned subtrees (deleted roots): ignore
        pending = remaining
    windowed_posts = {
        p.id: p
        for p in graph.posts.values()
        if start_ts <= p.creation_date < end_ts
    }
    thread_counts: Counter = Counter()
    for message in _all_messages(graph):
        root = root_of.get(message.id)
        if root in windowed_posts and start_ts <= message.creation_date < end_ts:
            thread_counts[root] += 1
    per_person: dict[int, list[int]] = defaultdict(lambda: [0, 0])
    for root, count in thread_counts.items():
        creator = windowed_posts[root].creator_id
        per_person[creator][0] += 1
        per_person[creator][1] += count
    rows = []
    for person_id, (threads, messages) in per_person.items():
        person = graph.persons[person_id]
        rows.append(
            Bi14Row(
                person_id, person.first_name, person.last_name,
                threads, messages,
            )
        )
    return sorted(rows, key=lambda r: (-r.message_count, r.person_id))[:100]


def ref_bi18(
    graph: SocialGraph, date: Date, length_threshold: int, languages
) -> list[Bi18Row]:
    threshold = date_to_datetime(date)
    wanted = set(languages)
    # Root language resolved through an explicit parent walk.
    language_cache: dict[int, str] = {}

    def language_of(message) -> str:
        if not message.is_comment:
            return message.language
        cached = language_cache.get(message.id)
        if cached is not None:
            return cached
        parent = (
            message.reply_of_post
            if message.reply_of_post >= 0
            else message.reply_of_comment
        )
        value = language_of(graph.message(parent))
        language_cache[message.id] = value
        return value

    counts = {pid: 0 for pid in graph.persons}
    for message in _all_messages(graph):
        if (
            message.content
            and message.length < length_threshold
            and message.creation_date > threshold
            and language_of(message) in wanted
        ):
            counts[message.creator_id] += 1
    histogram = Counter(counts.values())
    rows = [Bi18Row(mc, pc) for mc, pc in histogram.items()]
    return sorted(rows, key=lambda r: (-r.person_count, -r.message_count))


def ref_bi21(graph: SocialGraph, country: str, end_date: Date) -> list[Bi21Row]:
    country_id = graph.country_id(country)
    end_ts = date_to_datetime(end_date)
    residents = [
        pid
        for pid in graph.persons
        if graph.places[graph.persons[pid].city_id].part_of == country_id
    ]
    messages_per_person: Counter = Counter()
    for message in _all_messages(graph):
        if message.creation_date < end_ts:
            messages_per_person[message.creator_id] += 1
    zombies = set()
    for pid in residents:
        created = graph.persons[pid].creation_date
        if created >= end_ts:
            continue
        months = months_between_inclusive(created, end_ts)
        if messages_per_person.get(pid, 0) / months < 1.0:
            zombies.add(pid)
    creator_of = {m.id: m.creator_id for m in _all_messages(graph)}
    zombie_likes: Counter = Counter()
    total_likes: Counter = Counter()
    for like in graph.likes_edges:
        target = creator_of.get(like.message_id)
        if target not in zombies:
            continue
        if graph.persons[like.person_id].creation_date >= end_ts:
            continue
        total_likes[target] += 1
        if like.person_id in zombies and like.person_id != target:
            zombie_likes[target] += 1
    rows = [
        Bi21Row(
            pid,
            zombie_likes.get(pid, 0),
            total_likes.get(pid, 0),
            (
                zombie_likes.get(pid, 0) / total_likes[pid]
                if total_likes.get(pid)
                else 0.0
            ),
        )
        for pid in zombies
    ]
    return sorted(rows, key=lambda r: (-r.zombie_score, r.zombie_id))[:100]


#: query number -> independent reference implementation.
REFERENCE_IMPLEMENTATIONS = {
    1: ref_bi1,
    6: ref_bi6,
    8: ref_bi8,
    12: ref_bi12,
    13: ref_bi13,
    14: ref_bi14,
    18: ref_bi18,
    21: ref_bi21,
}
