"""BI 18 — How many persons have a given number of messages (spec page
readable — implemented verbatim).

For each Person, count their Messages (``messageCount``) that satisfy
all of: non-empty content (so no image posts), length strictly below the
threshold, creation date strictly after the date, and written in one of
the given languages — a Comment's language is that of the Post rooting
its thread, and the messages along the path need not themselves satisfy
the other constraints.  Persons with no qualifying Message count as
``messageCount = 0``.  Then, for each distinct ``messageCount`` value,
count the Persons with exactly that many qualifying Messages.

Sort: person count descending, message count descending.
Choke points: 1.1, 1.2, 1.4, 3.2, 4.2, 4.3, 8.1, 8.2, 8.3, 8.4, 8.5.
"""

from __future__ import annotations

from collections import Counter
from typing import NamedTuple, Sequence

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_messages, scan_persons
from repro.util.dates import Date, date_to_datetime

INFO = BiQueryInfo(
    18,
    "How many persons have a given number of messages",
    ("1.1", "1.2", "1.4", "3.2", "4.2", "4.3", "8.1", "8.2", "8.3", "8.4", "8.5"),
    limit=None,
)


class Bi18Row(NamedTuple):
    message_count: int
    person_count: int


def bi18(
    graph: SocialGraph,
    date: Date,
    length_threshold: int,
    languages: Sequence[str],
) -> list[Bi18Row]:
    """Run BI 18 for a date, length threshold and language list."""
    threshold = date_to_datetime(date)

    per_person = Counter({person.id: 0 for person in scan_persons(graph)})
    # Language is pushed into the scan: the engine resolves a Comment's
    # root-Post language through the store (or, frozen, the dictionary-
    # encoded root-language code column).
    for message in scan_messages(
        graph, window=(threshold + 1, None), language=languages
    ):
        if not message.content:
            continue
        if message.length >= length_threshold:
            continue
        per_person[message.creator_id] += 1

    histogram = Counter(per_person.values())
    rows = [
        Bi18Row(message_count, person_count)
        for message_count, person_count in histogram.items()
    ]
    # lint: allow-partial-order message_count is the histogram key, unique per row
    rows.sort(key=lambda r: (-r.person_count, -r.message_count))
    return rows
