"""BI 24 — Messages by topic and continent.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a TagClass, take the Messages carrying a Tag whose direct type is
that class.  Group them by (year, month, continent the message was
posted from — the continent of its country) and report the distinct
message count and the total number of likes those messages received.

Sort: year descending, month ascending, continent name ascending.
Limit 100.
Choke points: 1.4, 2.1, 2.3, 2.4, 3.2, 4.3, 8.5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.engine import scan_messages, sort_key, top_k
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import month_of, year_of

INFO = BiQueryInfo(
    24,
    "Messages by topic and continent",
    ("1.4", "2.1", "2.3", "2.4", "3.2", "4.3", "8.5"),
    from_spec_text=False,
)


class Bi24Row(NamedTuple):
    message_count: int
    like_count: int
    year: int
    month: int
    continent_name: str


def bi24(graph: SocialGraph, tag_class: str) -> list[Bi24Row]:
    """Run BI 24 for a tag class name."""
    class_tags = set(graph.tags_of_class(graph.tagclass_id(tag_class)))

    seen: set[int] = set()
    groups: dict[tuple[int, int, int], list[int]] = defaultdict(lambda: [0, 0])
    for tag_id in class_tags:
        for message in scan_messages(graph, tag=tag_id):
            if message.id in seen:
                continue  # distinct messages even with several class tags
            seen.add(message.id)
            country = graph.places[message.country_id]
            key = (
                year_of(message.creation_date),
                month_of(message.creation_date),
                country.part_of,
            )
            bucket = groups[key]
            bucket[0] += 1
            bucket[1] += len(graph.likes_of_message(message.id))

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.year, True), (r.month, False), (r.continent_name, False)
        ),
    )
    for (year, month, continent), (messages, likes) in groups.items():
        top.add(
            Bi24Row(messages, likes, year, month, graph.places[continent].name)
        )
    return top.result()
