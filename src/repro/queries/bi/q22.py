"""BI 22 — International dialog.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given two Countries, score the interaction of each pair (person1 living
in country1, person2 living in country2):

* +4 for each direction in which one has a Comment directly replying to
  a Message of the other (so 0, 4 or 8 points),
* +10 when they know each other,
* +1 per like between them, each direction capped at 10.

Only pairs with a positive score are considered.  For each City of
country1, report the highest-scoring pair whose person1 lives there
(ties broken by ascending person ids).

Sort: score descending, person1 id ascending, person2 id ascending.
Limit 100.
Choke points: 1.3, 1.4, 2.1, 3.3, 5.1, 5.2, 5.3, 8.2, 8.3, 8.4.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_likes, scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    22,
    "International dialog",
    ("1.3", "1.4", "2.1", "3.1", "3.3", "5.1", "5.2", "5.3", "8.3", "8.4"),
    from_spec_text=False,
)

REPLY_SCORE = 4
KNOWS_SCORE = 10
LIKE_CAP = 10


class Bi22Row(NamedTuple):
    person1_id: int
    person2_id: int
    city1_name: str
    score: int


def bi22(graph: SocialGraph, country1: str, country2: str) -> list[Bi22Row]:
    """Run BI 22 for two country names."""
    persons1 = set(graph.persons_in_country(graph.country_id(country1)))
    persons2 = set(graph.persons_in_country(graph.country_id(country2)))

    replied: dict[tuple[int, int], bool] = defaultdict(bool)
    likes: dict[tuple[int, int], int] = defaultdict(int)

    def pair_of(a: int, b: int) -> tuple[int, int] | None:
        if a in persons1 and b in persons2:
            return (a, b)
        if b in persons1 and a in persons2:
            return (b, a)
        return None

    for comment in scan_messages(graph, kind="comment"):
        target = graph.parent_of(comment).creator_id
        pair = pair_of(comment.creator_id, target)
        if pair is not None:
            replied[(comment.creator_id, target)] = True
    for like in scan_likes(graph):
        target = graph.message(like.message_id).creator_id
        pair = pair_of(like.person_id, target)
        if pair is not None:
            likes[(like.person_id, target)] += 1

    pairs: set[tuple[int, int]] = set()
    for a, b in list(replied) + list(likes):
        pair = pair_of(a, b)
        if pair is not None:
            pairs.add(pair)
    for p1 in persons1:
        for friend in graph.friends_of(p1):
            if friend in persons2:
                pairs.add((p1, friend))

    best_per_city: dict[int, Bi22Row] = {}
    for p1, p2 in pairs:
        score = 0
        if replied[(p1, p2)]:
            score += REPLY_SCORE
        if replied[(p2, p1)]:
            score += REPLY_SCORE
        if p2 in graph.friends_of(p1):
            score += KNOWS_SCORE
        score += min(likes[(p1, p2)], LIKE_CAP)
        score += min(likes[(p2, p1)], LIKE_CAP)
        if score <= 0:
            continue
        city = graph.persons[p1].city_id
        row = Bi22Row(p1, p2, graph.places[city].name, score)
        incumbent = best_per_city.get(city)
        if incumbent is None or (-row.score, row.person1_id, row.person2_id) < (
            -incumbent.score,
            incumbent.person1_id,
            incumbent.person2_id,
        ):
            best_per_city[city] = row

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.score, True), (r.person1_id, False), (r.person2_id, False)
        ),
    )
    top.extend(best_per_city.values())
    return top.result()
