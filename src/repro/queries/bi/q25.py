"""BI 25 — Trusted connection paths.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md; the weighting rule matches IC 14's
readable definition with BI 25's date filter added).  Semantics:

Given two Persons and a date window, enumerate all (unweighted) shortest
paths between them over knows.  Weight each consecutive pair of Persons
on a path by their interactions *within the window*: each direct reply
(either direction) to a Post contributes 1.0, to a Comment 0.5 — only
replies created inside [start_date, end_date) count.  A path's weight is
the sum of its pair weights.

Sort: path weight descending, then the path's person-id sequence
ascending (deterministic tie-break; the spec leaves ties unspecified).
Limit 100.
Choke points: 1.2, 2.1, 2.2, 2.4, 3.3, 5.1, 5.3, 7.2, 7.3, 8.1, 8.3, 8.4, 8.5, 8.6.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.engine import scan_messages, sort_key, top_k
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.queries.common import all_shortest_paths
from repro.util.dates import Date, date_to_datetime

INFO = BiQueryInfo(
    25,
    "Trusted connection paths",
    (
        "1.2", "2.1", "2.2", "2.4", "3.3", "5.1", "5.3",
        "7.2", "7.3", "8.1", "8.3", "8.4", "8.5", "8.6",
    ),
    from_spec_text=False,
)

POST_REPLY_WEIGHT = 1.0
COMMENT_REPLY_WEIGHT = 0.5


class Bi25Row(NamedTuple):
    person_ids_in_path: tuple[int, ...]
    path_weight: float


def _pair_weights(
    graph: SocialGraph, start_ts: int, end_ts: int
) -> dict[tuple[int, int], float]:
    """Interaction weight per unordered person pair within the window."""
    weights: dict[tuple[int, int], float] = defaultdict(float)
    for comment in scan_messages(
        graph, window=(start_ts, end_ts), kind="comment"
    ):
        parent = graph.parent_of(comment)
        a, b = comment.creator_id, parent.creator_id
        if a == b:
            continue
        pair = (min(a, b), max(a, b))
        weights[pair] += (
            POST_REPLY_WEIGHT if not parent.is_comment else COMMENT_REPLY_WEIGHT
        )
    return weights


def bi25(
    graph: SocialGraph,
    person1_id: int,
    person2_id: int,
    start_date: Date,
    end_date: Date,
) -> list[Bi25Row]:
    """Run BI 25 for two person ids and a date window."""
    paths = all_shortest_paths(graph, person1_id, person2_id)
    if not paths:
        return []
    weights = _pair_weights(
        graph, date_to_datetime(start_date), date_to_datetime(end_date)
    )
    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.path_weight, True), (r.person_ids_in_path, False)
        ),
    )
    for path in paths:
        weight = sum(
            weights.get((min(a, b), max(a, b)), 0.0)
            for a, b in zip(path, path[1:])
        )
        top.add(Bi25Row(tuple(path), weight))
    return top.result()
