"""BI 20 — High-level topics (spec page readable — implemented verbatim).

For each given TagClass, count the Messages that have a Tag belonging to
that TagClass or to any of its descendants (isSubclassOf*, transitive).
A Message carrying several qualifying Tags is counted once per class
(distinct-count semantics, spec section 3.2).

Sort: message count descending, tag class name ascending.  Limit 100.
Choke points: 1.4, 2.1, 6.1, 8.1.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(20, "High-level topics", ("1.4", "2.1", "6.1", "8.1"))


class Bi20Row(NamedTuple):
    tag_class_name: str
    message_count: int


def bi20(graph: SocialGraph, tag_classes: Sequence[str]) -> list[Bi20Row]:
    """Run BI 20 for a list of tag class names (the UNWIND input).

    The result is grouped by class name, so duplicate input names
    collapse into one row.
    """
    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.message_count, True), (r.tag_class_name, False)
        ),
    )
    for class_name in dict.fromkeys(tag_classes):
        class_tags = graph.tags_in_class_tree(graph.tagclass_id(class_name))
        messages: set[int] = set()
        for tag_id in class_tags:
            messages.update(m.id for m in scan_messages(graph, tag=tag_id))
        top.add(Bi20Row(class_name, len(messages)))
    return top.result()
