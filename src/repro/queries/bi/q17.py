"""BI 17 — Friend triangles.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Country, count the distinct triangles of Persons all located in
the Country: unordered triples (a, b, c) with knows edges a-b, b-c, a-c.

Result: a single count.
Choke points: 1.1, 1.2 (high-cardinality aggregation over a closed
pattern).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine import expand
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo

INFO = BiQueryInfo(
    17, "Friend triangles", ("1.1",), limit=None, from_spec_text=False
)


class Bi17Row(NamedTuple):
    triangle_count: int


def bi17(graph: SocialGraph, country: str) -> list[Bi17Row]:
    """Run BI 17 for a country name."""
    country_id = graph.country_id(country)
    residents = set(graph.persons_in_country(country_id))

    # Classic oriented triangle counting: only enumerate a < b < c.
    count = 0
    for a in residents:
        higher_a = [
            f for f in graph.friends_of(a) if f > a and f in residents
        ]
        neighbour_set = set(higher_a)
        for b, c in expand(higher_a, graph.friends_of):
            if c > b and c in neighbour_set:
                count += 1
    return [Bi17Row(count)]
