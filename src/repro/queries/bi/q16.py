"""BI 16 — Experts in social circle (spec page readable).

Given a Person, find all other Persons living in a given Country that
are connected to the Person through the knows relation within a distance
range.  For each of those Persons, take their Messages carrying at least
one Tag of the given TagClass (direct hasType, not transitive); per
(person, tag of such a message) count the Messages.

On the path-length semantics the spec itself notes an open question
(trails vs shortest distance; "the current reference implementations
allow such Persons, but this might be subject to change").  This
implementation uses the *shortest-distance* interpretation: a Person
qualifies when their BFS distance from the start Person lies in
``[min_path_distance, max_path_distance]``.

Sort: message count descending, tag name ascending, person id ascending.
Limit 100.
Choke points: 1.2, 1.3, 2.3, 2.4, 3.3, 5.3, 7.1, 7.2, 7.3, 8.1, 8.6.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.queries.common import knows_distances
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    16,
    "Experts in social circle",
    ("1.2", "1.3", "2.3", "2.4", "3.3", "5.3", "7.1", "7.2", "7.3", "8.1", "8.6"),
)


class Bi16Row(NamedTuple):
    person_id: int
    tag_name: str
    message_count: int


def bi16(
    graph: SocialGraph,
    person_id: int,
    country: str,
    tag_class: str,
    min_path_distance: int,
    max_path_distance: int,
) -> list[Bi16Row]:
    """Run BI 16 for a start person, country, tag class and hop range."""
    country_id = graph.country_id(country)
    class_tags = set(graph.tags_of_class(graph.tagclass_id(tag_class)))

    distances = knows_distances(graph, person_id, max_path_distance)
    experts = [
        pid
        for pid, distance in distances.items()
        if distance >= min_path_distance
        and graph.country_of_person(pid) == country_id
    ]

    groups: dict[tuple[int, str], int] = defaultdict(int)
    for expert in experts:
        for message in scan_messages(graph, creator=expert):
            tags = set(message.tag_ids)
            if not tags & class_tags:
                continue
            for tag_id in tags:
                groups[(expert, graph.tags[tag_id].name)] += 1

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.message_count, True), (r.tag_name, False), (r.person_id, False)
        ),
    )
    for (expert, tag_name), count in groups.items():
        top.add(Bi16Row(expert, tag_name, count))
    return top.result()
