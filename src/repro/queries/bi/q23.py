"""BI 23 — Holiday destinations.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Country ("home"), count the Messages created by Persons living
in the home Country that are located in a *different* Country (the
destination), grouped by (destination country, month of creation).

Sort: message count descending, destination name ascending, month
ascending.  Limit 100.
Choke points: 1.4, 2.3, 2.4, 3.3, 4.3, 8.5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import month_of
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    23,
    "Holiday destinations",
    ("1.4", "2.3", "2.4", "3.3", "4.3", "8.5"),
    from_spec_text=False,
)


class Bi23Row(NamedTuple):
    message_count: int
    destination_name: str
    month: int


def bi23(graph: SocialGraph, country: str) -> list[Bi23Row]:
    """Run BI 23 for a home country name."""
    home = graph.country_id(country)
    residents = set(graph.persons_in_country(home))

    groups: dict[tuple[int, int], int] = defaultdict(int)
    for message in scan_messages(graph):
        if message.creator_id not in residents:
            continue
        if message.country_id == home:
            continue
        groups[(message.country_id, month_of(message.creation_date))] += 1

    top = top_k(
        INFO.limit,
        # lint: allow-partial-order (destination_name, month) is the group-by key
        key=lambda r: sort_key(
            (r.message_count, True), (r.destination_name, False), (r.month, False)
        ),
    )
    for (destination, month), count in groups.items():
        top.add(Bi23Row(count, graph.places[destination].name, month))
    return top.result()
