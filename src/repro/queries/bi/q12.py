"""BI 12 — Trending posts (spec page readable — implemented verbatim).

Find all Messages created after a given date (exclusive) that received
more than ``like_threshold`` likes.  Return the message, its creator's
name, and the like count.

Sort: like count descending, message id ascending.  Limit 100.
Choke points: 1.2, 2.2, 3.1, 6.1, 8.5.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine import scan_messages, sort_key, top_k
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import Date, DateTime, date_to_datetime

INFO = BiQueryInfo(12, "Trending posts", ("1.2", "2.2", "3.1", "6.1", "8.5"))


class Bi12Row(NamedTuple):
    message_id: int
    message_creation_date: DateTime
    creator_first_name: str
    creator_last_name: str
    like_count: int


def bi12(graph: SocialGraph, date: Date, like_threshold: int) -> list[Bi12Row]:
    """Run BI 12 for a minimum creation date and like threshold."""
    threshold = date_to_datetime(date)
    top = top_k(
        INFO.limit,
        key=lambda r: sort_key((r.like_count, True), (r.message_id, False)),
    )
    # creationDate > threshold: timestamps are integer millis, so the
    # closed-open window starts one milli past the threshold.
    for message in scan_messages(graph, window=(threshold + 1, None)):
        like_count = len(graph.likes_of_message(message.id))
        if like_count <= like_threshold:
            continue
        creator = graph.persons[message.creator_id]
        top.add(
            Bi12Row(
                message.id,
                message.creation_date,
                creator.first_name,
                creator.last_name,
                like_count,
            )
        )
    return top.result()
