"""BI 5 — Top posters in a country.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Country, find the 100 most popular Forums, popularity being the
number of members located in the Country.  Then, for every member of
any of those popular Forums, count the Posts they created in the popular
Forums (members with zero posts are kept with count 0).

Sort: post count descending, person id ascending.  Limit 100.
Choke points: 1.2, 1.3, 2.1, 2.2, 2.3, 2.4, 3.3, 5.3, 6.1, 8.4.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_forums, sort_key, top_k

INFO = BiQueryInfo(
    5,
    "Top posters in a country",
    ("1.2", "1.3", "2.1", "2.2", "2.3", "2.4", "3.3", "5.3", "6.1", "8.4"),
    from_spec_text=False,
)

#: Number of popular forums considered (first stage of the query).
POPULAR_FORUM_COUNT = 100


class Bi5Row(NamedTuple):
    person_id: int
    first_name: str
    last_name: str
    creation_date: int
    post_count: int


def bi5(graph: SocialGraph, country: str) -> list[Bi5Row]:
    """Run BI 5 for a country name."""
    country_id = graph.country_id(country)
    country_persons = set(graph.persons_in_country(country_id))

    forum_popularity: dict[int, int] = defaultdict(int)
    for forum in scan_forums(graph):
        for membership in graph.members_of_forum(forum.id):
            if membership.person_id in country_persons:
                forum_popularity[forum.id] += 1
    popular = top_k(
        # lint: allow-partial-order item[0] is the forum id, unique per group
        POPULAR_FORUM_COUNT, key=lambda item: sort_key((item[1], True), (item[0], False))
    )
    popular.extend(forum_popularity.items())
    popular_forums = {forum_id for forum_id, _ in popular}

    members: set[int] = set()
    for forum_id in popular_forums:
        members.update(m.person_id for m in graph.members_of_forum(forum_id))

    top = top_k(
        INFO.limit, key=lambda r: sort_key((r.post_count, True), (r.person_id, False))
    )
    for person_id in members:
        person = graph.persons[person_id]
        post_count = sum(
            1 for p in graph.posts_by(person_id) if p.forum_id in popular_forums
        )
        top.add(
            Bi5Row(
                person_id,
                person.first_name,
                person.last_name,
                person.creation_date,
                post_count,
            )
        )
    return top.result()
