"""BI 21 — Zombies in a country (spec page readable — implemented verbatim).

Find zombies in a given Country: Persons created before ``end_date``
averaging [0, 1) Messages per month between their profile creation and
``end_date``, with partial months on both ends counting as one month
(a creation of Jan 31 and an end of Mar 1 span 3 months).  For each
zombie compute:

* ``zombieLikeCount`` — likes received from *other* zombies,
* ``totalLikeCount`` — all likes received,
* ``zombieScore = zombieLikeCount / totalLikeCount`` (0.0 when the total
  is 0),

counting only likes from profiles created before ``end_date``.

Sort: zombie score descending, zombie id ascending.  Limit 100.
Choke points: 1.2, 2.1, 2.3, 2.4, 3.2, 3.3, 5.1, 5.3, 8.2, 8.4, 8.5.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import (
    Date,
    DateTime,
    date_to_datetime,
    months_between_inclusive,
)
from repro.engine import scan_messages, scan_persons, sort_key, top_k

INFO = BiQueryInfo(
    21,
    "Zombies in a country",
    ("1.2", "2.1", "2.3", "2.4", "3.2", "3.3", "5.1", "5.3", "8.2", "8.4", "8.5"),
)


class Bi21Row(NamedTuple):
    zombie_id: int
    zombie_like_count: int
    total_like_count: int
    zombie_score: float


def bi21_scores(
    graph: SocialGraph, zombies: set[int], end_ts: DateTime
) -> Iterator[Bi21Row]:
    """The like-ratio phase, shared with the BI 21 morsel plan's merge:
    one row per zombie, yielded in sorted-zombie order (canonical across
    graph representations, so heap activity is reproducible)."""
    for zombie in sorted(zombies):
        zombie_likes = 0
        total_likes = 0
        for message in graph.messages_by(zombie):
            for like in graph.likes_of_message(message.id):
                liker = graph.persons[like.person_id]
                if liker.creation_date >= end_ts:
                    continue
                total_likes += 1
                if like.person_id in zombies and like.person_id != zombie:
                    zombie_likes += 1
        score = zombie_likes / total_likes if total_likes else 0.0
        yield Bi21Row(zombie, zombie_likes, total_likes, score)


def bi21(graph: SocialGraph, country: str, end_date: Date) -> list[Bi21Row]:
    """Run BI 21 for a country name and an end date."""
    country_id = graph.country_id(country)
    end_ts = date_to_datetime(end_date)

    zombies: set[int] = set()
    for person in scan_persons(graph, country=country_id):
        if person.creation_date >= end_ts:
            continue
        months = months_between_inclusive(person.creation_date, end_ts)
        message_count = sum(
            1
            for _ in scan_messages(
                graph, creator=person.id, window=(None, end_ts)
            )
        )
        if message_count / months < 1.0:
            zombies.add(person.id)

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key((r.zombie_score, True), (r.zombie_id, False)),
    )
    for row in bi21_scores(graph, zombies, end_ts):
        top.add(row)
    return top.result()
