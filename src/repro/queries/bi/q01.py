"""BI 1 — Posting summary.

Given a date, find all Messages created before that date.  Group them by
a 3-level grouping: year of creation; Comment or not; content-length
category (0: short < 40, 1: one-liner < 80, 2: tweet < 160, 3: long).
Per group report the message count, average and total content length,
and the group's percentage of all messages created before the date.

Sort: year descending, Posts before Comments, length category ascending.
Choke points: 1.2, 3.2, 4.1, 8.5.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine import group_agg, scan_messages
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import Date, date_to_datetime, year_of

INFO = BiQueryInfo(1, "Posting summary", ("1.2", "3.2", "4.1", "8.5"), limit=None)


class Bi1Row(NamedTuple):
    year: int
    is_comment: bool
    length_category: int
    message_count: int
    average_message_length: float
    sum_message_length: int
    percentage_of_messages: float


def length_category(length: int) -> int:
    """The four content-length bands of the query definition."""
    if length < 40:
        return 0
    if length < 80:
        return 1
    if length < 160:
        return 2
    return 3


def bi1(graph: SocialGraph, date: Date) -> list[Bi1Row]:
    """Run BI 1 for a maximum creation ``date`` (exclusive)."""
    threshold = date_to_datetime(date)

    def fold(bucket: list[int], message) -> None:
        bucket[0] += 1
        bucket[1] += message.length

    groups = group_agg(
        scan_messages(graph, window=(None, threshold)),
        key=lambda m: (
            year_of(m.creation_date),
            m.is_comment,
            length_category(m.length),
        ),
        zero=lambda: [0, 0],
        fold=fold,
    )
    total = sum(count for count, _ in groups.values())
    rows = [
        Bi1Row(
            year=year,
            is_comment=is_comment,
            length_category=category,
            message_count=count,
            average_message_length=total_length / count,
            sum_message_length=total_length,
            percentage_of_messages=100.0 * count / total,
        )
        for (year, is_comment, category), (count, total_length) in groups.items()
    ]
    # lint: allow-partial-order (year, is_comment, length_category) is the group-by key
    rows.sort(key=lambda r: (-r.year, r.is_comment, r.length_category))
    return rows
