"""BI 8 — Related topics.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Tag, find the Comments that directly reply to a Message carrying
the Tag, excluding Comments that themselves carry the Tag (a negative
edge condition, CP-8.1).  Count distinct qualifying Comments per *other*
Tag those Comments carry.

Sort: comment count descending, related tag name ascending.  Limit 100.
Choke points: 1.4, 3.3, 5.2, 8.1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import expand, scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    8,
    "Related topics",
    ("1.4", "3.3", "5.2", "8.1"),
    from_spec_text=False,
)


class Bi8Row(NamedTuple):
    related_tag_name: str
    comment_count: int


def bi8(graph: SocialGraph, tag: str) -> list[Bi8Row]:
    """Run BI 8 for a tag name."""
    tag_id = graph.tag_id(tag)
    counted: dict[int, set[int]] = defaultdict(set)
    tagged = (m.id for m in scan_messages(graph, tag=tag_id))
    for _, reply in expand(tagged, graph.replies_of):
        if tag_id in reply.tag_ids:
            continue  # negative condition: reply must not share the tag
        for related in reply.tag_ids:
            counted[related].add(reply.id)

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key((r.comment_count, True), (r.related_tag_name, False)),
    )
    for related_tag, replies in counted.items():
        top.add(Bi8Row(graph.tags[related_tag].name, len(replies)))
    return top.result()
