"""BI 3 — Tag evolution.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a year and a month, for each Tag count the Messages carrying it
created in that month (``count_month1``) and in the following month
(``count_month2``), and compute ``diff = |count_month1 - count_month2|``.
Tags appearing in neither month are excluded.

Sort: diff descending, tag name ascending.  Limit 100.
Choke points: 2.4, 3.1, 3.2, 4.1, 4.3, 5.3, 6.1, 8.5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import month_of, year_of
from repro.util.topk import TopK, sort_key

INFO = BiQueryInfo(
    3,
    "Tag evolution",
    ("2.4", "3.1", "3.2", "4.1", "4.3", "5.3", "6.1", "8.5"),
    from_spec_text=False,
)


class Bi3Row(NamedTuple):
    tag_name: str
    count_month1: int
    count_month2: int
    diff: int


def bi3(graph: SocialGraph, year: int, month: int) -> list[Bi3Row]:
    """Run BI 3 for the given month and its successor."""
    if month == 12:
        next_year, next_month = year + 1, 1
    else:
        next_year, next_month = year, month + 1

    counts1: dict[int, int] = defaultdict(int)
    counts2: dict[int, int] = defaultdict(int)
    for message in graph.messages():
        ts = message.creation_date
        my, mm = year_of(ts), month_of(ts)
        if (my, mm) == (year, month):
            target = counts1
        elif (my, mm) == (next_year, next_month):
            target = counts2
        else:
            continue
        for tag_id in message.tag_ids:
            target[tag_id] += 1

    top: TopK[Bi3Row] = TopK(
        INFO.limit, key=lambda r: sort_key((r.diff, True), (r.tag_name, False))
    )
    for tag_id in counts1.keys() | counts2.keys():
        c1 = counts1.get(tag_id, 0)
        c2 = counts2.get(tag_id, 0)
        top.add(Bi3Row(graph.tags[tag_id].name, c1, c2, abs(c1 - c2)))
    return top.result()
