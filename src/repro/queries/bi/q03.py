"""BI 3 — Tag evolution.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a year and a month, for each Tag count the Messages carrying it
created in that month (``count_month1``) and in the following month
(``count_month2``), and compute ``diff = |count_month1 - count_month2|``.
Tags appearing in neither month are excluded.

Sort: diff descending, tag name ascending.  Limit 100.
Choke points: 2.4, 3.1, 3.2, 4.1, 4.3, 5.3, 6.1, 8.5.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.engine import group_count, scan_messages, sort_key, top_k
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import month_window

INFO = BiQueryInfo(
    3,
    "Tag evolution",
    ("2.4", "3.1", "3.2", "4.1", "4.3", "5.3", "6.1", "8.5"),
    from_spec_text=False,
)


class Bi3Row(NamedTuple):
    tag_name: str
    count_month1: int
    count_month2: int
    diff: int


def bi3_windows(
    year: int, month: int
) -> tuple[tuple[Any, Any], tuple[Any, Any]]:
    """The two consecutive month windows BI 3 compares (closed-open and
    contiguous: ``window1[1] == window2[0]``)."""
    window1 = month_window(year, month)
    if month == 12:
        window2 = month_window(year + 1, 1)
    else:
        window2 = month_window(year, month + 1)
    return window1, window2


def bi3(graph: SocialGraph, year: int, month: int) -> list[Bi3Row]:
    """Run BI 3 for the given month and its successor.

    One scan over the union window, classifying each message into its
    month at the aggregation key — the months are contiguous, so the
    union scan sees exactly the rows of the two per-month scans at half
    the scan cost, and the single ``(tag, month)`` hash aggregation is
    the counter shape the morsel plan (:mod:`repro.queries.bi.morsels`)
    reproduces exactly.
    """
    window1, window2 = bi3_windows(year, month)
    split = window2[0]
    counts = group_count(
        (tag_id, message.creation_date >= split)
        for message in scan_messages(graph, window=(window1[0], window2[1]))
        for tag_id in message.tag_ids
    )

    top = top_k(
        INFO.limit, key=lambda r: sort_key((r.diff, True), (r.tag_name, False))
    )
    # Sorted tag ids fix the heap insertion order, so the morsel merge
    # (which feeds the same sorted sequence) tallies identical
    # heap_inserts/heap_rejections/heap_evictions.
    for tag_id in sorted({tag_id for tag_id, _ in counts}):
        c1 = counts.get((tag_id, False), 0)
        c2 = counts.get((tag_id, True), 0)
        top.add(Bi3Row(graph.tags[tag_id].name, c1, c2, abs(c1 - c2)))
    return top.result()
