"""BI 3 — Tag evolution.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a year and a month, for each Tag count the Messages carrying it
created in that month (``count_month1``) and in the following month
(``count_month2``), and compute ``diff = |count_month1 - count_month2|``.
Tags appearing in neither month are excluded.

Sort: diff descending, tag name ascending.  Limit 100.
Choke points: 2.4, 3.1, 3.2, 4.1, 4.3, 5.3, 6.1, 8.5.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine import group_count, scan_messages, sort_key, top_k
from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import month_window

INFO = BiQueryInfo(
    3,
    "Tag evolution",
    ("2.4", "3.1", "3.2", "4.1", "4.3", "5.3", "6.1", "8.5"),
    from_spec_text=False,
)


class Bi3Row(NamedTuple):
    tag_name: str
    count_month1: int
    count_month2: int
    diff: int


def bi3(graph: SocialGraph, year: int, month: int) -> list[Bi3Row]:
    """Run BI 3 for the given month and its successor."""
    window1 = month_window(year, month)
    if month == 12:
        window2 = month_window(year + 1, 1)
    else:
        window2 = month_window(year, month + 1)

    counts1 = group_count(
        tag_id
        for message in scan_messages(graph, window=window1)
        for tag_id in message.tag_ids
    )
    counts2 = group_count(
        tag_id
        for message in scan_messages(graph, window=window2)
        for tag_id in message.tag_ids
    )

    top = top_k(
        INFO.limit, key=lambda r: sort_key((r.diff, True), (r.tag_name, False))
    )
    for tag_id in counts1.keys() | counts2.keys():
        c1 = counts1.get(tag_id, 0)
        c2 = counts2.get(tag_id, 0)
        top.add(Bi3Row(graph.tags[tag_id].name, c1, c2, abs(c1 - c2)))
    return top.result()
