"""Morsel decompositions of the heavy whole-scan BI reads.

A :class:`MorselPlan` splits one BI query's :func:`scan_messages` range
into independent slab morsels (via :func:`repro.engine.morsel_ranges`),
computes a small picklable *partial aggregate* per morsel — dispatched
across the :mod:`repro.exec` pool as ``"bi_morsel"`` tasks — and merges
the partials back into rows identical to the serial query.  The merge
is deterministic: partials are combined in morsel submission order and
the final sort is the query's own total order, so a morselized run is
row-identical to the serial one regardless of worker scheduling.

Only queries whose aggregate is decomposable row-by-row get a plan.
The message-window scans (BI 1, 3, 14, 18) chunk their date slabs; the
entity scans chunk ordinal ranges instead — forum ordinals (BI 4, 9),
one tag's postings list (BI 6), and a country's residents (BI 21).  On
a live store or a dirty overlaid snapshot
:func:`repro.engine.morsel_ranges` returns the single whole-scan
fallback morsel, so the same plan degrades to the serial scan inside
one task.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine import (
    group_agg,
    morsel_ranges,
    scan_forum_morsel,
    scan_message_morsel,
    scan_messages,
    scan_person_morsel,
    scan_persons,
    scan_tag_morsel,
    sort_key,
    top_k,
)
from repro.graph.store import SocialGraph
from repro.queries.bi.q01 import Bi1Row, length_category
from repro.queries.bi.q03 import INFO as Q3_INFO
from repro.queries.bi.q03 import Bi3Row, bi3_windows
from repro.queries.bi.q04 import INFO as Q4_INFO
from repro.queries.bi.q04 import Bi4Row, bi4_candidates
from repro.queries.bi.q06 import (
    INFO as Q6_INFO,
    LIKE_WEIGHT,
    MESSAGE_WEIGHT,
    REPLY_WEIGHT,
    Bi6Row,
)
from repro.queries.bi.q09 import INFO as Q9_INFO
from repro.queries.bi.q09 import Bi9Row, bi9_candidates
from repro.queries.bi.q14 import INFO as Q14_INFO
from repro.queries.bi.q14 import Bi14Row
from repro.queries.bi.q18 import Bi18Row
from repro.queries.bi.q21 import INFO as Q21_INFO
from repro.queries.bi.q21 import bi21_scores
from repro.util.dates import (
    MILLIS_PER_DAY,
    DateTime,
    date_to_datetime,
    months_between_inclusive,
    year_of,
)

__all__ = ["MORSEL_PLANS", "MorselPlan"]


@dataclass(frozen=True)
class MorselPlan:
    """How to decompose one BI query's heavy scan.

    ``kind`` names the slab family :func:`repro.engine.morsel_ranges`
    chunks: ``None``/``"post"``/``"comment"`` for the message date
    slabs (``window(binding)`` gives the scan's date window), or an
    entity kind (``"forum"``/``"tag"``/``"person"``) for ordinal
    ranges, with ``key(graph, binding)`` resolving the tag/country id
    the slab is keyed on.  ``partial(graph, slab_kind, lo, hi, lead,
    binding)`` runs worker-side over one morsel and must return a
    picklable value; ``merge(graph, partials, binding)`` runs
    driver-side over the partials in submission order and returns the
    query's rows.
    """

    number: int
    kind: str | None
    window: Callable[[tuple], tuple[DateTime | None, DateTime | None]] | None
    partial: Callable[..., Any]
    merge: Callable[..., list]
    key: Callable[[SocialGraph, tuple], int] | None = None

    def ranges(
        self, graph: SocialGraph, binding: tuple, morsel_size: int
    ) -> list:
        """This plan's morsel decomposition over ``graph`` — the single
        dispatch point the driver and ``run_morselized`` share."""
        return morsel_ranges(
            graph,
            window=None if self.window is None else self.window(binding),
            kind=self.kind,
            morsel_size=morsel_size,
            key=None if self.key is None else self.key(graph, binding),
        )


# --- BI 1: posting summary --------------------------------------------

def _bi1_window(binding: tuple) -> tuple[DateTime | None, DateTime | None]:
    (date,) = binding
    return (None, date_to_datetime(date))


def _bi1_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> dict:
    """BI 1's 3-level group-by over one morsel: ``{key: [count, sum]}``.

    Pre-aggregated with a plain dict, *not* :func:`group_agg` — the
    hash aggregation happens once, in :func:`_bi1_merge`, so the
    morselized run's ``groups_created`` tally equals the serial one
    instead of re-counting every group per morsel.
    """
    window = _bi1_window(binding)
    groups: dict[tuple[int, bool, int], list[int]] = {}
    for message in scan_message_morsel(
        graph, slab_kind, lo, hi, window=window, lead=lead
    ):
        key = (
            year_of(message.creation_date),
            message.is_comment,
            length_category(message.length),
        )
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [1, message.length]
        else:
            bucket[0] += 1
            bucket[1] += message.length
    return groups


def _bi1_merge(
    graph: SocialGraph, partials: Sequence[dict], binding: tuple
) -> list[Bi1Row]:
    def fold(bucket: list[int], item: tuple) -> None:
        _key, (count, total_length) = item
        bucket[0] += count
        bucket[1] += total_length

    combined = group_agg(
        (item for part in partials for item in part.items()),
        key=lambda item: item[0],
        zero=lambda: [0, 0],
        fold=fold,
    )
    total = sum(count for count, _ in combined.values())
    rows = [
        Bi1Row(
            year=year,
            is_comment=is_comment,
            length_category=category,
            message_count=count,
            average_message_length=total_length / count,
            sum_message_length=total_length,
            percentage_of_messages=100.0 * count / total,
        )
        for (year, is_comment, category), (count, total_length)
        in combined.items()
    ]
    # lint: allow-partial-order (year, is_comment, length_category) is the group-by key
    rows.sort(key=lambda r: (-r.year, r.is_comment, r.length_category))
    return rows


# --- BI 3: tag evolution ----------------------------------------------

def _bi3_window(binding: tuple) -> tuple[DateTime | None, DateTime | None]:
    """The union of the two consecutive month windows (contiguous, so
    one scan sees exactly the rows of the serial query's union scan)."""
    year, month = binding
    window1, window2 = bi3_windows(year, month)
    return (window1[0], window2[1])


def _bi3_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> dict:
    """Per-(tag, month) counts over one morsel: ``{(tag_id, in_month2):
    count}`` — a plain dict, like BI 1's partial, so the hash
    aggregation (and its ``groups_created`` tally) happens once at
    merge."""
    year, month = binding
    _window1, window2 = bi3_windows(year, month)
    split = window2[0]
    counts: dict[tuple[int, bool], int] = {}
    for message in scan_message_morsel(
        graph, slab_kind, lo, hi, window=_bi3_window(binding), lead=lead
    ):
        second = message.creation_date >= split
        for tag_id in message.tag_ids:
            key = (tag_id, second)
            counts[key] = counts.get(key, 0) + 1
    return counts


def _bi3_merge(
    graph: SocialGraph, partials: Sequence[dict], binding: tuple
) -> list[Bi3Row]:
    def fold(bucket: list[int], item: tuple) -> None:
        bucket[0] += item[1]

    combined = group_agg(
        (item for part in partials for item in part.items()),
        key=lambda item: item[0],
        zero=lambda: [0],
        fold=fold,
    )
    top = top_k(
        Q3_INFO.limit,
        key=lambda r: sort_key((r.diff, True), (r.tag_name, False)),
    )
    # Sorted tag ids: the same heap insertion order as the serial query,
    # so the top-k counters match exactly.
    for tag_id in sorted({tag_id for tag_id, _ in combined}):
        c1 = combined.get((tag_id, False), [0])[0]
        c2 = combined.get((tag_id, True), [0])[0]
        top.add(Bi3Row(graph.tags[tag_id].name, c1, c2, abs(c1 - c2)))
    return top.result()


# --- BI 4: popular topics in a country (forum morsels) ----------------

def _bi4_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> list:
    """Qualifying :class:`Bi4Row` candidates among forums ``[lo, hi)``
    — the per-forum work (moderator country check, tagged-post count)
    runs entirely worker-side; the merge only ranks."""
    tag_class, country = binding
    country_id = graph.country_id(country)
    class_tags = set(graph.tags_of_class(graph.tagclass_id(tag_class)))
    forums = scan_forum_morsel(graph, lo, hi, lead=lead)
    return list(bi4_candidates(graph, forums, class_tags, country_id))


def _bi4_merge(
    graph: SocialGraph, partials: Sequence[list], binding: tuple
) -> list[Bi4Row]:
    top = top_k(
        Q4_INFO.limit,
        key=lambda r: sort_key((r.post_count, True), (r.forum_id, False)),
    )
    for part in partials:
        for row in part:
            top.add(Bi4Row(*row))
    return top.result()


# --- BI 6: most active posters of a topic (tag-postings morsels) ------

def _bi6_key(graph: SocialGraph, binding: tuple) -> int:
    (tag,) = binding
    return graph.tag_id(tag)


def _bi6_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> dict:
    """Per-creator ``[messages, replies, likes]`` over one tag-postings
    morsel.  A plain dict in first-seen creator order — the serial
    query aggregates with a ``defaultdict``, not :func:`group_agg`, so
    the merge must not introduce a ``groups_created`` tally either."""
    tag_id = _bi6_key(graph, binding)
    messages = scan_tag_morsel(graph, tag_id, lo, hi, lead=lead)
    counts: dict[int, list[int]] = {}
    for message in messages:
        bucket = counts.get(message.creator_id)
        if bucket is None:
            bucket = counts[message.creator_id] = [0, 0, 0]
        bucket[0] += 1
        bucket[1] += len(graph.replies_of(message.id))
        bucket[2] += len(graph.likes_of_message(message.id))
    return counts


def _bi6_merge(
    graph: SocialGraph, partials: Sequence[dict], binding: tuple
) -> list[Bi6Row]:
    counts: dict[int, list[int]] = {}
    for part in partials:
        for person_id, (messages, replies, likes) in part.items():
            bucket = counts.get(person_id)
            if bucket is None:
                counts[person_id] = [messages, replies, likes]
            else:
                bucket[0] += messages
                bucket[1] += replies
                bucket[2] += likes
    top = top_k(
        Q6_INFO.limit,
        key=lambda r: sort_key((r.score, True), (r.person_id, False)),
    )
    for person_id, (messages, replies, likes) in counts.items():
        score = (
            MESSAGE_WEIGHT * messages
            + REPLY_WEIGHT * replies
            + LIKE_WEIGHT * likes
        )
        top.add(Bi6Row(person_id, messages, replies, likes, score))
    return top.result()


# --- BI 9: forum with related tags (forum morsels) --------------------

def _bi9_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> list:
    """Qualifying :class:`Bi9Row` candidates among forums ``[lo, hi)``."""
    tag_class1, tag_class2, threshold = binding
    tags1 = set(graph.tags_of_class(graph.tagclass_id(tag_class1)))
    tags2 = set(graph.tags_of_class(graph.tagclass_id(tag_class2)))
    forums = scan_forum_morsel(graph, lo, hi, lead=lead)
    return list(bi9_candidates(graph, forums, tags1, tags2, threshold))


def _bi9_merge(
    graph: SocialGraph, partials: Sequence[list], binding: tuple
) -> list[Bi9Row]:
    top = top_k(
        Q9_INFO.limit,
        key=lambda r: sort_key(
            (r.count1, True), (r.count2, True), (r.forum_id, False)
        ),
    )
    for part in partials:
        for row in part:
            top.add(Bi9Row(*row))
    return top.result()


# --- BI 14: top thread initiators (post-slab morsels) -----------------

def _bi14_window(binding: tuple) -> tuple[DateTime | None, DateTime | None]:
    begin, end = binding
    return (date_to_datetime(begin), date_to_datetime(end) + MILLIS_PER_DAY)


def _bi14_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> dict:
    """Per-creator ``[thread_count, message_count]`` over one post
    morsel, walking each root's reply tree worker-side (a plain dict in
    first-seen creator order — the serial query's aggregation shape)."""
    window = _bi14_window(binding)
    end_ts = window[1]
    threads: dict[int, list[int]] = {}
    # The fallback morsel must keep the serial scan's kind="post"
    # restriction, which the untyped "*" slab cannot carry.
    roots = (
        scan_messages(graph, window=window, kind="post")
        if slab_kind == "*"
        else scan_message_morsel(
            graph, slab_kind, lo, hi, window=window, lead=lead
        )
    )
    for post in roots:
        counts = threads.setdefault(post.creator_id, [0, 0])
        counts[0] += 1
        stack = [post]
        while stack:
            message = stack.pop()
            if message.creation_date >= end_ts:
                continue
            counts[1] += 1
            stack.extend(graph.replies_of(message.id))
    return threads


def _bi14_merge(
    graph: SocialGraph, partials: Sequence[dict], binding: tuple
) -> list[Bi14Row]:
    threads: dict[int, list[int]] = {}
    for part in partials:
        for person_id, (thread_count, message_count) in part.items():
            counts = threads.get(person_id)
            if counts is None:
                threads[person_id] = [thread_count, message_count]
            else:
                counts[0] += thread_count
                counts[1] += message_count
    top = top_k(
        Q14_INFO.limit,
        key=lambda r: sort_key((r.message_count, True), (r.person_id, False)),
    )
    for person_id, (thread_count, message_count) in threads.items():
        person = graph.persons[person_id]
        top.add(
            Bi14Row(
                person_id,
                person.first_name,
                person.last_name,
                thread_count,
                message_count,
            )
        )
    return top.result()


# --- BI 21: zombies in a country (country-resident morsels) -----------

def _bi21_key(graph: SocialGraph, binding: tuple) -> int:
    country, _end_date = binding
    return graph.country_id(country)


def _bi21_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> list:
    """Zombie ids among the country's residents ``[lo, hi)`` (sorted-id
    order, the canonical order of the country pushdown): the per-person
    message-rate scan dominates BI 21 and decomposes row-by-row."""
    country, end_date = binding
    country_id = graph.country_id(country)
    end_ts = date_to_datetime(end_date)
    residents = scan_person_morsel(
        graph, lo, hi, country=country_id, lead=lead
    )
    zombies: list[int] = []
    for person in residents:
        if person.creation_date >= end_ts:
            continue
        months = months_between_inclusive(person.creation_date, end_ts)
        message_count = sum(
            1
            for _ in scan_messages(
                graph, creator=person.id, window=(None, end_ts)
            )
        )
        if message_count / months < 1.0:
            zombies.append(person.id)
    return zombies


def _bi21_merge(
    graph: SocialGraph, partials: Sequence[list], binding: tuple
) -> list:
    _country, end_date = binding
    end_ts = date_to_datetime(end_date)
    zombies: set[int] = set()
    for part in partials:
        zombies.update(part)
    top = top_k(
        Q21_INFO.limit,
        key=lambda r: sort_key((r.zombie_score, True), (r.zombie_id, False)),
    )
    for row in bi21_scores(graph, zombies, end_ts):
        top.add(row)
    return top.result()


# --- BI 18: message-count histogram -----------------------------------

def _bi18_window(binding: tuple) -> tuple[DateTime | None, DateTime | None]:
    date, _length_threshold, _languages = binding
    return (date_to_datetime(date) + 1, None)


def _bi18_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> Counter:
    """Qualifying-message counts per creator over one morsel."""
    _date, length_threshold, languages = binding
    counts: Counter = Counter()
    for message in scan_message_morsel(
        graph,
        slab_kind,
        lo,
        hi,
        window=_bi18_window(binding),
        language=languages,
        lead=lead,
    ):
        if not message.content:
            continue
        if message.length >= length_threshold:
            continue
        counts[message.creator_id] += 1
    return counts


def _bi18_merge(
    graph: SocialGraph, partials: Sequence[Counter], binding: tuple
) -> list[Bi18Row]:
    per_person = Counter({person.id: 0 for person in scan_persons(graph)})
    for part in partials:
        per_person.update(part)
    histogram = Counter(per_person.values())
    rows = [
        Bi18Row(message_count, person_count)
        for message_count, person_count in histogram.items()
    ]
    # lint: allow-partial-order message_count is the histogram key, unique per row
    rows.sort(key=lambda r: (-r.person_count, -r.message_count))
    return rows


#: BI query number -> its morsel decomposition.  Queries not listed
#: here have no decomposable scan and always run serially.
MORSEL_PLANS: dict[int, MorselPlan] = {
    1: MorselPlan(1, None, _bi1_window, _bi1_partial, _bi1_merge),
    3: MorselPlan(3, None, _bi3_window, _bi3_partial, _bi3_merge),
    4: MorselPlan(4, "forum", None, _bi4_partial, _bi4_merge),
    6: MorselPlan(6, "tag", None, _bi6_partial, _bi6_merge, key=_bi6_key),
    9: MorselPlan(9, "forum", None, _bi9_partial, _bi9_merge),
    14: MorselPlan(14, "post", _bi14_window, _bi14_partial, _bi14_merge),
    18: MorselPlan(18, None, _bi18_window, _bi18_partial, _bi18_merge),
    21: MorselPlan(
        21, "person", None, _bi21_partial, _bi21_merge, key=_bi21_key
    ),
}
