"""Morsel decompositions of the heavy whole-scan BI reads.

A :class:`MorselPlan` splits one BI query's :func:`scan_messages` range
into independent slab morsels (via :func:`repro.engine.morsel_ranges`),
computes a small picklable *partial aggregate* per morsel — dispatched
across the :mod:`repro.exec` pool as ``"bi_morsel"`` tasks — and merges
the partials back into rows identical to the serial query.  The merge
is deterministic: partials are combined in morsel submission order and
the final sort is the query's own total order, so a morselized run is
row-identical to the serial one regardless of worker scheduling.

Only queries whose aggregate is decomposable row-by-row get a plan:
BI 1 (3-level group-by with count/sum, percentages computed at merge)
and BI 18 (per-creator counts, histogrammed at merge).  On a live store
or a dirty overlaid snapshot :func:`repro.engine.morsel_ranges` returns
the single whole-scan fallback morsel, so the same plan degrades to
the serial scan inside one task.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine import (
    group_agg,
    scan_message_morsel,
    scan_persons,
    sort_key,
    top_k,
)
from repro.graph.store import SocialGraph
from repro.queries.bi.q01 import Bi1Row, length_category
from repro.queries.bi.q03 import INFO as Q3_INFO
from repro.queries.bi.q03 import Bi3Row, bi3_windows
from repro.queries.bi.q18 import Bi18Row
from repro.util.dates import DateTime, date_to_datetime, year_of

__all__ = ["MORSEL_PLANS", "MorselPlan"]


@dataclass(frozen=True)
class MorselPlan:
    """How to decompose one BI query's message scan.

    ``window(binding)`` gives the scan's date window (fed to
    :func:`repro.engine.morsel_ranges`); ``kind`` restricts the slabs
    scanned (``None`` = posts and comments, as :func:`scan_messages`).
    ``partial(graph, slab_kind, lo, hi, lead, binding)`` runs worker-
    side over one morsel and must return a picklable value;
    ``merge(graph, partials, binding)`` runs driver-side over the
    partials in submission order and returns the query's rows.
    """

    number: int
    kind: str | None
    window: Callable[[tuple], tuple[DateTime | None, DateTime | None]]
    partial: Callable[..., Any]
    merge: Callable[..., list]


# --- BI 1: posting summary --------------------------------------------

def _bi1_window(binding: tuple) -> tuple[DateTime | None, DateTime | None]:
    (date,) = binding
    return (None, date_to_datetime(date))


def _bi1_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> dict:
    """BI 1's 3-level group-by over one morsel: ``{key: [count, sum]}``.

    Pre-aggregated with a plain dict, *not* :func:`group_agg` — the
    hash aggregation happens once, in :func:`_bi1_merge`, so the
    morselized run's ``groups_created`` tally equals the serial one
    instead of re-counting every group per morsel.
    """
    window = _bi1_window(binding)
    groups: dict[tuple[int, bool, int], list[int]] = {}
    for message in scan_message_morsel(
        graph, slab_kind, lo, hi, window=window, lead=lead
    ):
        key = (
            year_of(message.creation_date),
            message.is_comment,
            length_category(message.length),
        )
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [1, message.length]
        else:
            bucket[0] += 1
            bucket[1] += message.length
    return groups


def _bi1_merge(
    graph: SocialGraph, partials: Sequence[dict], binding: tuple
) -> list[Bi1Row]:
    def fold(bucket: list[int], item: tuple) -> None:
        _key, (count, total_length) = item
        bucket[0] += count
        bucket[1] += total_length

    combined = group_agg(
        (item for part in partials for item in part.items()),
        key=lambda item: item[0],
        zero=lambda: [0, 0],
        fold=fold,
    )
    total = sum(count for count, _ in combined.values())
    rows = [
        Bi1Row(
            year=year,
            is_comment=is_comment,
            length_category=category,
            message_count=count,
            average_message_length=total_length / count,
            sum_message_length=total_length,
            percentage_of_messages=100.0 * count / total,
        )
        for (year, is_comment, category), (count, total_length)
        in combined.items()
    ]
    # lint: allow-partial-order (year, is_comment, length_category) is the group-by key
    rows.sort(key=lambda r: (-r.year, r.is_comment, r.length_category))
    return rows


# --- BI 3: tag evolution ----------------------------------------------

def _bi3_window(binding: tuple) -> tuple[DateTime | None, DateTime | None]:
    """The union of the two consecutive month windows (contiguous, so
    one scan sees exactly the rows of the serial query's union scan)."""
    year, month = binding
    window1, window2 = bi3_windows(year, month)
    return (window1[0], window2[1])


def _bi3_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> dict:
    """Per-(tag, month) counts over one morsel: ``{(tag_id, in_month2):
    count}`` — a plain dict, like BI 1's partial, so the hash
    aggregation (and its ``groups_created`` tally) happens once at
    merge."""
    year, month = binding
    _window1, window2 = bi3_windows(year, month)
    split = window2[0]
    counts: dict[tuple[int, bool], int] = {}
    for message in scan_message_morsel(
        graph, slab_kind, lo, hi, window=_bi3_window(binding), lead=lead
    ):
        second = message.creation_date >= split
        for tag_id in message.tag_ids:
            key = (tag_id, second)
            counts[key] = counts.get(key, 0) + 1
    return counts


def _bi3_merge(
    graph: SocialGraph, partials: Sequence[dict], binding: tuple
) -> list[Bi3Row]:
    def fold(bucket: list[int], item: tuple) -> None:
        bucket[0] += item[1]

    combined = group_agg(
        (item for part in partials for item in part.items()),
        key=lambda item: item[0],
        zero=lambda: [0],
        fold=fold,
    )
    top = top_k(
        Q3_INFO.limit,
        key=lambda r: sort_key((r.diff, True), (r.tag_name, False)),
    )
    # Sorted tag ids: the same heap insertion order as the serial query,
    # so the top-k counters match exactly.
    for tag_id in sorted({tag_id for tag_id, _ in combined}):
        c1 = combined.get((tag_id, False), [0])[0]
        c2 = combined.get((tag_id, True), [0])[0]
        top.add(Bi3Row(graph.tags[tag_id].name, c1, c2, abs(c1 - c2)))
    return top.result()


# --- BI 18: message-count histogram -----------------------------------

def _bi18_window(binding: tuple) -> tuple[DateTime | None, DateTime | None]:
    date, _length_threshold, _languages = binding
    return (date_to_datetime(date) + 1, None)


def _bi18_partial(
    graph: SocialGraph,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    binding: tuple,
) -> Counter:
    """Qualifying-message counts per creator over one morsel."""
    _date, length_threshold, languages = binding
    counts: Counter = Counter()
    for message in scan_message_morsel(
        graph,
        slab_kind,
        lo,
        hi,
        window=_bi18_window(binding),
        language=languages,
        lead=lead,
    ):
        if not message.content:
            continue
        if message.length >= length_threshold:
            continue
        counts[message.creator_id] += 1
    return counts


def _bi18_merge(
    graph: SocialGraph, partials: Sequence[Counter], binding: tuple
) -> list[Bi18Row]:
    per_person = Counter({person.id: 0 for person in scan_persons(graph)})
    for part in partials:
        per_person.update(part)
    histogram = Counter(per_person.values())
    rows = [
        Bi18Row(message_count, person_count)
        for message_count, person_count in histogram.items()
    ]
    # lint: allow-partial-order message_count is the histogram key, unique per row
    rows.sort(key=lambda r: (-r.person_count, -r.message_count))
    return rows


#: BI query number -> its morsel decomposition.  Queries not listed
#: here have no decomposable scan and always run serially.
MORSEL_PLANS: dict[int, MorselPlan] = {
    1: MorselPlan(1, None, _bi1_window, _bi1_partial, _bi1_merge),
    3: MorselPlan(3, None, _bi3_window, _bi3_partial, _bi3_merge),
    18: MorselPlan(18, None, _bi18_window, _bi18_partial, _bi18_merge),
}
