"""BI 6 — Most active posters of a given topic.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Tag, for every Person who created a Message with that Tag
compute: ``messageCount`` (their Messages with the Tag), ``replyCount``
(Comments replying to those Messages), ``likeCount`` (likes those
Messages received), and a score::

    score = messageCount + 2 * replyCount + 10 * likeCount

Sort: score descending, person id ascending.  Limit 100.
Choke points: 1.2, 2.3.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    6,
    "Most active posters of a given topic",
    ("1.2", "2.3"),
    from_spec_text=False,
)

MESSAGE_WEIGHT = 1
REPLY_WEIGHT = 2
LIKE_WEIGHT = 10


class Bi6Row(NamedTuple):
    person_id: int
    message_count: int
    reply_count: int
    like_count: int
    score: int


def bi6(graph: SocialGraph, tag: str) -> list[Bi6Row]:
    """Run BI 6 for a tag name."""
    tag_id = graph.tag_id(tag)
    counts: dict[int, list[int]] = defaultdict(lambda: [0, 0, 0])
    for message in scan_messages(graph, tag=tag_id):
        bucket = counts[message.creator_id]
        bucket[0] += 1
        bucket[1] += len(graph.replies_of(message.id))
        bucket[2] += len(graph.likes_of_message(message.id))

    top = top_k(
        INFO.limit, key=lambda r: sort_key((r.score, True), (r.person_id, False))
    )
    for person_id, (messages, replies, likes) in counts.items():
        score = (
            MESSAGE_WEIGHT * messages
            + REPLY_WEIGHT * replies
            + LIKE_WEIGHT * likes
        )
        top.add(Bi6Row(person_id, messages, replies, likes, score))
    return top.result()
