"""Business Intelligence workload — read queries BI 1-25 (spec chapter 5).

``ALL_QUERIES`` maps query number -> (callable, :class:`BiQueryInfo`),
used by the driver, the parameter-curation module and the choke-point
coverage benchmark.
"""

from repro.queries.bi.base import BiQueryInfo
from repro.queries.bi.q01 import Bi1Row, bi1
from repro.queries.bi.q02 import Bi2Row, bi2
from repro.queries.bi.q03 import Bi3Row, bi3
from repro.queries.bi.q04 import Bi4Row, bi4
from repro.queries.bi.q05 import Bi5Row, bi5
from repro.queries.bi.q06 import Bi6Row, bi6
from repro.queries.bi.q07 import Bi7Row, bi7
from repro.queries.bi.q08 import Bi8Row, bi8
from repro.queries.bi.q09 import Bi9Row, bi9
from repro.queries.bi.q10 import Bi10Row, bi10
from repro.queries.bi.q11 import Bi11Row, bi11
from repro.queries.bi.q12 import Bi12Row, bi12
from repro.queries.bi.q13 import Bi13Row, bi13
from repro.queries.bi.q14 import Bi14Row, bi14
from repro.queries.bi.q15 import Bi15Row, bi15
from repro.queries.bi.q16 import Bi16Row, bi16
from repro.queries.bi.q17 import Bi17Row, bi17
from repro.queries.bi.q18 import Bi18Row, bi18
from repro.queries.bi.q19 import Bi19Row, bi19
from repro.queries.bi.q20 import Bi20Row, bi20
from repro.queries.bi.q21 import Bi21Row, bi21
from repro.queries.bi.q22 import Bi22Row, bi22
from repro.queries.bi.q23 import Bi23Row, bi23
from repro.queries.bi.q24 import Bi24Row, bi24
from repro.queries.bi.q25 import Bi25Row, bi25

from repro.queries.bi import (
    q01, q02, q03, q04, q05, q06, q07, q08, q09, q10,
    q11, q12, q13, q14, q15, q16, q17, q18, q19, q20,
    q21, q22, q23, q24, q25,
)

_MODULES = (
    q01, q02, q03, q04, q05, q06, q07, q08, q09, q10,
    q11, q12, q13, q14, q15, q16, q17, q18, q19, q20,
    q21, q22, q23, q24, q25,
)

_FUNCTIONS = (
    bi1, bi2, bi3, bi4, bi5, bi6, bi7, bi8, bi9, bi10,
    bi11, bi12, bi13, bi14, bi15, bi16, bi17, bi18, bi19, bi20,
    bi21, bi22, bi23, bi24, bi25,
)

#: query number -> (query callable, metadata).
ALL_QUERIES: dict[int, tuple] = {
    module.INFO.number: (function, module.INFO)
    for module, function in zip(_MODULES, _FUNCTIONS)
}

__all__ = ["ALL_QUERIES", "BiQueryInfo"] + [
    f"bi{i}" for i in range(1, 26)
] + [f"Bi{i}Row" for i in range(1, 26)]
