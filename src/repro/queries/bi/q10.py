"""BI 10 — Central person for a tag.

Reconstructed from the GRADES-NDA 2018 first draft (figure-embedded in
the supplied spec — see DESIGN.md).  Semantics implemented:

Given a Tag and a date, each Person gets a *score*: 100 points if the
Person is interested in the Tag (hasInterest), plus one point per
Message with the Tag the Person created after the date.  A Person's
``friendsScore`` is the sum of their friends' scores.  Return persons
with a positive ``score + friendsScore``.

Sort: score + friendsScore descending, person id ascending.  Limit 100.
Choke points: 2.1, 2.3, 3.2, 8.4.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.bi.base import BiQueryInfo
from repro.util.dates import Date, date_to_datetime
from repro.engine import scan_messages, sort_key, top_k

INFO = BiQueryInfo(
    10,
    "Central person for a tag",
    ("1.2", "2.1", "2.3", "3.2", "8.4", "8.5"),
    from_spec_text=False,
)

INTEREST_SCORE = 100


class Bi10Row(NamedTuple):
    person_id: int
    score: int
    friends_score: int


def bi10(graph: SocialGraph, tag: str, date: Date) -> list[Bi10Row]:
    """Run BI 10 for a tag name and a minimum message date."""
    tag_id = graph.tag_id(tag)
    threshold = date_to_datetime(date)

    scores: dict[int, int] = defaultdict(int)
    for person_id in graph.persons_interested_in(tag_id):
        scores[person_id] += INTEREST_SCORE
    for message in scan_messages(graph, tag=tag_id, window=(threshold + 1, None)):
        scores[message.creator_id] += 1

    top = top_k(
        INFO.limit,
        key=lambda r: sort_key(
            (r.score + r.friends_score, True), (r.person_id, False)
        ),
    )
    # Persons with zero own score can still enter through friends.
    candidates = set(scores)
    for person_id in scores:
        candidates.update(graph.friends_of(person_id))
    for person_id in candidates:
        friends_score = sum(
            scores.get(friend, 0) for friend in graph.friends_of(person_id)
        )
        score = scores.get(person_id, 0)
        if score + friends_score > 0:
            top.add(Bi10Row(person_id, score, friends_score))
    return top.result()
