"""Helpers shared by the BI and Interactive query implementations."""

from __future__ import annotations

from repro.engine import expand
from repro.graph.store import SocialGraph
from repro.schema.entities import Comment, Message, Post
from repro.util.dates import DateTime


def knows_distances(
    graph: SocialGraph, start: int, max_hops: int
) -> dict[int, int]:
    """BFS over knows: person id -> shortest hop distance in [1, max_hops].

    The start person is excluded, matching every query that asks for
    "friends and friends of friends (excluding the start Person)".
    Level-synchronous expansion through the engine's expand() operator,
    which tallies the knows edges followed (CP-7.3).
    """
    distances: dict[int, int] = {start: 0}
    frontier = [start]
    depth = 0
    while frontier and depth < max_hops:
        depth += 1
        next_frontier: list[int] = []
        for _, friend in expand(frontier, graph.friends_of):
            if friend not in distances:
                distances[friend] = depth
                next_frontier.append(friend)
        frontier = next_frontier
    del distances[start]
    return distances


def shortest_path_length(graph: SocialGraph, source: int, target: int) -> int:
    """Length of the shortest knows path, -1 when disconnected, 0 if same.

    Bidirectional BFS — the strategy choke point CP-7.3 describes
    ("having reached the border of a search going in the opposite
    direction").
    """
    if source == target:
        return 0
    if source not in graph.persons or target not in graph.persons:
        return -1
    forward = {source: 0}
    backward = {target: 0}
    forward_frontier = [source]
    backward_frontier = [target]
    depth = 0
    while forward_frontier and backward_frontier:
        depth += 1
        # Expand the smaller frontier.
        if len(forward_frontier) <= len(backward_frontier):
            frontier, seen, other = forward_frontier, forward, backward
        else:
            frontier, seen, other = backward_frontier, backward, forward
        next_frontier: list[int] = []
        for node in frontier:
            for friend in graph.friends_of(node):
                if friend in other:
                    return seen[node] + 1 + other[friend]
                if friend not in seen:
                    seen[friend] = seen[node] + 1
                    next_frontier.append(friend)
        if frontier is forward_frontier:
            forward_frontier = next_frontier
        else:
            backward_frontier = next_frontier
    return -1


def all_shortest_paths(
    graph: SocialGraph, source: int, target: int
) -> list[list[int]]:
    """Every shortest knows path from source to target (inclusive ends)."""
    if source == target:
        return [[source]]
    # BFS layering, then backward enumeration over predecessor sets.
    predecessors: dict[int, list[int]] = {source: []}
    frontier = [source]
    found = False
    while frontier and not found:
        next_layer: dict[int, list[int]] = {}
        for node in frontier:
            for friend in graph.friends_of(node):
                if friend in predecessors:
                    continue
                next_layer.setdefault(friend, []).append(node)
        if target in next_layer:
            found = True
        predecessors.update(next_layer)
        frontier = list(next_layer)
    if not found:
        return []
    paths: list[list[int]] = []
    stack: list[tuple[int, list[int]]] = [(target, [target])]
    while stack:
        node, suffix = stack.pop()
        if node == source:
            paths.append(list(reversed(suffix)))
            continue
        for pred in predecessors[node]:
            stack.append((pred, suffix + [pred]))
    paths.sort()
    return paths


def in_window(ts: DateTime, start: DateTime, end: DateTime) -> bool:
    """Closed-open interval membership [start, end) used across queries."""
    return start <= ts < end


def message_language(graph: SocialGraph, message: Message) -> str:
    """The language of a Message per BI 18: a Post's own language; a
    Comment's is the language of the Post initiating its thread.

    Delegates to the store so a frozen snapshot can answer from its
    root-ordinal + language columns without materializing the root."""
    return graph.language_of_message(message)


def direct_reply_pairs(comment: Comment, graph: SocialGraph) -> tuple[int, int, bool]:
    """(reply author, parent author, parent is post) of a direct reply."""
    parent = graph.parent_of(comment)
    return comment.creator_id, parent.creator_id, isinstance(parent, Post)
