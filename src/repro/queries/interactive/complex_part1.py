"""Interactive complex reads IC 1 - IC 7 (spec section 4.1)."""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.common import knows_distances
from repro.queries.interactive.base import IcQueryInfo
from repro.util.dates import (
    Date,
    DateTime,
    MILLIS_PER_DAY,
    MILLIS_PER_MINUTE,
    date_to_datetime,
)
from repro.engine import scan_messages, sort_key, top_k

# ---------------------------------------------------------------------------
# IC 1 — Friends with certain name
# ---------------------------------------------------------------------------

IC1_INFO = IcQueryInfo(
    "complex", 1, "Friends with certain name", ("2.1", "5.3", "8.2"), limit=20
)


class Ic1Row(NamedTuple):
    friend_id: int
    friend_last_name: str
    distance_from_person: int
    friend_birthday: Date
    friend_creation_date: DateTime
    friend_gender: str
    friend_browser_used: str
    friend_location_ip: str
    friend_emails: tuple[str, ...]
    friend_languages: tuple[str, ...]
    friend_city_name: str
    friend_universities: tuple[tuple[str, int, str], ...]
    friend_companies: tuple[tuple[str, int, str], ...]


class _Ic1Candidate(NamedTuple):
    """Pre-projection match: exactly the spec's ordering columns."""

    distance: int
    last_name: str
    friend_id: int


def ic1(graph: SocialGraph, person_id: int, first_name: str) -> list[Ic1Row]:
    """Friends up to 3 knows hops with the given first name."""
    distances = knows_distances(graph, person_id, 3)
    top = top_k(
        IC1_INFO.limit,
        key=lambda c: (c.distance, c.last_name, c.friend_id),
    )
    for friend_id, distance in distances.items():
        person = graph.persons[friend_id]
        if person.first_name != first_name:
            continue
        top.add(_Ic1Candidate(distance, person.last_name, friend_id))

    rows = []
    for distance, _, friend_id in top:
        person = graph.persons[friend_id]
        universities = tuple(
            sorted(
                (
                    graph.organisations[s.university_id].name,
                    s.class_year,
                    graph.places[
                        graph.organisations[s.university_id].place_id
                    ].name,
                )
                for s in graph.study_at_of(friend_id)
            )
        )
        companies = tuple(
            sorted(
                (
                    graph.organisations[w.company_id].name,
                    w.work_from,
                    graph.places[graph.organisations[w.company_id].place_id].name,
                )
                for w in graph.work_at_of(friend_id)
            )
        )
        rows.append(
            Ic1Row(
                friend_id=friend_id,
                friend_last_name=person.last_name,
                distance_from_person=distance,
                friend_birthday=person.birthday,
                friend_creation_date=person.creation_date,
                friend_gender=person.gender,
                friend_browser_used=person.browser_used,
                friend_location_ip=person.location_ip,
                friend_emails=tuple(person.emails),
                friend_languages=tuple(person.speaks),
                friend_city_name=graph.places[person.city_id].name,
                friend_universities=universities,
                friend_companies=companies,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# IC 2 — Recent messages by your friends
# ---------------------------------------------------------------------------

IC2_INFO = IcQueryInfo(
    "complex", 2, "Recent messages by your friends",
    ("1.1", "2.2", "2.3", "3.2", "8.5"), limit=20,
)


class Ic2Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    message_id: int
    message_content: str
    message_creation_date: DateTime


def ic2(graph: SocialGraph, person_id: int, max_date: Date) -> list[Ic2Row]:
    """Most recent friend messages created before max_date (exclusive)."""
    threshold = date_to_datetime(max_date)
    top = top_k(
        IC2_INFO.limit,
        key=lambda r: sort_key(
            (r.message_creation_date, True), (r.message_id, False)
        ),
    )
    for friend_id in graph.friends_of(person_id):
        friend = graph.persons[friend_id]
        for message in scan_messages(
            graph, creator=friend_id, window=(None, threshold)
        ):
            if not top.would_enter(
                sort_key((message.creation_date, True), (message.id, False))
            ):
                continue
            top.add(
                Ic2Row(
                    friend_id,
                    friend.first_name,
                    friend.last_name,
                    message.id,
                    message.content_or_image,
                    message.creation_date,
                )
            )
    return top.result()


# ---------------------------------------------------------------------------
# IC 3 — Friends and friends of friends that have been to given countries
# ---------------------------------------------------------------------------

IC3_INFO = IcQueryInfo(
    "complex", 3, "Friends within two hops that have been to given countries",
    ("2.1", "3.1", "5.1", "8.2", "8.5"), limit=20,
)


class Ic3Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    x_count: int
    y_count: int
    count: int


def ic3(
    graph: SocialGraph,
    person_id: int,
    country_x_name: str,
    country_y_name: str,
    start_date: Date,
    duration_days: int,
) -> list[Ic3Row]:
    """Foreign friends (<= 2 hops) with messages from both countries."""
    x_id = graph.country_id(country_x_name)
    y_id = graph.country_id(country_y_name)
    start = date_to_datetime(start_date)
    end = start + duration_days * MILLIS_PER_DAY

    top = top_k(
        IC3_INFO.limit,
        key=lambda r: sort_key((r.x_count, True), (r.person_id, False)),
    )
    for friend_id in knows_distances(graph, person_id, 2):
        home = graph.country_of_person(friend_id)
        if home in (x_id, y_id):
            continue  # only Persons foreign to both countries
        x_count = y_count = 0
        for message in scan_messages(
            graph, creator=friend_id, window=(start, end)
        ):
            if message.country_id == x_id:
                x_count += 1
            elif message.country_id == y_id:
                y_count += 1
        if x_count and y_count:
            person = graph.persons[friend_id]
            top.add(
                Ic3Row(
                    friend_id,
                    person.first_name,
                    person.last_name,
                    x_count,
                    y_count,
                    x_count + y_count,
                )
            )
    return top.result()


# ---------------------------------------------------------------------------
# IC 4 — New topics
# ---------------------------------------------------------------------------

IC4_INFO = IcQueryInfo(
    "complex", 4, "New topics", ("2.3", "8.2", "8.5"), limit=10
)


class Ic4Row(NamedTuple):
    tag_name: str
    post_count: int


def ic4(
    graph: SocialGraph, person_id: int, start_date: Date, duration_days: int
) -> list[Ic4Row]:
    """Tags on friends' posts in the window, never on their posts before."""
    start = date_to_datetime(start_date)
    end = start + duration_days * MILLIS_PER_DAY

    in_counts: dict[int, int] = defaultdict(int)
    before: set[int] = set()
    for friend_id in graph.friends_of(person_id):
        for post in graph.posts_by(friend_id):
            if post.creation_date < start:
                before.update(post.tag_ids)
            elif post.creation_date < end:
                for tag_id in post.tag_ids:
                    in_counts[tag_id] += 1

    top = top_k(
        IC4_INFO.limit,
        key=lambda r: sort_key((r.post_count, True), (r.tag_name, False)),
    )
    for tag_id, count in in_counts.items():
        if tag_id not in before:
            top.add(Ic4Row(graph.tags[tag_id].name, count))
    return top.result()


# ---------------------------------------------------------------------------
# IC 5 — New groups
# ---------------------------------------------------------------------------

IC5_INFO = IcQueryInfo(
    "complex", 5, "New groups", ("2.3", "3.3", "8.2", "8.5"), limit=20
)


class Ic5Row(NamedTuple):
    forum_title: str
    forum_id: int
    post_count: int


def ic5(graph: SocialGraph, person_id: int, min_date: Date) -> list[Ic5Row]:
    """Forums friends (<= 2 hops) joined after min_date, ranked by the
    number of posts those recent joiners made in the forum."""
    threshold = date_to_datetime(min_date)
    circle = knows_distances(graph, person_id, 2)

    joiners: dict[int, set[int]] = defaultdict(set)
    for friend_id in circle:
        for membership in graph.forums_of_member(friend_id):
            if membership.join_date > threshold:
                joiners[membership.forum_id].add(friend_id)

    top = top_k(
        IC5_INFO.limit,
        key=lambda r: sort_key((r.post_count, True), (r.forum_id, False)),
    )
    for forum_id, members in joiners.items():
        post_count = sum(
            1
            for post in graph.posts_in_forum(forum_id)
            if post.creator_id in members
        )
        top.add(Ic5Row(graph.forums[forum_id].title, forum_id, post_count))
    return top.result()


# ---------------------------------------------------------------------------
# IC 6 — Tag co-occurrence
# ---------------------------------------------------------------------------

IC6_INFO = IcQueryInfo("complex", 6, "Tag co-occurrence", ("5.1",), limit=10)


class Ic6Row(NamedTuple):
    tag_name: str
    post_count: int


def ic6(graph: SocialGraph, person_id: int, tag_name: str) -> list[Ic6Row]:
    """Other tags on friends' (<= 2 hops) posts carrying the given tag."""
    tag_id = graph.tag_id(tag_name)
    circle = knows_distances(graph, person_id, 2)

    counts: dict[int, int] = defaultdict(int)
    for friend_id in circle:
        for post in graph.posts_by(friend_id):
            if tag_id not in post.tag_ids:
                continue
            for other in post.tag_ids:
                if other != tag_id:
                    counts[other] += 1

    top = top_k(
        IC6_INFO.limit,
        key=lambda r: sort_key((r.post_count, True), (r.tag_name, False)),
    )
    for other, count in counts.items():
        top.add(Ic6Row(graph.tags[other].name, count))
    return top.result()


# ---------------------------------------------------------------------------
# IC 7 — Recent likers
# ---------------------------------------------------------------------------

IC7_INFO = IcQueryInfo(
    "complex", 7, "Recent likers",
    ("2.2", "2.3", "3.3", "5.1", "8.1", "8.3"), limit=20,
)


class Ic7Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    like_creation_date: DateTime
    comment_or_post_id: int
    comment_or_post_content: str
    minutes_latency: int
    is_new: bool


def ic7(graph: SocialGraph, person_id: int) -> list[Ic7Row]:
    """Most recent like per liker of the start person's messages."""
    # liker -> (like ts, message id) of their most recent like; ties on
    # time resolved towards the message with the lowest id (spec note).
    latest: dict[int, tuple[DateTime, int]] = {}
    for message in graph.messages_by(person_id):
        for like in graph.likes_of_message(message.id):
            current = latest.get(like.person_id)
            candidate = (like.creation_date, message.id)
            if (
                current is None
                or candidate[0] > current[0]
                or (candidate[0] == current[0] and candidate[1] < current[1])
            ):
                latest[like.person_id] = candidate

    friends = set(graph.friends_of(person_id))
    top = top_k(
        IC7_INFO.limit,
        key=lambda r: sort_key(
            (r.like_creation_date, True), (r.person_id, False)
        ),
    )
    for liker_id, (like_ts, message_id) in latest.items():
        liker = graph.persons[liker_id]
        message = graph.message(message_id)
        top.add(
            Ic7Row(
                liker_id,
                liker.first_name,
                liker.last_name,
                like_ts,
                message_id,
                message.content_or_image,
                (like_ts - message.creation_date) // MILLIS_PER_MINUTE,
                liker_id not in friends,
            )
        )
    return top.result()
