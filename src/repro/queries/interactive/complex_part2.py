"""Interactive complex reads IC 8 - IC 14 (spec section 4.1)."""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.common import (
    all_shortest_paths,
    knows_distances,
    shortest_path_length,
)
from repro.queries.interactive.base import IcQueryInfo
from repro.util.dates import Date, DateTime, date_to_datetime, day_of, month_of
from repro.engine import scan_messages, sort_key, top_k

# ---------------------------------------------------------------------------
# IC 8 — Recent replies
# ---------------------------------------------------------------------------

IC8_INFO = IcQueryInfo(
    "complex", 8, "Recent replies", ("2.4", "3.2", "3.3", "5.3"), limit=20
)


class Ic8Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    comment_creation_date: DateTime
    comment_id: int
    comment_content: str


def ic8(graph: SocialGraph, person_id: int) -> list[Ic8Row]:
    """Most recent direct (single-hop) replies to the person's messages."""
    top = top_k(
        IC8_INFO.limit,
        key=lambda r: sort_key(
            (r.comment_creation_date, True), (r.comment_id, False)
        ),
    )
    for message in graph.messages_by(person_id):
        for reply in graph.replies_of(message.id):
            if not top.would_enter(
                sort_key((reply.creation_date, True), (reply.id, False))
            ):
                continue
            author = graph.persons[reply.creator_id]
            top.add(
                Ic8Row(
                    reply.creator_id,
                    author.first_name,
                    author.last_name,
                    reply.creation_date,
                    reply.id,
                    reply.content,
                )
            )
    return top.result()


# ---------------------------------------------------------------------------
# IC 9 — Recent messages by friends or friends of friends
# ---------------------------------------------------------------------------

IC9_INFO = IcQueryInfo(
    "complex", 9, "Recent messages by friends or friends of friends",
    ("1.1", "1.2", "2.2", "2.3", "3.2", "3.3", "8.5"), limit=20,
)


class Ic9Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    message_id: int
    message_content: str
    message_creation_date: DateTime


def ic9(graph: SocialGraph, person_id: int, max_date: Date) -> list[Ic9Row]:
    """Messages by friends <= 2 hops created before max_date (exclusive)."""
    threshold = date_to_datetime(max_date)
    top = top_k(
        IC9_INFO.limit,
        key=lambda r: sort_key(
            (r.message_creation_date, True), (r.message_id, False)
        ),
    )
    for friend_id in knows_distances(graph, person_id, 2):
        friend = graph.persons[friend_id]
        for message in scan_messages(
            graph, creator=friend_id, window=(None, threshold)
        ):
            if not top.would_enter(
                sort_key((message.creation_date, True), (message.id, False))
            ):
                continue
            top.add(
                Ic9Row(
                    friend_id,
                    friend.first_name,
                    friend.last_name,
                    message.id,
                    message.content_or_image,
                    message.creation_date,
                )
            )
    return top.result()


# ---------------------------------------------------------------------------
# IC 10 — Friend recommendation
# ---------------------------------------------------------------------------

IC10_INFO = IcQueryInfo(
    "complex", 10, "Friend recommendation",
    ("2.3", "3.3", "4.1", "4.2", "5.1", "5.2", "6.1", "7.1", "8.6"), limit=10,
)


class Ic10Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    common_interest_score: int
    person_gender: str
    person_city_name: str


def _birthday_matches(birthday: Date, month: int) -> bool:
    """Born on or after the 21st of ``month`` and before the 22nd of the
    following month (any year)."""
    next_month = 1 if month == 12 else month + 1
    ts = date_to_datetime(birthday)
    b_month, b_day = month_of(ts), day_of(ts)
    if b_month == month and b_day >= 21:
        return True
    return b_month == next_month and b_day < 22


def ic10(graph: SocialGraph, person_id: int, month: int) -> list[Ic10Row]:
    """Recommend friends of friends by common interest score."""
    interests = set(graph.persons[person_id].interests)
    distances = knows_distances(graph, person_id, 2)

    top = top_k(
        IC10_INFO.limit,
        key=lambda r: sort_key(
            (r.common_interest_score, True), (r.person_id, False)
        ),
    )
    for candidate_id, distance in distances.items():
        if distance != 2:
            continue  # excludes the start person and immediate friends
        candidate = graph.persons[candidate_id]
        if not _birthday_matches(candidate.birthday, month):
            continue
        common = uncommon = 0
        for post in graph.posts_by(candidate_id):
            if interests.intersection(post.tag_ids):
                common += 1
            else:
                uncommon += 1
        top.add(
            Ic10Row(
                candidate_id,
                candidate.first_name,
                candidate.last_name,
                common - uncommon,
                candidate.gender,
                graph.places[candidate.city_id].name,
            )
        )
    return top.result()


# ---------------------------------------------------------------------------
# IC 11 — Job referral
# ---------------------------------------------------------------------------

IC11_INFO = IcQueryInfo(
    "complex", 11, "Job referral", ("1.3", "2.4", "3.3"), limit=10
)


class Ic11Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    organisation_name: str
    work_from: int


def ic11(
    graph: SocialGraph, person_id: int, country_name: str, work_from_year: int
) -> list[Ic11Row]:
    """Friends <= 2 hops working at a company in the country since before
    ``work_from_year``."""
    country_id = graph.country_id(country_name)
    top = top_k(
        IC11_INFO.limit,
        key=lambda r: sort_key(
            (r.work_from, False),
            (r.person_id, False),
            (r.organisation_name, True),
        ),
    )
    for friend_id in knows_distances(graph, person_id, 2):
        friend = graph.persons[friend_id]
        for record in graph.work_at_of(friend_id):
            if record.work_from >= work_from_year:
                continue
            company = graph.organisations[record.company_id]
            if company.place_id != country_id:
                continue
            top.add(
                Ic11Row(
                    friend_id,
                    friend.first_name,
                    friend.last_name,
                    company.name,
                    record.work_from,
                )
            )
    return top.result()


# ---------------------------------------------------------------------------
# IC 12 — Expert search
# ---------------------------------------------------------------------------

IC12_INFO = IcQueryInfo(
    "complex", 12, "Expert search", ("3.3", "7.2", "7.3", "8.2"), limit=20
)


class Ic12Row(NamedTuple):
    person_id: int
    person_first_name: str
    person_last_name: str
    tag_names: tuple[str, ...]
    reply_count: int


def ic12(graph: SocialGraph, person_id: int, tag_class_name: str) -> list[Ic12Row]:
    """Friends' direct reply comments to posts tagged in the class tree."""
    class_tags = graph.tags_in_class_tree(graph.tagclass_id(tag_class_name))

    reply_counts: dict[int, int] = defaultdict(int)
    tag_sets: dict[int, set[str]] = defaultdict(set)
    for friend_id in graph.friends_of(person_id):
        for comment in graph.comments_by(friend_id):
            if comment.reply_of_post < 0:
                continue  # only direct (single-hop) replies to Posts
            post = graph.posts[comment.reply_of_post]
            matched = class_tags.intersection(post.tag_ids)
            if not matched:
                continue
            reply_counts[friend_id] += 1
            tag_sets[friend_id].update(graph.tags[t].name for t in matched)

    top = top_k(
        IC12_INFO.limit,
        key=lambda r: sort_key((r.reply_count, True), (r.person_id, False)),
    )
    for friend_id, count in reply_counts.items():
        friend = graph.persons[friend_id]
        top.add(
            Ic12Row(
                friend_id,
                friend.first_name,
                friend.last_name,
                tuple(sorted(tag_sets[friend_id])),
                count,
            )
        )
    return top.result()


# ---------------------------------------------------------------------------
# IC 13 — Single shortest path
# ---------------------------------------------------------------------------

IC13_INFO = IcQueryInfo(
    "complex", 13, "Single shortest path",
    ("3.3", "7.2", "7.3", "8.1", "8.6"), limit=None,
)


class Ic13Row(NamedTuple):
    shortest_path_length: int


def ic13(graph: SocialGraph, person1_id: int, person2_id: int) -> list[Ic13Row]:
    """Length of the shortest knows path (-1 disconnected, 0 identical)."""
    return [Ic13Row(shortest_path_length(graph, person1_id, person2_id))]


# ---------------------------------------------------------------------------
# IC 14 — Trusted connection paths
# ---------------------------------------------------------------------------

IC14_INFO = IcQueryInfo(
    "complex", 14, "Trusted connection paths",
    ("3.3", "7.2", "7.3", "8.1", "8.2", "8.3", "8.6"), limit=None,
)

POST_REPLY_WEIGHT = 1.0
COMMENT_REPLY_WEIGHT = 0.5


class Ic14Row(NamedTuple):
    person_ids_in_path: tuple[int, ...]
    path_weight: float


def ic14(graph: SocialGraph, person1_id: int, person2_id: int) -> list[Ic14Row]:
    """All shortest knows paths, weighted by reply interactions."""
    paths = all_shortest_paths(graph, person1_id, person2_id)
    if not paths:
        return []

    pair_weight: dict[tuple[int, int], float] = {}

    def weight_of(a: int, b: int) -> float:
        pair = (min(a, b), max(a, b))
        cached = pair_weight.get(pair)
        if cached is not None:
            return cached
        weight = 0.0
        for x, y in ((a, b), (b, a)):
            for comment in graph.comments_by(x):
                parent = graph.parent_of(comment)
                if parent.creator_id != y:
                    continue
                weight += (
                    COMMENT_REPLY_WEIGHT if parent.is_comment else POST_REPLY_WEIGHT
                )
        pair_weight[pair] = weight
        return weight

    rows = [
        Ic14Row(
            tuple(path),
            sum(weight_of(a, b) for a, b in zip(path, path[1:])),
        )
        for path in paths
    ]
    rows.sort(key=lambda r: (-r.path_weight, r.person_ids_in_path))
    return rows
