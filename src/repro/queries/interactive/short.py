"""Interactive short reads IS 1 - IS 7 (spec section 4.2)."""

from __future__ import annotations

from typing import NamedTuple

from repro.graph.store import SocialGraph
from repro.queries.interactive.base import IcQueryInfo
from repro.util.dates import Date, DateTime

IS1_INFO = IcQueryInfo("short", 1, "Profile of a person")
IS2_INFO = IcQueryInfo("short", 2, "Recent messages of a person", limit=10)
IS3_INFO = IcQueryInfo("short", 3, "Friends of a person")
IS4_INFO = IcQueryInfo("short", 4, "Content of a message")
IS5_INFO = IcQueryInfo("short", 5, "Creator of a message")
IS6_INFO = IcQueryInfo("short", 6, "Forum of a message")
IS7_INFO = IcQueryInfo("short", 7, "Replies of a message")


class Is1Row(NamedTuple):
    first_name: str
    last_name: str
    birthday: Date
    location_ip: str
    browser_used: str
    city_id: int
    gender: str
    creation_date: DateTime


def is1(graph: SocialGraph, person_id: int) -> list[Is1Row]:
    """Profile of a person."""
    person = graph.persons[person_id]
    return [
        Is1Row(
            person.first_name,
            person.last_name,
            person.birthday,
            person.location_ip,
            person.browser_used,
            person.city_id,
            person.gender,
            person.creation_date,
        )
    ]


class Is2Row(NamedTuple):
    message_id: int
    message_content: str
    message_creation_date: DateTime
    original_post_id: int
    original_post_author_id: int
    original_post_author_first_name: str
    original_post_author_last_name: str


def is2(graph: SocialGraph, person_id: int) -> list[Is2Row]:
    """The person's 10 most recent messages with their thread's root Post."""
    messages = sorted(
        graph.messages_by(person_id),
        key=lambda m: (-m.creation_date, -m.id),
    )[: IS2_INFO.limit]
    rows = []
    for message in messages:
        root = graph.root_post_of(message)
        author = graph.persons[root.creator_id]
        rows.append(
            Is2Row(
                message.id,
                message.content_or_image,
                message.creation_date,
                root.id,
                root.creator_id,
                author.first_name,
                author.last_name,
            )
        )
    return rows


class Is3Row(NamedTuple):
    person_id: int
    first_name: str
    last_name: str
    friendship_creation_date: DateTime


def is3(graph: SocialGraph, person_id: int) -> list[Is3Row]:
    """All friends with the date the friendship was established."""
    rows = []
    for friend_id, since in graph.friends_of(person_id).items():
        friend = graph.persons[friend_id]
        rows.append(
            Is3Row(friend_id, friend.first_name, friend.last_name, since)
        )
    rows.sort(key=lambda r: (-r.friendship_creation_date, r.person_id))
    return rows


class Is4Row(NamedTuple):
    message_creation_date: DateTime
    message_content: str


def is4(graph: SocialGraph, message_id: int) -> list[Is4Row]:
    """Content and creation date of a message."""
    message = graph.message(message_id)
    return [Is4Row(message.creation_date, message.content_or_image)]


class Is5Row(NamedTuple):
    person_id: int
    first_name: str
    last_name: str


def is5(graph: SocialGraph, message_id: int) -> list[Is5Row]:
    """Author of a message."""
    creator = graph.persons[graph.message(message_id).creator_id]
    return [Is5Row(creator.id, creator.first_name, creator.last_name)]


class Is6Row(NamedTuple):
    forum_id: int
    forum_title: str
    moderator_id: int
    moderator_first_name: str
    moderator_last_name: str


def is6(graph: SocialGraph, message_id: int) -> list[Is6Row]:
    """The Forum containing a message's thread, with its moderator."""
    root = graph.root_post_of(graph.message(message_id))
    forum = graph.forums[root.forum_id]
    moderator = graph.persons[forum.moderator_id]
    return [
        Is6Row(
            forum.id,
            forum.title,
            moderator.id,
            moderator.first_name,
            moderator.last_name,
        )
    ]


class Is7Row(NamedTuple):
    comment_id: int
    comment_content: str
    comment_creation_date: DateTime
    reply_author_id: int
    reply_author_first_name: str
    reply_author_last_name: str
    reply_author_knows_original: bool


def is7(graph: SocialGraph, message_id: int) -> list[Is7Row]:
    """Direct reply Comments, flagging authors who know the original
    author (false when the reply author *is* the original author)."""
    original_author = graph.message(message_id).creator_id
    original_friends = set(graph.friends_of(original_author))
    rows = []
    for reply in graph.replies_of(message_id):
        author = graph.persons[reply.creator_id]
        knows = (
            reply.creator_id != original_author
            and reply.creator_id in original_friends
        )
        rows.append(
            Is7Row(
                reply.id,
                reply.content,
                reply.creation_date,
                author.id,
                author.first_name,
                author.last_name,
                knows,
            )
        )
    rows.sort(key=lambda r: (-r.comment_creation_date, r.reply_author_id))
    return rows


#: query number -> (callable, IcQueryInfo)
ALL_SHORT: dict[int, tuple] = {
    1: (is1, IS1_INFO),
    2: (is2, IS2_INFO),
    3: (is3, IS3_INFO),
    4: (is4, IS4_INFO),
    5: (is5, IS5_INFO),
    6: (is6, IS6_INFO),
    7: (is7, IS7_INFO),
}
