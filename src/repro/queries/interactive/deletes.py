"""Delete operations DEL 1 - DEL 8.

The supplied spec (section 5.2) notes that "the task force is currently
working on defining a mix of insert and delete operations that can be
applied to both the Interactive and the BI workloads"; the VLDB 2022
version of the BI workload ships them as DEL 1-8, mirroring the insert
set.  This module implements that released design:

========  =============================  ==========================
DEL 1     Remove person                  cascades (see store docs)
DEL 2     Remove like from post          edge only
DEL 3     Remove like from comment       edge only
DEL 4     Remove forum                   cascades to posts/threads
DEL 5     Remove forum membership        edge only
DEL 6     Remove post                    cascades to its thread
DEL 7     Remove comment                 cascades to its subtree
DEL 8     Remove friendship              edge only
========  =============================  ==========================

Every operation is tolerant of an already-absent target: a cascade from
an earlier delete in the same stream may have removed it, which the
official driver likewise treats as success.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.store import SocialGraph
from repro.queries.interactive.base import IcQueryInfo

DEL1_INFO = IcQueryInfo("delete", 1, "Remove person")
DEL2_INFO = IcQueryInfo("delete", 2, "Remove like from post")
DEL3_INFO = IcQueryInfo("delete", 3, "Remove like from comment")
DEL4_INFO = IcQueryInfo("delete", 4, "Remove forum")
DEL5_INFO = IcQueryInfo("delete", 5, "Remove forum membership")
DEL6_INFO = IcQueryInfo("delete", 6, "Remove post")
DEL7_INFO = IcQueryInfo("delete", 7, "Remove comment")
DEL8_INFO = IcQueryInfo("delete", 8, "Remove friendship")


@dataclass(slots=True, frozen=True)
class DeletePersonParams:
    person_id: int


def del1(graph: SocialGraph, params: DeletePersonParams) -> None:
    graph.delete_person(params.person_id)


@dataclass(slots=True, frozen=True)
class DeleteLikeParams:
    person_id: int
    message_id: int


def del2(graph: SocialGraph, params: DeleteLikeParams) -> None:
    graph.delete_like(params.person_id, params.message_id)


def del3(graph: SocialGraph, params: DeleteLikeParams) -> None:
    graph.delete_like(params.person_id, params.message_id)


@dataclass(slots=True, frozen=True)
class DeleteForumParams:
    forum_id: int


def del4(graph: SocialGraph, params: DeleteForumParams) -> None:
    graph.delete_forum(params.forum_id)


@dataclass(slots=True, frozen=True)
class DeleteMembershipParams:
    forum_id: int
    person_id: int


def del5(graph: SocialGraph, params: DeleteMembershipParams) -> None:
    graph.delete_membership(params.forum_id, params.person_id)


@dataclass(slots=True, frozen=True)
class DeleteMessageParams:
    message_id: int


def del6(graph: SocialGraph, params: DeleteMessageParams) -> None:
    graph.delete_post(params.message_id)


def del7(graph: SocialGraph, params: DeleteMessageParams) -> None:
    graph.delete_comment(params.message_id)


@dataclass(slots=True, frozen=True)
class DeleteFriendshipParams:
    person1_id: int
    person2_id: int


def del8(graph: SocialGraph, params: DeleteFriendshipParams) -> None:
    graph.delete_knows(params.person1_id, params.person2_id)


#: operation id -> (callable, IcQueryInfo)
ALL_DELETES: dict[int, tuple] = {
    1: (del1, DEL1_INFO),
    2: (del2, DEL2_INFO),
    3: (del3, DEL3_INFO),
    4: (del4, DEL4_INFO),
    5: (del5, DEL5_INFO),
    6: (del6, DEL6_INFO),
    7: (del7, DEL7_INFO),
    8: (del8, DEL8_INFO),
}
