"""Metadata shared by the Interactive query modules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IcQueryInfo:
    """Descriptor of one Interactive query (spec chapter 4)."""

    kind: str  # "complex", "short", "update" or "delete"
    number: int
    title: str
    choke_points: tuple[str, ...] = ()
    limit: int | None = None

    @property
    def name(self) -> str:
        prefix = {
            "complex": "IC", "short": "IS", "update": "IU", "delete": "DEL",
        }[self.kind]
        return f"{prefix} {self.number}"
