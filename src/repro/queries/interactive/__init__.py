"""Interactive workload (spec chapter 4): complex reads IC 1-14, short
reads IS 1-7, and updates IU 1-8."""

from repro.queries.interactive.base import IcQueryInfo
from repro.queries.interactive.complex import ALL_COMPLEX
from repro.queries.interactive.short import ALL_SHORT
from repro.queries.interactive.updates import ALL_UPDATES

__all__ = ["ALL_COMPLEX", "ALL_SHORT", "ALL_UPDATES", "IcQueryInfo"]
