"""Interactive updates IU 1 - IU 8 (spec section 4.3, Table 2.18).

Each update inserts either a single node with its edges to existing
nodes, or a single edge between existing nodes.  The parameter records
mirror the update-stream schemas of Table 2.18; the driver deserializes
stream lines into these records and dispatches through ``ALL_UPDATES``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.store import SocialGraph
from repro.queries.interactive.base import IcQueryInfo
from repro.schema.entities import Comment, Forum, ForumKind, Person, Post
from repro.schema.relations import HasMember, Knows, Likes, StudyAt, WorkAt
from repro.util.dates import Date, DateTime

IU1_INFO = IcQueryInfo("update", 1, "Add person")
IU2_INFO = IcQueryInfo("update", 2, "Add like to post")
IU3_INFO = IcQueryInfo("update", 3, "Add like to comment")
IU4_INFO = IcQueryInfo("update", 4, "Add forum")
IU5_INFO = IcQueryInfo("update", 5, "Add forum membership")
IU6_INFO = IcQueryInfo("update", 6, "Add post")
IU7_INFO = IcQueryInfo("update", 7, "Add comment")
IU8_INFO = IcQueryInfo("update", 8, "Add friendship")


@dataclass(slots=True, frozen=True)
class AddPersonParams:
    person_id: int
    first_name: str
    last_name: str
    gender: str
    birthday: Date
    creation_date: DateTime
    location_ip: str
    browser_used: str
    city_id: int
    languages: tuple[str, ...] = ()
    emails: tuple[str, ...] = ()
    tag_ids: tuple[int, ...] = ()
    study_at: tuple[tuple[int, int], ...] = ()  # (university id, class year)
    work_at: tuple[tuple[int, int], ...] = ()   # (company id, work from)


def iu1(graph: SocialGraph, params: AddPersonParams) -> None:
    """Add a Person node with its isLocatedIn/hasInterest/studyAt/workAt."""
    graph.add_person(
        Person(
            id=params.person_id,
            first_name=params.first_name,
            last_name=params.last_name,
            gender=params.gender,
            birthday=params.birthday,
            creation_date=params.creation_date,
            location_ip=params.location_ip,
            browser_used=params.browser_used,
            city_id=params.city_id,
            emails=list(params.emails),
            speaks=list(params.languages),
            interests=list(params.tag_ids),
        )
    )
    for university_id, class_year in params.study_at:
        graph.add_study_at(StudyAt(params.person_id, university_id, class_year))
    for company_id, work_from in params.work_at:
        graph.add_work_at(WorkAt(params.person_id, company_id, work_from))


@dataclass(slots=True, frozen=True)
class AddLikeParams:
    person_id: int
    message_id: int
    creation_date: DateTime


def iu2(graph: SocialGraph, params: AddLikeParams) -> None:
    """Add a likes edge to a Post."""
    if params.message_id not in graph.posts:
        raise KeyError(f"post {params.message_id} does not exist")
    if params.person_id not in graph.persons:
        raise KeyError(f"person {params.person_id} does not exist")
    graph.add_like(
        Likes(params.person_id, params.message_id, params.creation_date, True)
    )


def iu3(graph: SocialGraph, params: AddLikeParams) -> None:
    """Add a likes edge to a Comment."""
    if params.message_id not in graph.comments:
        raise KeyError(f"comment {params.message_id} does not exist")
    if params.person_id not in graph.persons:
        raise KeyError(f"person {params.person_id} does not exist")
    graph.add_like(
        Likes(params.person_id, params.message_id, params.creation_date, False)
    )


@dataclass(slots=True, frozen=True)
class AddForumParams:
    forum_id: int
    forum_title: str
    creation_date: DateTime
    moderator_person_id: int
    tag_ids: tuple[int, ...] = ()


def iu4(graph: SocialGraph, params: AddForumParams) -> None:
    """Add a Forum node with hasModerator and hasTag edges."""
    title = params.forum_title
    if title.startswith("Wall"):
        kind = ForumKind.WALL
    elif title.startswith("Album"):
        kind = ForumKind.ALBUM
    else:
        kind = ForumKind.GROUP
    graph.add_forum(
        Forum(
            id=params.forum_id,
            title=title,
            creation_date=params.creation_date,
            moderator_id=params.moderator_person_id,
            kind=kind,
            tag_ids=list(params.tag_ids),
        )
    )


@dataclass(slots=True, frozen=True)
class AddMembershipParams:
    person_id: int
    forum_id: int
    join_date: DateTime


def iu5(graph: SocialGraph, params: AddMembershipParams) -> None:
    """Add a hasMember edge.  Both endpoints must exist."""
    if params.forum_id not in graph.forums:
        raise KeyError(f"forum {params.forum_id} does not exist")
    if params.person_id not in graph.persons:
        raise KeyError(f"person {params.person_id} does not exist")
    graph.add_membership(
        HasMember(params.forum_id, params.person_id, params.join_date)
    )


@dataclass(slots=True, frozen=True)
class AddPostParams:
    post_id: int
    image_file: str
    creation_date: DateTime
    location_ip: str
    browser_used: str
    language: str
    content: str
    length: int
    author_person_id: int
    forum_id: int
    country_id: int
    tag_ids: tuple[int, ...] = ()


def iu6(graph: SocialGraph, params: AddPostParams) -> None:
    """Add a Post node with its edges.  Author and forum must exist."""
    if params.forum_id not in graph.forums:
        raise KeyError(f"forum {params.forum_id} does not exist")
    if params.author_person_id not in graph.persons:
        raise KeyError(f"person {params.author_person_id} does not exist")
    graph.add_post(
        Post(
            id=params.post_id,
            creation_date=params.creation_date,
            location_ip=params.location_ip,
            browser_used=params.browser_used,
            content=params.content,
            length=params.length,
            creator_id=params.author_person_id,
            forum_id=params.forum_id,
            country_id=params.country_id,
            language=params.language,
            image_file=params.image_file,
            tag_ids=list(params.tag_ids),
        )
    )


@dataclass(slots=True, frozen=True)
class AddCommentParams:
    comment_id: int
    creation_date: DateTime
    location_ip: str
    browser_used: str
    content: str
    length: int
    author_person_id: int
    country_id: int
    #: -1 when the comment replies to a comment (Table 2.18 convention).
    reply_to_post_id: int
    #: -1 when the comment replies to a post.
    reply_to_comment_id: int
    tag_ids: tuple[int, ...] = ()


def iu7(graph: SocialGraph, params: AddCommentParams) -> None:
    """Add a Comment node replying to a Post or Comment.  The author and
    the parent Message must exist (a cascading delete may have removed
    the parent, in which case the reply is rejected)."""
    parent = (
        params.reply_to_post_id
        if params.reply_to_post_id >= 0
        else params.reply_to_comment_id
    )
    if not graph.has_message(parent):
        raise KeyError(f"message {parent} does not exist")
    if params.author_person_id not in graph.persons:
        raise KeyError(f"person {params.author_person_id} does not exist")
    graph.add_comment(
        Comment(
            id=params.comment_id,
            creation_date=params.creation_date,
            location_ip=params.location_ip,
            browser_used=params.browser_used,
            content=params.content,
            length=params.length,
            creator_id=params.author_person_id,
            country_id=params.country_id,
            reply_of_post=params.reply_to_post_id,
            reply_of_comment=params.reply_to_comment_id,
            tag_ids=list(params.tag_ids),
        )
    )


@dataclass(slots=True, frozen=True)
class AddFriendshipParams:
    person1_id: int
    person2_id: int
    creation_date: DateTime


def iu8(graph: SocialGraph, params: AddFriendshipParams) -> None:
    """Add a knows edge between two existing Persons."""
    for pid in (params.person1_id, params.person2_id):
        if pid not in graph.persons:
            raise KeyError(f"person {pid} does not exist")
    graph.add_knows(
        Knows(
            min(params.person1_id, params.person2_id),
            max(params.person1_id, params.person2_id),
            params.creation_date,
        )
    )


#: operation id (Table 2.18) -> (callable, IcQueryInfo)
ALL_UPDATES: dict[int, tuple] = {
    1: (iu1, IU1_INFO),
    2: (iu2, IU2_INFO),
    3: (iu3, IU3_INFO),
    4: (iu4, IU4_INFO),
    5: (iu5, IU5_INFO),
    6: (iu6, IU6_INFO),
    7: (iu7, IU7_INFO),
    8: (iu8, IU8_INFO),
}
