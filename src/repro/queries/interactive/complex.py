"""Registry of the Interactive complex reads IC 1 - IC 14."""

from repro.queries.interactive import complex_part1 as _p1
from repro.queries.interactive import complex_part2 as _p2
from repro.queries.interactive.base import IcQueryInfo

#: query number -> (callable, IcQueryInfo)
ALL_COMPLEX: dict[int, tuple] = {
    1: (_p1.ic1, _p1.IC1_INFO),
    2: (_p1.ic2, _p1.IC2_INFO),
    3: (_p1.ic3, _p1.IC3_INFO),
    4: (_p1.ic4, _p1.IC4_INFO),
    5: (_p1.ic5, _p1.IC5_INFO),
    6: (_p1.ic6, _p1.IC6_INFO),
    7: (_p1.ic7, _p1.IC7_INFO),
    8: (_p2.ic8, _p2.IC8_INFO),
    9: (_p2.ic9, _p2.IC9_INFO),
    10: (_p2.ic10, _p2.IC10_INFO),
    11: (_p2.ic11, _p2.IC11_INFO),
    12: (_p2.ic12, _p2.IC12_INFO),
    13: (_p2.ic13, _p2.IC13_INFO),
    14: (_p2.ic14, _p2.IC14_INFO),
}

# Re-export the callables and row types at the package level.
from repro.queries.interactive.complex_part1 import (  # noqa: E402,F401
    Ic1Row, Ic2Row, Ic3Row, Ic4Row, Ic5Row, Ic6Row, Ic7Row,
    ic1, ic2, ic3, ic4, ic5, ic6, ic7,
)
from repro.queries.interactive.complex_part2 import (  # noqa: E402,F401
    Ic8Row, Ic9Row, Ic10Row, Ic11Row, Ic12Row, Ic13Row, Ic14Row,
    ic8, ic9, ic10, ic11, ic12, ic13, ic14,
)

__all__ = ["ALL_COMPLEX", "IcQueryInfo"] + [f"ic{i}" for i in range(1, 15)] + [
    f"Ic{i}Row" for i in range(1, 15)
]
