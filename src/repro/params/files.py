"""Substitution-parameter files (spec sections 2.3.4.4 and 3.3).

Datagen materializes the curated bindings on disk: one file per
operation in ``substitution_parameters/``, named
``{interactive|bi}_<id>_param.txt``.  Every line is a JSON object of
named parameters — the spec's example::

    {"PersonID": 1, "Name": "Lei", ...}

The parameter names used per query match the spec's *params* sections
(camelCase).  :func:`write_parameter_files` produces the full directory
from a :class:`~repro.params.curation.ParameterGenerator`;
:func:`read_parameter_file` loads one back into positional tuples ready
to splat into the query callables.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.params.curation import ParameterGenerator

#: Ordered parameter names per Interactive complex read (spec ch. 4).
INTERACTIVE_PARAM_NAMES: dict[int, tuple[str, ...]] = {
    1: ("personId", "firstName"),
    2: ("personId", "maxDate"),
    3: ("personId", "countryXName", "countryYName", "startDate", "durationDays"),
    4: ("personId", "startDate", "durationDays"),
    5: ("personId", "minDate"),
    6: ("personId", "tagName"),
    7: ("personId",),
    8: ("personId",),
    9: ("personId", "maxDate"),
    10: ("personId", "month"),
    11: ("personId", "countryName", "workFromYear"),
    12: ("personId", "tagClassName"),
    13: ("person1Id", "person2Id"),
    14: ("person1Id", "person2Id"),
}

#: Ordered parameter names per BI read (spec ch. 5 / GRADES-NDA draft).
BI_PARAM_NAMES: dict[int, tuple[str, ...]] = {
    1: ("date",),
    2: ("startDate", "endDate", "country1", "country2", "endOfSimulation"),
    3: ("year", "month"),
    4: ("tagClass", "country"),
    5: ("country",),
    6: ("tag",),
    7: ("tag",),
    8: ("tag",),
    9: ("tagClass1", "tagClass2", "threshold"),
    10: ("tag", "date"),
    11: ("country", "blacklist"),
    12: ("date", "likeThreshold"),
    13: ("country",),
    14: ("begin", "end"),
    15: ("country",),
    16: ("personId", "country", "tagClass", "minPathDistance", "maxPathDistance"),
    17: ("country",),
    18: ("date", "lengthThreshold", "languages"),
    19: ("date", "tagClass1", "tagClass2"),
    20: ("tagClasses",),
    21: ("country", "endDate"),
    22: ("country1", "country2"),
    23: ("country",),
    24: ("tagClass",),
    25: ("person1Id", "person2Id", "startDate", "endDate"),
}


def _jsonable(value):
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


def write_parameter_files(
    generator: ParameterGenerator,
    output_dir: Path | str,
    bindings_per_query: int = 20,
) -> Path:
    """Write the full ``substitution_parameters/`` directory."""
    root = Path(output_dir) / "substitution_parameters"
    root.mkdir(parents=True, exist_ok=True)
    for number, names in INTERACTIVE_PARAM_NAMES.items():
        _write_one(
            root / f"interactive_{number}_param.txt",
            names,
            generator.interactive(number, count=bindings_per_query),
        )
    for number, names in BI_PARAM_NAMES.items():
        _write_one(
            root / f"bi_{number}_param.txt",
            names,
            generator.bi(number, count=bindings_per_query),
        )
    return root


def _write_one(path: Path, names: tuple[str, ...], bindings: list[tuple]) -> None:
    with open(path, "w") as handle:
        for binding in bindings:
            if len(binding) != len(names):
                raise ValueError(
                    f"{path.name}: binding arity {len(binding)} !="
                    f" {len(names)} names"
                )
            record = {
                name: _jsonable(value) for name, value in zip(names, binding)
            }
            handle.write(json.dumps(record) + "\n")


def read_parameter_file(path: Path | str, names: tuple[str, ...]) -> list[tuple]:
    """Read one parameter file back into positional binding tuples."""
    bindings = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            bindings.append(
                tuple(
                    tuple(v) if isinstance(v, list) else v
                    for v in (record[name] for name in names)
                )
            )
    return bindings
