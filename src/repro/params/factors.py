"""Factor tables — the per-entity counts parameter curation selects on.

The spec (section 3.3) describes curation stage 1: "for each query
template for all possible parameter bindings, we determine the size of
intermediate results in the intended query plan ... this analysis is
effectively a side effect of data generation, that is we keep all the
necessary counts (number of friends per user, number of posts of
friends etc.) as we create the dataset."

Our generator is in-memory, so the equivalent is one pass over the
generated network collecting the same counts.  The tables are consumed
by :mod:`repro.params.curation` (stage 2, the greedy selection).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.graph.store import SocialGraph


@dataclass(slots=True)
class FactorTables:
    """Counts describing each candidate parameter's expected work."""

    #: person -> number of friends.
    friend_count: dict[int, int] = field(default_factory=dict)
    #: person -> number of friends + friends of friends (distinct).
    two_hop_count: dict[int, int] = field(default_factory=dict)
    #: person -> number of messages the person created.
    message_count: dict[int, int] = field(default_factory=dict)
    #: person -> total messages created by the person's friends.
    friend_message_count: dict[int, int] = field(default_factory=dict)
    #: person -> likes received across the person's messages.
    like_count: dict[int, int] = field(default_factory=dict)
    #: tag -> number of messages carrying the tag.
    tag_message_count: dict[int, int] = field(default_factory=dict)
    #: country place id -> number of persons living there.
    country_person_count: dict[int, int] = field(default_factory=dict)
    #: tag class -> number of tags with that direct type.
    tagclass_tag_count: dict[int, int] = field(default_factory=dict)
    #: forum -> number of members.
    forum_member_count: dict[int, int] = field(default_factory=dict)


def build_factor_tables(graph: SocialGraph) -> FactorTables:
    """Collect all factor tables in one pass over the graph."""
    tables = FactorTables()

    for person_id in graph.persons:
        friends = graph.friends_of(person_id)
        tables.friend_count[person_id] = len(friends)
        two_hop: set[int] = set(friends)
        for friend in friends:
            two_hop.update(graph.friends_of(friend))
        two_hop.discard(person_id)
        tables.two_hop_count[person_id] = len(two_hop)
        own_messages = list(graph.messages_by(person_id))
        tables.message_count[person_id] = len(own_messages)
        tables.like_count[person_id] = sum(
            len(graph.likes_of_message(m.id)) for m in own_messages
        )

    for person_id in graph.persons:
        tables.friend_message_count[person_id] = sum(
            tables.message_count[f] for f in graph.friends_of(person_id)
        )

    tag_counts: dict[int, int] = defaultdict(int)
    for message in graph.messages():
        for tag_id in message.tag_ids:
            tag_counts[tag_id] += 1
    tables.tag_message_count = dict(tag_counts)

    for person_id in graph.persons:
        country = graph.country_of_person(person_id)
        tables.country_person_count[country] = (
            tables.country_person_count.get(country, 0) + 1
        )

    for tagclass_id in graph.tag_classes:
        tables.tagclass_tag_count[tagclass_id] = len(
            graph.tags_of_class(tagclass_id)
        )

    for forum_id in graph.forums:
        tables.forum_member_count[forum_id] = len(
            graph.members_of_forum(forum_id)
        )

    return tables
