"""Substitution-parameter generation with Parameter Curation (spec 3.3)."""

from repro.params.factors import FactorTables, build_factor_tables
from repro.params.curation import (
    CurationConfig,
    curate_person_ids,
    curate_person_pairs,
    curate_tag_names,
    generate_bi_parameters,
    generate_interactive_parameters,
)

__all__ = [
    "CurationConfig",
    "FactorTables",
    "build_factor_tables",
    "curate_person_ids",
    "curate_person_pairs",
    "curate_tag_names",
    "generate_bi_parameters",
    "generate_interactive_parameters",
]
