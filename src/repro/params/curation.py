"""Parameter Curation (spec section 3.3).

Stage 2 of the procedure: given the factor tables (stage 1), a greedy
selection picks parameter bindings with *similar intermediate result
counts*, so that (P1) query runtime has bounded variance, (P2) samples
of bindings have stable runtime distributions, and (P3) the optimal
plan does not flip between bindings.

The greedy kernel is :func:`select_similar`: sort candidates by their
count, slide a window of the requested size over the sorted order, and
take the window with the smallest count spread, preferring windows
centred on the median when tied — "the average runtime corresponds to
the behaviour of the majority of the queries".

On top of the kernel, :class:`ParameterGenerator` produces curated
binding lists for every Interactive complex read (IC 1-14) and every BI
read (BI 1-25), mirroring Datagen's ``substitution_parameters/`` output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable

from repro.datagen.config import DatagenConfig
from repro.graph.store import SocialGraph
from repro.params.factors import FactorTables, build_factor_tables
from repro.queries.common import knows_distances, shortest_path_length
from repro.util.dates import Date
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class CurationConfig:
    """Knobs of the greedy selection."""

    #: Number of parameter bindings to produce per query template.
    bindings: int = 20
    #: Seed for the tie-breaking / pairing randomness.
    seed: int = 99


def select_similar(
    candidates: dict[Any, int], count: int
) -> list[Any]:
    """Greedy stage-2 selection: ``count`` keys with similar counts.

    Returns the window of the sorted-by-count candidates with minimal
    spread; among equal spreads, the window whose centre is closest to
    the median count wins.  Falls back to all candidates when fewer than
    ``count`` exist.
    """
    if not candidates:
        return []
    items = sorted(candidates.items(), key=lambda kv: (kv[1], str(kv[0])))
    if len(items) <= count:
        return [key for key, _ in items]
    counts = [value for _, value in items]
    median = counts[len(counts) // 2]
    best_start = 0
    best_key = None
    for start in range(len(items) - count + 1):
        spread = counts[start + count - 1] - counts[start]
        centre = counts[start + count // 2]
        key = (spread, abs(centre - median))
        if best_key is None or key < best_key:
            best_key = key
            best_start = start
    return [key for key, _ in items[best_start : best_start + count]]


class ParameterGenerator:
    """Curated substitution parameters for every read query."""

    def __init__(
        self,
        graph: SocialGraph,
        config: DatagenConfig,
        tables: FactorTables | None = None,
        curation: CurationConfig = CurationConfig(),
    ):
        self.graph = graph
        self.config = config
        self.tables = tables if tables is not None else build_factor_tables(graph)
        self.curation = curation
        self._rng = DeterministicRng(curation.seed, "parameter-curation")

    # -- building blocks --------------------------------------------------

    def person_ids(self, count: int | None = None) -> list[int]:
        """Persons whose 2-hop neighbourhood workload is similar."""
        count = count or self.curation.bindings
        workload = {
            pid: 10 * self.tables.two_hop_count[pid]
            + self.tables.friend_message_count[pid]
            for pid in self.graph.persons
            if self.tables.friend_count[pid] > 0
        }
        return select_similar(workload, count)

    def person_pairs(self, count: int | None = None) -> list[tuple[int, int]]:
        """Connected person pairs with similar search workloads."""
        count = count or self.curation.bindings
        persons = self.person_ids(count * 2)
        pairs: list[tuple[int, int]] = []
        for offset in range(1, len(persons)):
            if len(pairs) >= count:
                break
            for i in range(len(persons) - offset):
                a, b = persons[i], persons[i + offset]
                if a == b:
                    continue
                if shortest_path_length(self.graph, a, b) >= 1:
                    pairs.append((a, b))
                    if len(pairs) >= count:
                        break
        return pairs

    def tag_names(self, count: int | None = None) -> list[str]:
        """Tags with a similar number of messages."""
        count = count or self.curation.bindings
        selected = select_similar(dict(self.tables.tag_message_count), count)
        return [self.graph.tags[tag_id].name for tag_id in selected]

    def country_names(self, count: int | None = None) -> list[str]:
        """Countries with a similar population."""
        count = count or self.curation.bindings
        selected = select_similar(dict(self.tables.country_person_count), count)
        return [self.graph.places[c].name for c in selected]

    def tagclass_names(self, count: int | None = None) -> list[str]:
        """Tag classes whose *direct* tags carry similar message volume.

        Classes without any tagged message are excluded — bindings on
        them would make every class-scoped query trivially empty.
        """
        count = count or self.curation.bindings
        message_volume: dict[int, int] = {}
        for cls in self.graph.tag_classes:
            volume = sum(
                self.tables.tag_message_count.get(tag, 0)
                for tag in self.graph.tags_of_class(cls)
            )
            if volume > 0:
                message_volume[cls] = volume
        selected = select_similar(message_volume, count)
        return [self.graph.tag_classes[c].name for c in selected]

    def home_country_name(self, person_id: int) -> str:
        """The name of a person's home Country (for queries that scope a
        person's social circle to a country, e.g. BI 16)."""
        return self.graph.places[self.graph.country_of_person(person_id)].name

    def dates(self, count: int, lo: float = 0.3, hi: float = 0.8) -> list[Date]:
        """Evenly spaced dates across a mid-simulation fraction range."""
        start = self.config.start_date
        span = self.config.end_date - start
        if count == 1:
            return [start + int(span * (lo + hi) / 2)]
        return [
            start + int(span * (lo + (hi - lo) * i / (count - 1)))
            for i in range(count)
        ]

    def year_months(self, count: int) -> list[tuple[int, int]]:
        """(year, month) pairs inside the simulation, cycling over months."""
        months = self.config.num_years * 12 - 1  # leave the next month inside
        picks = []
        for i in range(count):
            index = (i * 7) % months
            year = self.config.start_year + index // 12
            month = index % 12 + 1
            picks.append((year, month))
        return picks

    def common_languages(self, count: int = 3) -> list[str]:
        histogram = Counter(
            post.language for post in self.graph.posts.values() if post.language
        )
        return [lang for lang, _ in histogram.most_common(count)]

    def _neighbourhood_first_name(self, person_id: int) -> str:
        """The most frequent first name within 3 hops — guarantees IC 1
        has matches for every curated start person."""
        names = Counter(
            self.graph.persons[p].first_name
            for p in knows_distances(self.graph, person_id, 3)
        )
        if not names:
            return self.graph.persons[person_id].first_name
        return names.most_common(1)[0][0]

    # -- per-query parameter lists ----------------------------------------

    def interactive(self, query_number: int, count: int | None = None) -> list[tuple]:
        """Curated parameter bindings for IC ``query_number``."""
        count = count or self.curation.bindings
        persons = self.person_ids(count)
        if not persons:
            return []
        dates = self.dates(count)
        countries = self.country_names(max(2, min(count, 8)))
        tags = self.tag_names(count)
        classes = self.tagclass_names(max(1, min(count, 6)))
        producers: dict[int, Callable[[int], tuple]] = {
            1: lambda i: (
                persons[i % len(persons)],
                self._neighbourhood_first_name(persons[i % len(persons)]),
            ),
            2: lambda i: (persons[i % len(persons)], dates[i % len(dates)]),
            3: lambda i: (
                persons[i % len(persons)],
                countries[i % len(countries)],
                countries[(i + 1) % len(countries)],
                dates[i % len(dates)],
                56,
            ),
            4: lambda i: (persons[i % len(persons)], dates[i % len(dates)], 28),
            5: lambda i: (persons[i % len(persons)], dates[i % len(dates)]),
            6: lambda i: (persons[i % len(persons)], tags[i % len(tags)]),
            7: lambda i: (persons[i % len(persons)],),
            8: lambda i: (persons[i % len(persons)],),
            9: lambda i: (persons[i % len(persons)], dates[i % len(dates)]),
            10: lambda i: (persons[i % len(persons)], i % 12 + 1),
            11: lambda i: (
                persons[i % len(persons)],
                countries[i % len(countries)],
                self.config.start_year + self.config.num_years - 1,
            ),
            12: lambda i: (persons[i % len(persons)], classes[i % len(classes)]),
        }
        if query_number in producers:
            return [producers[query_number](i) for i in range(count)]
        if query_number in (13, 14):
            return [tuple(pair) for pair in self.person_pairs(count)]
        raise ValueError(f"unknown interactive query {query_number}")

    def bi(self, query_number: int, count: int | None = None) -> list[tuple]:
        """Curated parameter bindings for BI ``query_number``."""
        count = count or self.curation.bindings
        dates = self.dates(count)
        late_dates = self.dates(count, lo=0.5, hi=0.9)
        early_dates = self.dates(count, lo=0.1, hi=0.4)
        countries = self.country_names(max(2, min(count, 8)))
        tags = self.tag_names(count)
        classes = self.tagclass_names(max(2, min(count, 6)))
        months = self.year_months(count)
        languages = self.common_languages()
        sim_end = self.config.end_date
        persons = self.person_ids(count)
        producers: dict[int, Callable[[int], tuple]] = {
            1: lambda i: (late_dates[i % len(late_dates)],),
            2: lambda i: (
                early_dates[i % len(early_dates)],
                late_dates[i % len(late_dates)],
                countries[i % len(countries)],
                countries[(i + 1) % len(countries)],
                sim_end,
            ),
            3: lambda i: months[i % len(months)],
            4: lambda i: (
                classes[i % len(classes)],
                countries[i % len(countries)],
            ),
            5: lambda i: (countries[i % len(countries)],),
            6: lambda i: (tags[i % len(tags)],),
            7: lambda i: (tags[i % len(tags)],),
            8: lambda i: (tags[i % len(tags)],),
            9: lambda i: (
                classes[i % len(classes)],
                classes[(i + 1) % len(classes)],
                5,
            ),
            10: lambda i: (tags[i % len(tags)], dates[i % len(dates)]),
            11: lambda i: (
                countries[i % len(countries)],
                ("tradition", "legend"),
            ),
            12: lambda i: (dates[i % len(dates)], 2),
            13: lambda i: (countries[i % len(countries)],),
            14: lambda i: (
                early_dates[i % len(early_dates)],
                late_dates[i % len(late_dates)],
            ),
            15: lambda i: (countries[i % len(countries)],),
            16: lambda i: (
                persons[i % len(persons)],
                # The country must intersect the start person's circle:
                # use their home country (friends are homophilous).
                self.home_country_name(persons[i % len(persons)]),
                classes[i % len(classes)],
                1,
                2,
            ),
            17: lambda i: (countries[i % len(countries)],),
            18: lambda i: (early_dates[i % len(early_dates)], 120, languages),
            19: lambda i: (
                # Birthday threshold: the candidate-person birthdays span
                # 1980-1995; the median keeps roughly half as candidates.
                self.dates(1, lo=0.0, hi=0.0)[0] - 22 * 365,
                classes[i % len(classes)],
                classes[(i + 1) % len(classes)],
            ),
            20: lambda i: (
                list(dict.fromkeys(
                    classes[(i + k) % len(classes)]
                    for k in range(min(3, len(classes)))
                )),
            ),
            21: lambda i: (
                countries[i % len(countries)],
                late_dates[i % len(late_dates)],
            ),
            22: lambda i: (
                countries[i % len(countries)],
                countries[(i + 1) % len(countries)],
            ),
            23: lambda i: (countries[i % len(countries)],),
            24: lambda i: (classes[i % len(classes)],),
        }
        if query_number in producers:
            return [producers[query_number](i) for i in range(count)]
        if query_number == 25:
            pairs = self.person_pairs(count)
            return [
                (a, b, early_dates[i % len(early_dates)], late_dates[i % len(late_dates)])
                for i, (a, b) in enumerate(pairs)
            ]
        raise ValueError(f"unknown BI query {query_number}")


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------


def curate_person_ids(
    graph: SocialGraph, config: DatagenConfig, count: int = 20
) -> list[int]:
    return ParameterGenerator(graph, config).person_ids(count)


def curate_person_pairs(
    graph: SocialGraph, config: DatagenConfig, count: int = 20
) -> list[tuple[int, int]]:
    return ParameterGenerator(graph, config).person_pairs(count)


def curate_tag_names(
    graph: SocialGraph, config: DatagenConfig, count: int = 20
) -> list[str]:
    return ParameterGenerator(graph, config).tag_names(count)


def generate_interactive_parameters(
    graph: SocialGraph, config: DatagenConfig, query_number: int, count: int = 20
) -> list[tuple]:
    return ParameterGenerator(graph, config).interactive(query_number, count)


def generate_bi_parameters(
    graph: SocialGraph, config: DatagenConfig, query_number: int, count: int = 20
) -> list[tuple]:
    return ParameterGenerator(graph, config).bi(query_number, count)
