"""Dataset statistics (Appendix B flavour).

Summarizes a loaded graph the way the spec's scale-factor appendix and
the BI paper's dataset tables do: entity counts per type, relation
counts, degree-distribution percentiles, activity distributions (posts
per person, thread depth), and tag usage.  Used by the CLI's
``report dataset`` command and the datagen benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.store import SocialGraph


def _percentiles(values: list[int], points=(50, 90, 99)) -> dict[int, float]:
    if not values:
        return {p: 0.0 for p in points}
    ordered = sorted(values)
    return {
        p: float(ordered[min(len(ordered) - 1, int(p / 100 * len(ordered)))])
        for p in points
    }


@dataclass
class DatasetStatistics:
    """All computed statistics of one graph snapshot."""

    entity_counts: dict[str, int] = field(default_factory=dict)
    relation_counts: dict[str, int] = field(default_factory=dict)
    degree_mean: float = 0.0
    degree_max: int = 0
    degree_percentiles: dict[int, float] = field(default_factory=dict)
    messages_per_person_mean: float = 0.0
    messages_per_person_percentiles: dict[int, float] = field(default_factory=dict)
    thread_depth_max: int = 0
    thread_depth_mean: float = 0.0
    forum_kind_counts: dict[str, int] = field(default_factory=dict)
    distinct_tags_used: int = 0
    top_tags: list[tuple[str, int]] = field(default_factory=list)

    def format(self) -> str:
        lines = ["Dataset statistics", "=" * 40]
        lines.append("entities:")
        for name, count in self.entity_counts.items():
            lines.append(f"  {name:14s} {count:10d}")
        lines.append("relations:")
        for name, count in self.relation_counts.items():
            lines.append(f"  {name:14s} {count:10d}")
        lines.append(
            f"knows degree: mean {self.degree_mean:.1f}, max {self.degree_max},"
            f" p50/p90/p99 "
            + "/".join(
                f"{self.degree_percentiles[p]:.0f}" for p in (50, 90, 99)
            )
        )
        lines.append(
            f"messages/person: mean {self.messages_per_person_mean:.1f},"
            f" p50/p90/p99 "
            + "/".join(
                f"{self.messages_per_person_percentiles[p]:.0f}"
                for p in (50, 90, 99)
            )
        )
        lines.append(
            f"thread depth: mean {self.thread_depth_mean:.2f},"
            f" max {self.thread_depth_max}"
        )
        lines.append(
            "forums: "
            + ", ".join(f"{k} {v}" for k, v in self.forum_kind_counts.items())
        )
        lines.append(f"distinct tags used: {self.distinct_tags_used}")
        lines.append(
            "top tags: "
            + ", ".join(f"{name} ({count})" for name, count in self.top_tags)
        )
        return "\n".join(lines)


def compute_statistics(graph: SocialGraph, top_tag_count: int = 5) -> DatasetStatistics:
    """One pass over the graph collecting every statistic."""
    stats = DatasetStatistics()
    stats.entity_counts = {
        "places": len(graph.places),
        "organisations": len(graph.organisations),
        "tag classes": len(graph.tag_classes),
        "tags": len(graph.tags),
        "persons": len(graph.persons),
        "forums": len(graph.forums),
        "posts": len(graph.posts),
        "comments": len(graph.comments),
    }
    stats.relation_counts = {
        "knows": len(graph.knows_edges),
        "likes": len(graph.likes_edges),
        "hasMember": len(graph.memberships),
        "studyAt": len(graph.study_at),
        "workAt": len(graph.work_at),
        "hasInterest": sum(len(p.interests) for p in graph.persons.values()),
    }

    degrees = [len(graph.friends_of(pid)) for pid in graph.persons]
    if degrees:
        stats.degree_mean = sum(degrees) / len(degrees)
        stats.degree_max = max(degrees)
    stats.degree_percentiles = _percentiles(degrees)

    message_counts = [
        len(graph.posts_by(pid)) + len(graph.comments_by(pid))
        for pid in graph.persons
    ]
    if message_counts:
        stats.messages_per_person_mean = sum(message_counts) / len(message_counts)
    stats.messages_per_person_percentiles = _percentiles(message_counts)

    # Thread depth: distance of each comment from its root post.
    depths = []
    depth_cache: dict[int, int] = {}

    def depth_of(comment) -> int:
        cached = depth_cache.get(comment.id)
        if cached is not None:
            return cached
        parent = (
            comment.reply_of_post
            if comment.reply_of_post >= 0
            else comment.reply_of_comment
        )
        if parent in graph.posts:
            value = 1
        else:
            parent_comment = graph.comments.get(parent)
            value = 1 + depth_of(parent_comment) if parent_comment else 1
        depth_cache[comment.id] = value
        return value

    for comment in graph.comments.values():
        depths.append(depth_of(comment))
    if depths:
        stats.thread_depth_mean = sum(depths) / len(depths)
        stats.thread_depth_max = max(depths)

    stats.forum_kind_counts = dict(
        Counter(f.kind.value for f in graph.forums.values())
    )

    tag_usage: Counter = Counter()
    for message in graph.messages():
        for tag_id in message.tag_ids:
            tag_usage[tag_id] += 1
    stats.distinct_tags_used = len(tag_usage)
    stats.top_tags = [
        (graph.tags[tag_id].name, count)
        for tag_id, count in tag_usage.most_common(top_tag_count)
    ]
    return stats
