"""Per-query choke-point profiles: counters × runtimes × span timings.

The engine's operator counters already map one-to-one onto the spec's
Appendix A choke points (:data:`~repro.analysis.chokepoints.OPERATOR_COUNTER_CPS`).
This module turns one power test's output into a *profile table*: one
row per (query, choke point) showing how much operator work the query
did under that CP and — when the run was traced (``--trace``) — how
much operator *time* its spans attribute to it.

Span attribution works on the telemetry document: every engine operator
span carries its operator name and (for scans) the access path taken,
which picks the CP the same way the counters do — index-path scans are
CP-3.3 scattered index access (including the frozen snapshot's
``frozen-date-column`` / ``frozen-knows-csr`` paths, which are sorted
column bisections rather than hash lookups but are index access all the
same), full scans CP-3.2, ``expand`` CP-2.3, grouping CP-1.2.  Timings are therefore approximate in the same way the
spans are (a scan span covers the generator's lifetime, including
consumer time between pulls) but they localize a query's cost to choke
points in a way the counters alone cannot.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.analysis.chokepoints import OPERATOR_COUNTER_CPS

#: Non-scan operator span name -> choke point.
_OPERATOR_SPAN_CPS = {
    "expand": "2.3",
    "group_count": "1.2",
    "group_agg": "1.2",
}


def _span_cp(name: str, attrs: Mapping[str, Any]) -> str | None:
    """The CP an engine operator span instruments, or ``None``."""
    if name in _OPERATOR_SPAN_CPS:
        return _OPERATOR_SPAN_CPS[name]
    if name.startswith("scan_"):
        return "3.2" if attrs.get("access", "full") == "full" else "3.3"
    return None


def _walk(spans: Iterable[Mapping[str, Any]]) -> Iterable[Mapping[str, Any]]:
    for span in spans:
        yield span
        yield from _walk(span.get("children", ()))


def span_times_by_cp(
    document: Mapping[str, Any],
) -> dict[str, dict[str, int]]:
    """task name -> {cp -> summed operator-span µs} from a telemetry
    document (empty for untraced runs or synthesized-only task spans)."""
    times: dict[str, dict[str, int]] = {}
    for task in _walk(document.get("spans", ())):
        if task.get("kind") != "task":
            continue
        per_cp = times.setdefault(task["name"], {})
        for child in _walk(task.get("children", ())):
            if child.get("kind") != "operator":
                continue
            cp = _span_cp(child["name"], child.get("attrs", {}))
            if cp is not None:
                per_cp[cp] = per_cp.get(cp, 0) + int(child["duration_us"])
    return times


def chokepoint_profile(
    operator_stats: Mapping[int, Mapping[str, int]],
    runtimes: Mapping[int, float],
    telemetry: Mapping[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """The per-query choke-point profile table.

    One row per (query, CP) with the operator counters grouped under
    that CP, the query's runtime, and — when ``telemetry`` holds a
    traced span tree — the operator-span time the trace attributes to
    the CP across the query's tasks (``span_us``; 0 when untraced).
    Rows are ordered by query number then CP id, so the table is
    deterministic whatever the worker count.
    """
    span_times: dict[str, dict[str, int]] = {}
    if telemetry is not None:
        for task_name, per_cp in span_times_by_cp(telemetry).items():
            # Power-test tasks are one per binding; fold them per query
            # via the task kind prefix ("bi[<index>]" carries no query
            # number, so counters drive the query axis and span time is
            # apportioned by CP across the whole run).
            for cp, micros in per_cp.items():
                totals = span_times.setdefault("*", {})
                totals[cp] = totals.get(cp, 0) + micros
    rows: list[dict[str, Any]] = []
    for number in sorted(operator_stats):
        by_cp: dict[str, dict[str, int]] = {}
        for counter, value in operator_stats[number].items():
            cp = OPERATOR_COUNTER_CPS.get(counter)
            if cp is None:
                continue
            by_cp.setdefault(cp, {})[counter] = value
        for cp in sorted(by_cp):
            rows.append(
                {
                    "query": number,
                    "cp": cp,
                    "counters": by_cp[cp],
                    "runtime_seconds": runtimes.get(number, 0.0),
                    "span_us": span_times.get("*", {}).get(cp, 0),
                }
            )
    return rows


def format_chokepoint_profile(rows: list[dict[str, Any]]) -> str:
    """Render a profile table (``repro report`` / docs examples)."""
    lines = [f"{'query':>6s} {'CP':>5s} {'span µs':>9s}  counters"]
    for row in rows:
        counters = " ".join(
            f"{name}={value}" for name, value in sorted(row["counters"].items())
        )
        lines.append(
            f"BI {row['query']:>3d} {row['cp']:>5s}"
            f" {row['span_us']:>9d}  {counters}"
        )
    return "\n".join(lines)


# -- regression attribution (bench_compare's report) ------------------------


def operator_span_times(document: Mapping[str, Any]) -> dict[str, int]:
    """operator span name -> summed ``duration_us`` across a telemetry
    document (empty for untraced runs)."""
    totals: dict[str, int] = {}
    for span in _walk(document.get("spans", ())):
        if span.get("kind") == "operator":
            name = span["name"]
            totals[name] = totals.get(name, 0) + int(span["duration_us"])
    return totals


def bench_profile_section(
    operator_stats: Mapping[int, Mapping[str, int]],
    telemetry: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``profile`` section a ``BENCH_*.json`` record carries so
    :func:`attribute_regression` can diff runs: operator counters summed
    across queries, their per-CP roll-up, and — for traced runs — the
    per-operator span time."""
    operators: dict[str, int] = {}
    for per_query in operator_stats.values():
        for counter, value in per_query.items():
            operators[counter] = operators.get(counter, 0) + int(value)
    cps: dict[str, int] = {}
    for counter, value in operators.items():
        cp = OPERATOR_COUNTER_CPS.get(counter)
        if cp is not None:
            cps[cp] = cps.get(cp, 0) + value
    section: dict[str, Any] = {"operators": operators, "cps": cps}
    if telemetry is not None:
        section["span_us"] = operator_span_times(telemetry)
    return section


#: (section key in a bench profile, axis label, unit label).
_ATTRIBUTION_SECTIONS = (
    ("operators", "operator", "ops"),
    ("cps", "choke point", "ops"),
    ("span_us", "operator span", "µs"),
)


def attribute_regression(
    current: Mapping[str, Any],
    previous: Mapping[str, Any],
    top_n: int = 5,
) -> list[dict[str, Any]]:
    """Join two bench ``profile`` sections and rank the deltas.

    Returns one row per (axis, name) — operator counters, their CP
    roll-up, per-operator span time — sorted by descending relative
    growth then absolute delta, ``top_n`` per axis, so the largest rows
    name the operator/CP most likely responsible for a regressed
    median.  Names absent from one side diff against 0.
    """
    rows: list[dict[str, Any]] = []
    for section, axis, unit in _ATTRIBUTION_SECTIONS:
        now = current.get(section) or {}
        then = previous.get(section) or {}
        deltas: list[dict[str, Any]] = []
        for name in sorted(set(now) | set(then)):
            after = float(now.get(name, 0))
            before = float(then.get(name, 0))
            change = after - before
            if not change:
                continue
            ratio = after / before if before else float("inf")
            deltas.append(
                {
                    "axis": axis,
                    "name": name,
                    "unit": unit,
                    "before": before,
                    "after": after,
                    "delta": change,
                    "ratio": ratio,
                }
            )
        deltas.sort(key=lambda row: (-row["ratio"], -abs(row["delta"]),
                                     row["name"]))
        rows.extend(deltas[:top_n])
    return rows


def format_attribution(rows: list[dict[str, Any]]) -> str:
    """Render an attribution report (bench_compare prints this under a
    regressed record so CI names the suspect operator)."""
    if not rows:
        return "  (no profile deltas to attribute)"
    lines = []
    for row in rows:
        ratio = (
            "new" if row["ratio"] == float("inf") else f"{row['ratio']:.2f}x"
        )
        lines.append(
            f"  {row['axis']:>13s} {row['name']:<28s}"
            f" {row['before']:>12.0f} -> {row['after']:>12.0f}"
            f" {row['unit']} ({ratio})"
        )
    return "\n".join(lines)


__all__ = [
    "attribute_regression",
    "bench_profile_section",
    "chokepoint_profile",
    "format_attribution",
    "format_chokepoint_profile",
    "operator_span_times",
    "span_times_by_cp",
]
