"""Choke points (spec Appendix A) and the coverage matrix (Table A.1).

The registry lists every choke point with its category; the coverage
matrix is *derived from the query metadata* (each query module carries
its CP list), which the Table A.1 benchmark cross-checks against the
appendix's own per-CP query lists transcribed in ``APPENDIX_COVERAGE``.

The supplied spec's CP-8.2 query list did not survive text extraction
(figure); ``APPENDIX_COVERAGE["8.2"]`` is reconstructed from the
readable per-query pages and marked partial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.queries.bi import ALL_QUERIES as ALL_BI
from repro.queries.interactive.complex import ALL_COMPLEX


@dataclass(frozen=True)
class ChokePoint:
    """One choke point of Appendix A."""

    identifier: str
    category: str  # QOPT / QEXE / STORAGE / LANG
    title: str


CHOKE_POINTS: tuple[ChokePoint, ...] = (
    ChokePoint("1.1", "QOPT", "Interesting orders"),
    ChokePoint("1.2", "QEXE", "High cardinality group-by performance"),
    ChokePoint("1.3", "QOPT", "Top-k pushdown"),
    ChokePoint("1.4", "QEXE", "Low cardinality group-by performance"),
    ChokePoint("2.1", "QOPT", "Rich join order optimization"),
    ChokePoint("2.2", "QOPT", "Late projection"),
    ChokePoint("2.3", "QOPT", "Join type selection"),
    ChokePoint("2.4", "QOPT", "Sparse foreign key joins"),
    ChokePoint("3.1", "QOPT", "Detecting correlation"),
    ChokePoint("3.2", "STORAGE", "Dimensional clustering"),
    ChokePoint("3.3", "QEXE", "Scattered index access patterns"),
    ChokePoint("4.1", "QOPT", "Common subexpression elimination"),
    ChokePoint("4.2", "QOPT", "Complex boolean expression joins and selections"),
    ChokePoint("4.3", "QEXE", "Low overhead expressions interpretation"),
    ChokePoint("4.4", "QEXE", "String matching performance"),
    ChokePoint("5.1", "QOPT", "Flattening sub-queries"),
    ChokePoint("5.2", "QEXE", "Overlap between outer and sub-query"),
    ChokePoint("5.3", "QEXE", "Intra-query result reuse"),
    ChokePoint("6.1", "QEXE", "Inter-query result reuse"),
    ChokePoint("7.1", "QEXE", "Incremental path computation"),
    ChokePoint("7.2", "QOPT", "Cardinality estimation of transitive paths"),
    ChokePoint("7.3", "QEXE", "Execution of a transitive step"),
    ChokePoint("7.4", "QEXE", "Efficient evaluation of termination criteria"),
    ChokePoint("8.1", "LANG", "Complex patterns"),
    ChokePoint("8.2", "LANG", "Complex aggregations"),
    ChokePoint("8.3", "LANG", "Ranking-style queries"),
    ChokePoint("8.4", "LANG", "Query composition"),
    ChokePoint("8.5", "LANG", "Dates and times"),
    ChokePoint("8.6", "LANG", "Handling paths"),
)

#: Appendix A per-CP "Queries" lists from the readable spec text, used to
#: cross-check the query metadata.  Query labels: "BI n" / "IC n".
APPENDIX_COVERAGE: dict[str, frozenset[str]] = {
    "1.1": frozenset({"BI 2", "BI 4", "BI 11", "BI 17", "BI 18", "BI 19",
                      "IC 2", "IC 9"}),
    "1.2": frozenset({"BI 1", "BI 2", "BI 4", "BI 5", "BI 6", "BI 7", "BI 9",
                      "BI 10", "BI 12", "BI 13", "BI 14", "BI 15", "BI 16",
                      "BI 18", "BI 21", "BI 25", "IC 9"}),
    "1.3": frozenset({"BI 2", "BI 4", "BI 5", "BI 9", "BI 16", "BI 19",
                      "BI 22", "IC 11"}),
    "1.4": frozenset({"BI 8", "BI 18", "BI 20", "BI 22", "BI 23", "BI 24"}),
    "2.1": frozenset({"BI 2", "BI 4", "BI 5", "BI 9", "BI 10", "BI 11",
                      "BI 19", "BI 20", "BI 21", "BI 22", "BI 24", "BI 25",
                      "IC 1", "IC 3"}),
    "2.2": frozenset({"BI 4", "BI 5", "BI 11", "BI 12", "BI 13", "BI 14",
                      "BI 25", "IC 2", "IC 7", "IC 9"}),
    "2.3": frozenset({"BI 2", "BI 5", "BI 6", "BI 7", "BI 9", "BI 10",
                      "BI 11", "BI 13", "BI 14", "BI 15", "BI 16", "BI 19",
                      "BI 21", "BI 23", "BI 24", "IC 2", "IC 4", "IC 5",
                      "IC 7", "IC 9", "IC 10"}),
    "2.4": frozenset({"BI 3", "BI 4", "BI 5", "BI 9", "BI 16", "BI 19",
                      "BI 21", "BI 23", "BI 24", "BI 25", "IC 8", "IC 11"}),
    "3.1": frozenset({"BI 2", "BI 3", "BI 11", "BI 12", "BI 22", "IC 3"}),
    "3.2": frozenset({"BI 1", "BI 2", "BI 3", "BI 7", "BI 10", "BI 11",
                      "BI 13", "BI 14", "BI 15", "BI 18", "BI 21", "BI 24",
                      "IC 2", "IC 8", "IC 9"}),
    "3.3": frozenset({"BI 4", "BI 5", "BI 7", "BI 8", "BI 15", "BI 16",
                      "BI 19", "BI 21", "BI 22", "BI 23", "BI 25", "IC 5",
                      "IC 7", "IC 8", "IC 9", "IC 10", "IC 11", "IC 12",
                      "IC 13", "IC 14"}),
    "4.1": frozenset({"BI 1", "BI 3", "IC 10"}),
    "4.2": frozenset({"BI 18", "IC 10"}),
    "4.3": frozenset({"BI 3", "BI 18", "BI 23", "BI 24"}),
    "4.4": frozenset(),
    "5.1": frozenset({"BI 19", "BI 21", "BI 22", "BI 25", "IC 3", "IC 6",
                      "IC 7", "IC 10"}),
    "5.2": frozenset({"BI 8", "BI 22", "IC 10"}),
    "5.3": frozenset({"BI 3", "BI 5", "BI 15", "BI 16", "BI 21", "BI 22",
                      "BI 25", "IC 1", "IC 8"}),
    "6.1": frozenset({"BI 3", "BI 5", "BI 7", "BI 11", "BI 12", "BI 13",
                      "BI 15", "BI 20", "IC 10"}),
    "7.1": frozenset({"BI 16", "IC 10"}),
    "7.2": frozenset({"BI 14", "BI 16", "BI 25", "IC 12", "IC 13", "IC 14"}),
    "7.3": frozenset({"BI 14", "BI 16", "BI 19", "BI 25", "IC 12", "IC 13",
                      "IC 14"}),
    "7.4": frozenset({"BI 14", "BI 19"}),
    "8.1": frozenset({"BI 8", "BI 11", "BI 14", "BI 16", "BI 18", "BI 19",
                      "BI 20", "BI 25", "IC 7", "IC 13", "IC 14"}),
    # Partially reconstructed: the spec's CP-8.2 list is a lost figure;
    # built from the readable per-query pages.
    "8.2": frozenset({"BI 18", "BI 21", "IC 1", "IC 3", "IC 4", "IC 5",
                      "IC 12", "IC 14"}),
    "8.3": frozenset({"BI 11", "BI 13", "BI 18", "BI 22", "BI 25", "IC 7",
                      "IC 14"}),
    "8.4": frozenset({"BI 5", "BI 10", "BI 15", "BI 18", "BI 21", "BI 22",
                      "BI 25"}),
    "8.5": frozenset({"BI 1", "BI 2", "BI 3", "BI 10", "BI 12", "BI 13",
                      "BI 14", "BI 18", "BI 19", "BI 21", "BI 23", "BI 24",
                      "BI 25", "IC 2", "IC 3", "IC 4", "IC 5", "IC 9"}),
    "8.6": frozenset({"BI 16", "BI 25", "IC 10", "IC 13", "IC 14"}),
}


#: Engine operator counter -> the spec choke point it instruments.
#: ``repro.engine.stats.OperatorCounters`` fields must all appear here
#: (checked by tests/test_engine.py), so every number the BI driver
#: reports is attributable to a CP of Appendix A.
OPERATOR_COUNTER_CPS: dict[str, str] = {
    "rows_scanned": "2.2",      # late projection: rows surviving pushdown
    "index_scans": "3.3",       # scattered secondary/adjacency index access
    "full_scans": "3.2",        # dimensional clustering: unpruned scans
    "edges_expanded": "2.3",    # index-based join traversal work
    "groups_created": "1.2",    # high-cardinality group-by
    "heap_inserts": "1.3",      # top-k pushdown: rows offered
    "heap_rejections": "1.3",   # top-k pushdown: threshold short-cuts
    "heap_evictions": "1.3",    # top-k pushdown: compaction drops
    "cache_hits": "6.1",        # inter-query result reuse
    "cache_misses": "6.1",
    "cache_invalidations": "6.1",
    "cache_evictions": "6.1",
}


def counter_choke_point(counter_name: str) -> ChokePoint:
    """The registry entry a driver counter maps to (KeyError if unknown)."""
    identifier = OPERATOR_COUNTER_CPS[counter_name]
    for cp in CHOKE_POINTS:
        if cp.identifier == identifier:
            return cp
    raise KeyError(identifier)


def coverage_matrix() -> dict[str, frozenset[str]]:
    """CP identifier -> set of query labels, derived from query metadata."""
    matrix: dict[str, set[str]] = {cp.identifier: set() for cp in CHOKE_POINTS}
    for number, (_, info) in ALL_BI.items():
        for cp in info.choke_points:
            matrix[cp].add(f"BI {number}")
    for number, (_, info) in ALL_COMPLEX.items():
        for cp in info.choke_points:
            matrix[cp].add(f"IC {number}")
    return {cp: frozenset(queries) for cp, queries in matrix.items()}


def queries_covering(cp_identifier: str) -> frozenset[str]:
    """Queries whose metadata declares the choke point."""
    return coverage_matrix().get(cp_identifier, frozenset())


def format_coverage_table() -> str:
    """Render the Table A.1-style matrix (rows: CPs, columns: queries)."""
    matrix = coverage_matrix()
    bi_labels = [f"BI {n}" for n in sorted(ALL_BI)]
    ic_labels = [f"IC {n}" for n in sorted(ALL_COMPLEX)]
    labels = bi_labels + ic_labels
    header = "CP    " + " ".join(f"{label.split()[1]:>3s}" for label in labels)
    group_row = "      " + " ".join(
        f"{label.split()[0]:>3s}" for label in labels
    )
    lines = [group_row, header]
    for cp in CHOKE_POINTS:
        cells = " ".join(
            f"{'  x' if label in matrix[cp.identifier] else '  .'}"
            for label in labels
        )
        lines.append(f"{cp.identifier:5s} {cells}")
    return "\n".join(lines)
