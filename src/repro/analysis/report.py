"""Benchmark reporting: the Appendix C checklist and a Full Disclosure
Report skeleton (spec chapter 6).

Research-paper runs are rarely fully audited; Appendix C asks authors to
disclose a fixed set of facts so readers can put results in context.
:class:`BenchmarkChecklist` captures those answers and renders them;
:func:`full_disclosure_report` assembles the FDR-style document for a
driver run: versions, configuration, load time, results summary.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import dataclass, field

from repro.driver.runner import DriverReport


@dataclass
class BenchmarkChecklist:
    """Answers to the Appendix C checklist."""

    cross_validated_one_sf: bool = True
    cross_validated_all_sfs: bool = False
    persistent_storage: bool = False
    acid_transactions: bool = False
    fault_tolerance: bool = False
    warmup_rounds: int = 1
    execution_rounds: int = 3
    summarization: str = "median of repeated runs"
    load_included_in_times: bool = False
    contacted_experts: bool = False

    def format(self) -> str:
        rows = [
            ("Cross-validated for at least one scale factor",
             self.cross_validated_one_sf),
            ("Cross-validated for all scale factors",
             self.cross_validated_all_sfs),
            ("SUT has persistent storage", self.persistent_storage),
            ("SUT provides ACID transactions", self.acid_transactions),
            ("SUT provides fault-tolerance", self.fault_tolerance),
            ("Warmup rounds", self.warmup_rounds),
            ("Execution rounds", self.execution_rounds),
            ("Execution times summarized as", self.summarization),
            ("Loading included in query times", self.load_included_in_times),
            ("Contacted system experts", self.contacted_experts),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


@dataclass
class SystemDetails:
    """The §6.1.1 system-description block, self-collected."""

    dbms: str = "repro SocialGraph (in-memory reference SUT)"
    dbms_version: str = "1.0.0"
    os_name: str = field(default_factory=platform.system)
    os_version: str = field(default_factory=platform.release)
    python_version: str = field(default_factory=lambda: sys.version.split()[0])
    cpu: str = field(default_factory=platform.machine)

    def format(self) -> str:
        return (
            f"DBMS: {self.dbms} {self.dbms_version}\n"
            f"OS: {self.os_name} {self.os_version}\n"
            f"Python: {self.python_version}\n"
            f"CPU architecture: {self.cpu}"
        )


def full_disclosure_report(
    scale_description: str,
    load_seconds: float,
    report: DriverReport,
    checklist: BenchmarkChecklist | None = None,
    system: SystemDetails | None = None,
) -> str:
    """Assemble the FDR-style text document for a run."""
    checklist = checklist or BenchmarkChecklist()
    system = system or SystemDetails()
    sections = [
        "LDBC SNB - Full Disclosure Report (reproduction)",
        "=" * 50,
        "",
        "System under test",
        "-" * 20,
        system.format(),
        "",
        "Benchmark configuration",
        "-" * 20,
        f"Dataset: {scale_description}",
        f"Load time: {load_seconds:.2f} s",
        "",
        "Results",
        "-" * 20,
        report.format_table(),
        f"Valid run (95% on-time rule): {report.is_valid_run}",
        "",
        "Appendix C checklist",
        "-" * 20,
        checklist.format(),
    ]
    return "\n".join(sections)
