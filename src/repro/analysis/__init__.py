"""Benchmark analysis: choke-point coverage and disclosure reporting."""

from repro.analysis.chokepoints import (
    CHOKE_POINTS,
    ChokePoint,
    coverage_matrix,
    format_coverage_table,
    queries_covering,
)
from repro.analysis.profile import (
    chokepoint_profile,
    format_chokepoint_profile,
    span_times_by_cp,
)
from repro.analysis.report import BenchmarkChecklist, full_disclosure_report
from repro.analysis.stats import DatasetStatistics, compute_statistics

__all__ = [
    "BenchmarkChecklist",
    "DatasetStatistics",
    "compute_statistics",
    "CHOKE_POINTS",
    "ChokePoint",
    "chokepoint_profile",
    "coverage_matrix",
    "format_chokepoint_profile",
    "format_coverage_table",
    "full_disclosure_report",
    "queries_covering",
    "span_times_by_cp",
]
