"""Fork-shared store snapshots for the parallel executor.

The BI throughput methodology runs many concurrent query streams against
one frozen snapshot.  Copying a loaded :class:`SocialGraph` into every
worker would dominate the run at any realistic scale, so the process
backend relies on ``fork`` semantics instead: the parent installs the
snapshot as a module-level global *before* spawning workers, and each
forked child inherits the loaded store through copy-on-write pages —
zero serialization, zero copies for read-only workloads.

On platforms without ``fork`` (or with the ``spawn`` start method) the
snapshot is pickled once per worker by the pool; the thread and serial
backends simply share the object in-process.

Frozen snapshots (:class:`~repro.graph.frozen.FrozenGraph`) compose
especially well with the fork path: their CSR offset/target arrays and
interned column dictionaries are contiguous ``array('q')`` buffers that
fork as copy-on-write pages and are never written afterwards, so every
worker reads the *same physical bytes* instead of a per-worker unpickled
object graph.  The drivers therefore hand the pool a
``StoreSnapshot(freeze(graph))`` for read phases and keep the live store
as the write path in the parent.

Delta-overlaid snapshots (:class:`~repro.graph.delta.OverlaidGraph`)
ride the same mechanism: the wrapper is the base snapshot's columns by
reference plus the overlay's insert/tombstone maps, so installing one
as the pool snapshot forks *both* to every process worker — the workers
see the merged view, still zero-copy.  The usual immutability contract
applies: the parent must not apply further writes while a pool run is
in flight (between runs is fine — that is the throughput test's
write-batch/read-block cadence).

A snapshot is a graph plus a ``context`` dict for whatever else task
runners need (curated bindings, a result-cache executor, …).  Workers
treat it as immutable: the determinism contract of
:mod:`repro.exec.pool` only holds for tasks that do not mutate the
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.store import SocialGraph


@dataclass
class StoreSnapshot:
    """An immutable view of a loaded store shared with every worker."""

    graph: "SocialGraph | None" = None
    #: Auxiliary read-only state for task runners (bindings, executor, …).
    context: dict[str, Any] = field(default_factory=dict)


#: The snapshot visible to task runners in this process.  In the parent
#: it is installed around a pool run; in a forked worker it is inherited;
#: in a spawned worker it is installed from the pickled payload.
_CURRENT: StoreSnapshot | None = None


def install_snapshot(snapshot: StoreSnapshot | None) -> StoreSnapshot | None:
    """Install ``snapshot`` process-globally; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = snapshot
    return previous


def current_snapshot() -> StoreSnapshot:
    """The snapshot task runners execute against (empty if none)."""
    return _CURRENT if _CURRENT is not None else StoreSnapshot()
