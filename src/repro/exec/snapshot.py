"""The Snapshot API: how workers obtain graph state.

Every execution backend — serial, thread, forked or spawned process —
receives graph state through one typed surface:

* :class:`SnapshotConfig` — the declarative knobs (provider, freeze,
  compaction fraction, morsel size), threaded through ``RunRequest``
  and both drivers.  Environment variables (``REPRO_SNAPSHOT_PROVIDER``,
  ``REPRO_FROZEN``, ``REPRO_DELTA_COMPACT_FRACTION``,
  ``REPRO_MORSEL_SIZE``) are documented fallbacks parsed in exactly one
  place: :meth:`SnapshotConfig.resolved`.
* :class:`SnapshotHandle` — the protocol every provider implements: a
  ``graph``, a ``context`` dict for task runners, ``ship()`` to cross a
  process boundary, ``bytes_mapped()`` and ``close()``.
* Providers — :class:`InlineSnapshot` (the object graph itself;
  forked children inherit it copy-on-write, spawned children unpickle
  it), :class:`MmapFileSnapshot` (columns serialized once into a
  versioned snapshot file that every process maps read-only), and
  :class:`SharedMemorySnapshot` (the same bytes in a
  ``multiprocessing.shared_memory`` segment).  :func:`provide_snapshot`
  picks one from a config.

The mapped providers serialize a frozen graph completely into the
snapfile (format v2, :mod:`repro.graph.snapfile`): column families
attach back as zero-copy ``memoryview`` casts over the shared buffer,
and the file's entity section lets a worker rebuild the entity store
from the same bytes — so ``ship()`` returns a token of buffer
coordinates plus the overlay, with **no object-state pickle**.  An
:class:`~repro.graph.delta.OverlaidGraph` ships its base's buffer and
its current overlay (captured at ship time); the worker replays the
overlay onto its rebuilt store, so post-freeze writes reach workers
exactly as they would through fork.

``materialize()`` on the worker side reattaches the buffer (path or
segment name), rebuilds the entity store from the entity section,
re-derives the frozen view around the mapped columns
(``FrozenGraph._rebuilt``), and replays/re-wraps the overlay.
:func:`activate` / :func:`active` install the process-local handle
task runners read.  The ``repro_snapshot_state_bytes`` gauge records
both sides of the split: the entity section's size (``section=
"entities"``) and the shipped token's pickled size (``section=
"stub"``).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import weakref
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.obs.metrics import registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.store import SocialGraph

__all__ = [
    "ENV_COMPACT_FRACTION",
    "ENV_FROZEN",
    "ENV_MORSEL_SIZE",
    "ENV_PROVIDER",
    "PROVIDERS",
    "AttachedSnapshot",
    "InlineSnapshot",
    "MmapFileSnapshot",
    "SharedMemorySnapshot",
    "ShippedSnapshot",
    "SnapshotConfig",
    "SnapshotHandle",
    "activate",
    "active",
    "provide_snapshot",
]

ENV_PROVIDER = "REPRO_SNAPSHOT_PROVIDER"
ENV_FROZEN = "REPRO_FROZEN"
ENV_COMPACT_FRACTION = "REPRO_DELTA_COMPACT_FRACTION"
ENV_MORSEL_SIZE = "REPRO_MORSEL_SIZE"

#: Recognized snapshot providers, in documentation order.
PROVIDERS = ("inline", "mmap_file", "shared_memory")

_FALSY = ("0", "false", "no", "off", "")


@dataclass(frozen=True)
class SnapshotConfig:
    """Declarative snapshot knobs; ``None`` fields fall back to the
    environment, then to the defaults, via :meth:`resolved` — the only
    place the snapshot environment variables are parsed.

    ``provider`` picks how process workers obtain graph state;
    ``freeze`` whether drivers freeze the live store for read phases;
    ``compact_fraction`` the delta-overlay compaction threshold;
    ``morsel_size`` enables morsel-driven intra-query parallelism for
    queries with a registered morsel plan (``None`` disables);
    ``directory`` where ``mmap_file`` snapshots are written (system
    temp dir when unset).
    """

    provider: str | None = None
    freeze: bool | None = None
    compact_fraction: float | None = None
    morsel_size: int | None = None
    directory: str | None = None

    def resolved(self) -> "SnapshotConfig":
        """This config with every ``None`` knob replaced by its
        environment fallback or default (``directory`` stays as
        given)."""
        provider = self.provider
        if provider is None:
            provider = os.environ.get(ENV_PROVIDER, "").strip() or "inline"
        if provider not in PROVIDERS:
            raise ValueError(
                f"unknown snapshot provider {provider!r}; "
                f"expected one of {', '.join(PROVIDERS)}"
            )
        freeze = self.freeze
        if freeze is None:
            raw = os.environ.get(ENV_FROZEN)
            freeze = True if raw is None else (
                raw.strip().lower() not in _FALSY
            )
        fraction = self.compact_fraction
        if fraction is None:
            raw = os.environ.get(ENV_COMPACT_FRACTION)
            fraction = 0.25 if raw is None or not raw.strip() else float(raw)
        if fraction < 0.0:
            raise ValueError("compact fraction must be >= 0")
        morsel_size = self.morsel_size
        if morsel_size is None:
            raw = os.environ.get(ENV_MORSEL_SIZE)
            if raw is not None and raw.strip():
                morsel_size = int(raw)
        if morsel_size is not None and morsel_size <= 0:
            raise ValueError("morsel size must be positive")
        return replace(
            self,
            provider=provider,
            freeze=freeze,
            compact_fraction=fraction,
            morsel_size=morsel_size,
        )

    def configuration_dict(self) -> dict[str, Any]:
        """The resolved knobs as report-friendly primitives."""
        resolved = self.resolved()
        return {
            "provider": resolved.provider,
            "freeze": resolved.freeze,
            "compact_fraction": resolved.compact_fraction,
            "morsel_size": resolved.morsel_size,
        }


@runtime_checkable
class SnapshotHandle(Protocol):
    """What every snapshot provider exposes: the graph and context task
    runners read, plus the ship/attach lifecycle the pool drives."""

    provider: str
    graph: Any
    context: dict[str, Any]

    def ship(self) -> "ShippedSnapshot":
        """A picklable token a worker can materialize into an
        equivalent handle."""
        ...

    def bytes_mapped(self) -> int:
        """Bytes served from a shared buffer (0 for inline)."""
        ...

    def close(self) -> None:
        """Release buffers/files owned by this handle (idempotent)."""
        ...


@dataclass
class ShippedSnapshot:
    """The picklable form of a snapshot handle crossing a process
    boundary: provider-specific payload (the whole object graph for
    inline; buffer coordinates plus the delta overlay for the mapped
    providers — entity state rebuilds from the mapped bytes)."""

    provider: str
    payload: Any

    def materialize(self) -> "SnapshotHandle":
        if self.provider == "inline":
            graph, context = self.payload
            return InlineSnapshot(graph, context)
        return _materialize_mapped(self.provider, self.payload)


class InlineSnapshot:
    """The in-process provider: the graph object itself.  Forked
    workers inherit it through copy-on-write pages; spawned workers
    unpickle the whole object graph (the pre-snapfile behaviour, and
    still the right answer for thread/serial backends and live
    graphs)."""

    provider = "inline"

    def __init__(
        self,
        graph: "SocialGraph | None" = None,
        context: dict[str, Any] | None = None,
    ):
        self.graph = graph
        self.context: dict[str, Any] = {} if context is None else context

    def ship(self) -> ShippedSnapshot:
        return ShippedSnapshot("inline", (self.graph, self.context))

    def bytes_mapped(self) -> int:
        return 0

    def close(self) -> None:
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self.graph!r})"


def _split_overlay(graph: Any) -> tuple[Any, Any]:
    """A frozen view split into (base snapshot, overlay-or-None) —
    overlaid views map their base's columns and carry the overlay
    beside the buffer."""
    overlay = getattr(graph, "delta_overlay", None)
    if overlay is not None:
        return graph.base_snapshot, overlay
    return graph, None


def _publish_attach(provider: str, nbytes: int) -> None:
    metrics = registry()
    metrics.gauge("repro_snapshot_bytes_mapped", provider=provider).set(
        float(nbytes)
    )
    metrics.counter("repro_snapshot_attaches_total", provider=provider).inc()


def _publish_state_bytes(section: str, nbytes: int) -> None:
    """Record one side of the ship-payload split: the snapfile's entity
    section (``section="entities"``) or the pickled size of the token
    ``ship()`` actually sends (``section="stub"``)."""
    registry().gauge("repro_snapshot_state_bytes", section=section).set(
        float(nbytes)
    )


def _shipped_payload(
    overlay: Any, context: dict[str, Any]
) -> dict[str, Any]:
    """The boundary-crossing remainder of a mapped handle, captured at
    ship time: just the overlay and the task context.  Entity state
    does not travel — the worker rebuilds it from the snapfile's entity
    section and replays the overlay on top, so a dirty manager's
    post-freeze writes reach workers exactly as they would through
    fork."""
    return {
        "overlay": overlay,
        "context": context,
        "origin_pid": os.getpid(),
    }


def _ship_token(provider: str, payload: dict[str, Any]) -> ShippedSnapshot:
    token = ShippedSnapshot(provider, payload)
    _publish_state_bytes("stub", len(pickle.dumps(token)))
    return token


def _attach_graph(attached: Any, overlay: Any) -> Any:
    """The worker-side graph for a mapped attach: rebuild the entity
    store from the entity section, re-derive the frozen view around the
    mapped columns, then replay the shipped overlay onto the store (the
    frozen object columns must capture freeze-time state, so the replay
    runs after ``_rebuilt``) and serve the merge view."""
    from repro.graph import snapfile
    from repro.graph.frozen import FrozenGraph

    store = snapfile.rebuild_store(attached.entities)
    graph = FrozenGraph._rebuilt(
        store, dict(attached.columns), attached.frozen_at_version
    )
    if overlay is not None:
        from repro.graph.delta import OverlaidGraph

        overlay.replay_into(store)
        return OverlaidGraph(graph, overlay)
    return graph


class AttachedSnapshot:
    """The worker-side handle a :class:`ShippedSnapshot` materializes
    into: a frozen view over mapped columns plus the shipped context.
    It owns the mapping/segment for the worker's lifetime and cannot be
    re-shipped."""

    def __init__(
        self,
        provider: str,
        graph: Any,
        context: dict[str, Any],
        nbytes: int,
        resource: Any,
    ):
        self.provider = provider
        self.graph = graph
        self.context = context
        self._nbytes = nbytes
        self._resource = resource

    def ship(self) -> ShippedSnapshot:
        raise RuntimeError(
            "an attached snapshot is worker-side state; ship the "
            "parent's provider handle instead"
        )

    def bytes_mapped(self) -> int:
        return self._nbytes

    def close(self) -> None:
        self.graph = None
        resource, self._resource = self._resource, None
        if resource is None:
            return
        try:
            resource.close()
        except BufferError:
            # Exported column views still pin the mapping, so the
            # pages stay alive through them either way.  Park the
            # wrapper where the GC cannot reach its destructor:
            # SharedMemory.__del__ retries close() and raises the
            # same BufferError unraisably mid-run.
            _pinned_resources.append(resource)


#: Resources whose close() hit live view exports — held until process
#: exit so their destructors never fire while views are outstanding.
_pinned_resources: list[Any] = []


def _materialize_mapped(provider: str, payload: dict[str, Any]) -> Any:
    from repro.graph import snapfile

    if provider == "mmap_file":
        mapped = snapfile.open_snapshot(payload["path"])
        attached, nbytes = mapped.attached, mapped.bytes_mapped
        resource: Any = mapped
    elif provider == "shared_memory":
        from multiprocessing import resource_tracker, shared_memory

        segment = shared_memory.SharedMemory(
            name=payload["shm_name"], create=False
        )
        # Attaching registers the segment with *this* process's
        # resource tracker too (bpo-38119); in a worker, unregister or
        # its exit would unlink the parent's segment from under
        # everyone.  In-process materialization must keep the parent's
        # own (single) registration.
        if payload.get("origin_pid") != os.getpid():
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals
                pass
        attached = snapfile.attach(segment.buf)
        nbytes = attached.bytes_mapped
        resource = segment
    else:  # pragma: no cover - ShippedSnapshot guards the provider
        raise ValueError(f"unknown shipped provider {provider!r}")
    graph = _attach_graph(attached, payload["overlay"])
    _publish_attach(provider, nbytes)
    _publish_state_bytes("entities", len(attached.entities))
    return AttachedSnapshot(
        provider, graph, payload["context"], nbytes, resource
    )


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _parent_attached(base: Any, columns: dict[str, Any]) -> Any:
    """The parent-side attached view: object state by reference (no
    pickle round-trip in-process), columns from the shared buffer."""
    from repro.graph import snapfile
    from repro.graph.frozen import FrozenGraph

    return FrozenGraph._attached(snapfile.object_state(base), dict(columns))


def _overlay_view(base: Any, overlay: Any) -> Any:
    if overlay is None:
        return base
    from repro.graph.delta import OverlaidGraph

    return OverlaidGraph(base, overlay)


class MmapFileSnapshot:
    """Columns serialized once into a versioned snapshot file
    (:mod:`repro.graph.snapfile`) that the parent and every worker map
    read-only.  The parent's own ``graph`` is already the attached
    view, so forked children inherit file-backed pages and serial runs
    exercise the exact layout workers see."""

    provider = "mmap_file"

    def __init__(
        self,
        graph: Any,
        context: dict[str, Any] | None = None,
        *,
        directory: str | None = None,
    ):
        from repro.graph import snapfile

        base, overlay = _split_overlay(graph)
        descriptor, path = tempfile.mkstemp(
            prefix="repro-snapshot-", suffix=".rsnb", dir=directory
        )
        try:
            with os.fdopen(descriptor, "wb") as stream:
                snapfile.write_snapshot(base, stream, overlay=overlay)
            self._mapped = snapfile.open_snapshot(path)
        except Exception:
            _unlink_quietly(path)
            raise
        self.path = path
        self._finalizer = weakref.finalize(self, _unlink_quietly, path)
        self._base = base
        self._source = graph
        self.context: dict[str, Any] = {} if context is None else context
        self.graph = _overlay_view(
            _parent_attached(base, self._mapped.columns), overlay
        )
        _publish_attach(self.provider, self._mapped.bytes_mapped)
        _publish_state_bytes("entities", len(self._mapped.attached.entities))

    def ship(self) -> ShippedSnapshot:
        _, overlay = _split_overlay(self._source)
        payload = _shipped_payload(overlay, self.context)
        payload["path"] = self.path
        return _ship_token(self.provider, payload)

    def bytes_mapped(self) -> int:
        return self._mapped.bytes_mapped

    def close(self) -> None:
        self.graph = None
        self._mapped.close()
        self._finalizer()


def _release_segment(segment: Any) -> None:
    try:
        segment.close()
    except BufferError:  # views still exported — see AttachedSnapshot
        _pinned_resources.append(segment)
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover
        pass


class SharedMemorySnapshot:
    """The same bytes as :class:`MmapFileSnapshot` in an anonymous
    ``multiprocessing.shared_memory`` segment — no filesystem path, one
    copy into the segment at construction, attach-by-name from
    workers."""

    provider = "shared_memory"

    def __init__(
        self, graph: Any, context: dict[str, Any] | None = None
    ):
        from multiprocessing import shared_memory

        from repro.graph import snapfile

        base, overlay = _split_overlay(graph)
        data = snapfile.snapshot_bytes(base, overlay=overlay)
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(len(data), 1)
        )
        self._segment.buf[: len(data)] = data
        self._attached = snapfile.attach(self._segment.buf)
        self._finalizer = weakref.finalize(
            self, _release_segment, self._segment
        )
        self._base = base
        self._source = graph
        self.context: dict[str, Any] = {} if context is None else context
        self.graph = _overlay_view(
            _parent_attached(base, self._attached.columns), overlay
        )
        _publish_attach(self.provider, self._attached.bytes_mapped)
        _publish_state_bytes("entities", len(self._attached.entities))

    def ship(self) -> ShippedSnapshot:
        _, overlay = _split_overlay(self._source)
        payload = _shipped_payload(overlay, self.context)
        payload["shm_name"] = self._segment.name
        return _ship_token(self.provider, payload)

    def bytes_mapped(self) -> int:
        return self._attached.bytes_mapped

    def close(self) -> None:
        self.graph = None
        self._attached.columns.clear()
        self._finalizer()


def provide_snapshot(
    graph: "SocialGraph | None" = None,
    context: dict[str, Any] | None = None,
    config: SnapshotConfig | None = None,
) -> SnapshotHandle:
    """Build the configured provider's handle around ``graph``.

    Mapped providers require a frozen view (clean or overlaid); a live
    graph — or no graph — falls back to :class:`InlineSnapshot` and
    bumps ``repro_snapshot_fallback_total`` so the degradation is
    visible instead of silent.
    """
    resolved = (config or SnapshotConfig()).resolved()
    if resolved.provider == "inline" or graph is None:
        return InlineSnapshot(graph, context)
    if not getattr(graph, "is_frozen", False):
        registry().counter(
            "repro_snapshot_fallback_total", reason="live-graph"
        ).inc()
        return InlineSnapshot(graph, context)
    if resolved.provider == "mmap_file":
        return MmapFileSnapshot(graph, context, directory=resolved.directory)
    return SharedMemorySnapshot(graph, context)


#: The handle visible to task runners in this process.  In the parent
#: it is activated around a pool run; in a forked worker it is
#: inherited; in a spawned worker it is materialized from the shipped
#: payload.
_ACTIVE: SnapshotHandle | None = None


def activate(handle: SnapshotHandle | None) -> SnapshotHandle | None:
    """Install ``handle`` process-globally; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = handle
    return previous


def active() -> SnapshotHandle:
    """The handle task runners execute against (empty inline if none)."""
    return _ACTIVE if _ACTIVE is not None else InlineSnapshot()
