"""Task envelope and the task-kind registry.

A :class:`Task` is one unit of benchmark work: a submission ``index``
(the deterministic merge key), a ``kind`` naming a registered runner,
and a picklable ``payload``.  Kinds rather than raw callables keep tasks
cheap to ship over a pipe and runnable in a freshly spawned interpreter;
the generic ``call`` kind accepts any module-level callable where that
flexibility is worth the pickling constraint.

Runners receive ``(graph, context, *payload)`` where graph/context come
from the active :class:`~repro.exec.snapshot.SnapshotHandle`.  Runners
that tolerate delete-invalidated parameters (``bi_throughput``, ``ic``)
catch ``KeyError`` themselves and return a sentinel, mirroring how the
serial driver treats those reads; any other exception escapes to the
pool, which retries the task once and then records the failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exec.snapshot import active

#: Terminal task states recorded by the pool.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work."""

    #: Submission order — outcomes are merged back in this order, which
    #: is what makes a parallel run's merged result identical to serial.
    index: int
    kind: str
    payload: tuple = ()


@dataclass
class TaskOutcome:
    """What happened to one task (after any retry)."""

    index: int
    status: str = STATUS_OK
    value: Any = None
    #: Wall time of the recorded attempt (the timeout bound for
    #: ``timeout`` outcomes).
    duration: float = 0.0
    #: perf_counter at the start of the recorded attempt; only
    #: comparable across tasks for in-process backends (serial/thread).
    started: float = 0.0
    attempts: int = 1
    worker: int = 0
    error: str | None = None
    #: Engine operator-counter deltas attributable to this task
    #: (serial/process backends; empty for the thread backend, whose
    #: counters are aggregated pool-wide instead).
    counters: dict[str, int] = field(default_factory=dict)
    #: The task's kind, echoed back so parent-side telemetry can label
    #: its metrics without re-deriving the submission list.
    kind: str = ""
    #: Span trees captured while the task ran (serial/process backends
    #: with tracing on; always empty for the thread backend — the global
    #: tracer is not safe to swap per worker thread).
    spans: list = field(default_factory=list)
    #: Metrics-registry delta accumulated by this task in a worker
    #: process (``subtract_snapshot`` form); empty for in-process
    #: backends, whose updates land in the parent registry directly.
    metrics: dict = field(default_factory=dict)
    #: Profiler delta (stacks + timeline samples) accumulated by this
    #: task in a worker process (``subtract_profile`` form); empty for
    #: in-process backends, whose samples land in the parent profiler
    #: directly, and whenever profiling is disabled.
    profile: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


# -- task runners ----------------------------------------------------------


def _tally_read_path(graph: Any) -> None:
    """Count which storage layout actually served a read task.

    ``repro_frozen_path_total{path=...}``: ``overlay_merge`` when the
    task's graph is a delta-overlaid snapshot with outstanding writes,
    ``frozen_hit`` for a clean frozen snapshot, ``live_fallback``
    otherwise.  The driver-side split across the three is the cheapest
    way to confirm what a mixed read/write run actually did — e.g. that
    update microbatches kept reads on the overlay instead of forcing
    refreezes or falling back to the live store.
    """
    from repro.obs.metrics import registry

    overlay = getattr(graph, "delta_overlay", None)
    if overlay is not None and not overlay.is_empty():
        path = "overlay_merge"
    elif getattr(graph, "is_frozen", False):
        path = "frozen_hit"
    else:
        path = "live_fallback"
    registry().counter("repro_frozen_path_total", path=path).inc()


def _run_bi(graph: Any, context: dict, number: int, params: tuple) -> list:
    """One BI read; returns its rows (parameter errors propagate)."""
    from repro.queries.bi import ALL_QUERIES

    _tally_read_path(graph)
    return ALL_QUERIES[number][0](graph, *params)


def _run_bi_throughput(
    graph: Any, context: dict, number: int, params: tuple
) -> int:
    """One BI read of the throughput read block; returns the row count,
    or ``-1`` when a delete invalidated the curated parameters.

    Routes through the snapshot context's ``executor`` (a
    :class:`~repro.graph.cache.CachedQueryExecutor`) when present, under
    the context's ``executor_lock`` — the cache's bookkeeping is not
    thread safe, and serializing cached reads keeps hit/miss counts
    identical to a serial run.
    """
    from repro.queries.bi import ALL_QUERIES

    query = ALL_QUERIES[number][0]
    executor = context.get("executor")
    # Cached reads run against the executor's own (live) graph, so they
    # count as live_fallback even when the pool snapshot is frozen.
    _tally_read_path(executor.graph if executor is not None else graph)
    try:
        if executor is not None:
            with context["executor_lock"]:
                rows = executor.run(f"bi{number}", query, *params)
        else:
            rows = query(graph, *params)
    except KeyError:
        return -1
    return len(rows)


def _run_ic(graph: Any, context: dict, number: int, params: tuple) -> list | None:
    """One Interactive complex read; ``None`` marks parameters a delete
    invalidated (the serial driver logs those as ``result_count = -1``)."""
    from repro.queries.interactive.complex import ALL_COMPLEX

    _tally_read_path(graph)
    try:
        return ALL_COMPLEX[number][0](graph, *params)
    except KeyError:
        return None


def _run_stream(
    graph: Any, context: dict, stream_index: int, queries_per_stream: int
) -> int:
    """One concurrent query stream: a de-phased rotation through BI 1-25
    with rotating curated bindings from ``context["bindings"]``, like the
    official throughput test's distinct query streams."""
    bindings = context["bindings"]
    numbers = sorted(bindings)
    _tally_read_path(graph)
    executed = 0
    cursor = stream_index * 7  # de-phase the streams
    from repro.queries.bi import ALL_QUERIES

    for _ in range(queries_per_stream):
        number = numbers[cursor % len(numbers)]
        binding = bindings[number][cursor % len(bindings[number])]
        ALL_QUERIES[number][0](graph, *binding)
        executed += 1
        cursor += 1
    return executed


def _run_call(graph: Any, context: dict, fn: Callable, args: tuple = ()) -> Any:
    """Generic escape hatch: run ``fn(*args)``.  ``fn`` must be a
    module-level callable for the process backend (pipe pickling)."""
    return fn(*args)


def _run_bi_morsel(
    graph: Any,
    context: dict,
    number: int,
    slab_kind: str,
    lo: int,
    hi: int,
    lead: bool,
    params: tuple,
) -> Any:
    """One morsel of a decomposed BI read: the query's partial
    aggregate over rows ``[lo, hi)`` of one frozen scan slab.  The
    driver merges the partials in submission order
    (:mod:`repro.queries.bi.morsels`); ``lead`` marks the first morsel
    of each scan so per-scan counters are tallied exactly once."""
    from repro.queries.bi.morsels import MORSEL_PLANS

    from repro.obs.metrics import registry

    registry().counter(
        "repro_morsel_tasks_total", query=f"bi{number}"
    ).inc()
    _tally_read_path(graph)
    plan = MORSEL_PLANS[number]
    return plan.partial(graph, slab_kind, lo, hi, lead, params)


#: kind -> runner(graph, context, *payload).
TASK_KINDS: dict[str, Callable[..., Any]] = {
    "bi": _run_bi,
    "bi_morsel": _run_bi_morsel,
    "bi_throughput": _run_bi_throughput,
    "ic": _run_ic,
    "stream": _run_stream,
    "call": _run_call,
}


def register_task_kind(name: str, runner: Callable[..., Any]) -> None:
    """Register a custom task kind (must happen before workers fork)."""
    TASK_KINDS[name] = runner


def run_task(task: Task) -> Any:
    """Execute one task against the active snapshot handle."""
    try:
        runner = TASK_KINDS[task.kind]
    except KeyError:
        raise LookupError(f"unknown task kind {task.kind!r}") from None
    snapshot = active()
    return runner(snapshot.graph, snapshot.context, *task.payload)
