"""The worker-pool scheduler behind every parallel benchmark run.

The LDBC SNB treats the multi-stream driver — strict scheduling,
deadlines, crash handling — as part of the benchmark itself, not an
implementation detail of one SUT.  :class:`WorkerPool` is that layer for
this reproduction:

* **Backends** — ``process`` (default for ``workers > 1``): one
  single-threaded OS process per worker over a shared
  :class:`~repro.exec.snapshot.SnapshotHandle` (fork-inherited for the
  inline provider, attach-by-path/name for the mapped ones), giving
  genuine parallelism and hard timeouts; ``thread``: in-process workers
  sharing a (possibly mutable) graph, used where writes interleave with
  reads; ``serial`` (forced for ``workers == 1``): inline execution
  through the exact same task runners, which is what makes it a valid
  baseline.
* **Bounded dispatch** — at most ``queue_depth`` tasks are pulled ahead
  of the workers, so a generator of tasks is consumed lazily and a slow
  pool never materializes an unbounded backlog.
* **Deadlines** — ``timeout`` seconds per task.  The process backend
  enforces it by terminating the worker; serial/thread backends apply it
  *softly* (the attempt runs to completion, then is classified), since a
  Python thread cannot be killed.
* **Retry-once-then-record** — a task that errors, times out, or loses
  its worker to a crash is retried exactly once; a second failure is
  recorded as a terminal :class:`~repro.exec.tasks.TaskOutcome` rather
  than raised, so one poisoned query cannot abort a benchmark run.
* **Crash recovery** — a worker process that dies mid-task is detected
  (EOF on its pipe / liveness check), its task is re-dispatched, and a
  replacement worker is spawned.
* **Deterministic merge** — outcomes are returned in task submission
  order and per-task engine counters are summed in that order, so a
  parallel run's merged :class:`PoolResult` is identical to a serial
  run's whenever the tasks themselves are deterministic (the spec's
  section 2.3.3 requirement, extended from datagen to execution).
* **Telemetry** — with tracing enabled (:mod:`repro.obs`), the serial
  and process backends capture each task's span tree
  (:func:`~repro.obs.spans.task_capture`), ship it back inside the
  :class:`~repro.exec.tasks.TaskOutcome`, and graft all trees under one
  ``pool`` span in submission order — so a parallel trace has exactly
  the serial trace's shape.  Process workers also ship their
  metrics-registry deltas, merged in the same order; with the sampling
  profiler on (:mod:`repro.obs.prof`), each worker runs its own
  sampler and ships per-task profile/timeline deltas, grafted in the
  same submission order.  The thread
  backend cannot capture (the global tracer is not per-thread); it
  grafts synthesized task spans instead, and worker-thread operator
  spans are muted for the duration of the run.  ``capture_spans=False``
  forces the synthesized-only shape on every backend, which is what the
  throughput test uses to keep serial and thread structurally identical.

Deadline bookkeeping uses ``time.monotonic()``; those reads carry
reasoned ``allow-wall-clock`` waivers because rule R1 of ``repro.lint``
otherwise forbids clock reads outside latency measurement — benchmark
*semantics* must never depend on them, and these do not: they only
decide when a stuck worker is killed.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from typing import Any, Iterable, Iterator

from repro.engine import reset_counters
from repro.engine.stats import merge_counters
from repro.exec.snapshot import InlineSnapshot, SnapshotHandle, activate
from repro.obs.metrics import registry, subtract_snapshot
from repro.obs.prof import (
    disable_profiling,
    enable_profiling,
    ensure_profiling,
    profiler,
    subtract_profile,
)
from repro.obs.spans import (
    NullTracer,
    Span,
    disable_tracing,
    graft_outcomes,
    set_tracer,
    synthesize_task_span,
    task_capture,
    tracer,
)
from repro.exec.tasks import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Task,
    TaskOutcome,
    run_task,
)

#: Environment override for the default worker count (the CI matrix runs
#: the tier-1 suite with ``REPRO_EXEC_WORKERS=2`` to exercise the
#: parallel paths everywhere).
ENV_WORKERS = "REPRO_EXEC_WORKERS"

#: Environment override for the process backend's start method
#: (``fork``/``spawn``/``forkserver``).  The default prefers ``fork``
#: where available; the override exists so the spawn ship/materialize
#: path — the one real multi-host deployments and macOS use — can be
#: exercised on Linux in CI.
ENV_START_METHOD = "REPRO_EXEC_START_METHOD"

BACKENDS = ("serial", "thread", "process")


def default_workers() -> int:
    """Worker count when a caller passes ``workers=None``: the
    ``REPRO_EXEC_WORKERS`` environment variable, else 1 (serial)."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_WORKERS} must be an integer, got {raw!r}"
        ) from None
    return max(1, value)


def resolve_workers(workers: int | None) -> int:
    """Validate an explicit worker count or fall back to the default."""
    if workers is None:
        return default_workers()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


@dataclass
class PoolResult:
    """Deterministically merged outcome of one pool run."""

    #: One outcome per task, in submission order.
    outcomes: list[TaskOutcome]
    elapsed: float
    workers: int
    backend: str
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    #: Engine operator counters summed across workers (per-task for the
    #: serial/process backends, one pool-wide delta for threads).
    counters: dict[str, int] = field(default_factory=dict)

    def values(self) -> list[Any]:
        """Task return values in submission order (None for failures)."""
        return [outcome.value for outcome in self.outcomes]

    @property
    def failures(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    def stats_dict(self) -> dict[str, Any]:
        """The pool's own bookkeeping, for report ``exec`` sections."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "tasks": len(self.outcomes),
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.crashes,
        }


@dataclass
class _RunStats:
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0


def _attempt(task: Task) -> "_ExecuteResult":
    try:
        return _ExecuteResult(run_task(task), STATUS_OK, None)
    except Exception as exc:  # retried once by the pool, then recorded
        return _ExecuteResult(
            None, STATUS_ERROR, f"{type(exc).__name__}: {exc}"
        )


def _execute(
    task: Task,
    worker: int,
    attempts: int,
    capture_counters: bool = True,
    capture_spans: bool = False,
    capture_metrics: bool = False,
    capture_profile: bool = False,
) -> TaskOutcome:
    """Run one attempt in the current process and classify it."""
    if capture_counters:
        reset_counters()
    before = registry().snapshot() if capture_metrics else None
    before_profile = (
        profiler().snapshot()
        if capture_profile and profiler().enabled
        else None
    )
    spans: list[Span] = []
    started = time.perf_counter()
    if capture_spans:
        with task_capture(
            f"{task.kind}[{task.index}]",
            task_kind=task.kind,
            index=task.index,
            worker=worker,
        ) as spans:
            value = _attempt(task)
    else:
        value = _attempt(task)
    duration = time.perf_counter() - started
    counters = (
        reset_counters().as_dict(skip_zero=True) if capture_counters else {}
    )
    metrics = (
        subtract_snapshot(registry().snapshot(), before)
        if before is not None
        else {}
    )
    profile = (
        subtract_profile(profiler().snapshot(), before_profile)
        if before_profile is not None
        else {}
    )
    if spans:
        spans[0].attrs["status"] = value.status
        spans[0].attrs["attempts"] = attempts
    return TaskOutcome(
        index=task.index,
        status=value.status,
        value=value.value,
        duration=duration,
        started=started,
        attempts=attempts,
        worker=worker,
        error=value.error,
        counters=counters,
        kind=task.kind,
        spans=spans,
        metrics=metrics,
        profile=profile,
    )


@dataclass(frozen=True)
class _ExecuteResult:
    value: Any
    status: str
    error: str | None


def _worker_main(
    worker_id: int,
    conn: Any,
    payload: bytes | None,
    capture_spans: bool = False,
    profile_hz: float | None = None,
) -> None:
    """Process-backend worker body: recv (task, attempt), send outcome."""
    if payload is not None:  # spawn start method: no fork inheritance
        # The payload is a pickled ShippedSnapshot: inline providers
        # carry the object graph itself; mapped providers carry buffer
        # coordinates and reattach the columns zero-copy here.
        activate(pickle.loads(payload).materialize())
    if not capture_spans:
        # Fork children inherit the parent's live tracer; mute it so
        # uncaptured operator spans do not pile up in the worker's copy.
        disable_tracing()
    # A fork child inherits the parent's profiler object, but not its
    # sampling thread — retire it, then start a fresh per-worker
    # profiler when the parent asked for one.
    disable_profiling()
    if profile_hz:
        enable_profiling(profile_hz)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            break
        if message is None:
            break
        task, attempt = message
        outcome = _execute(
            task,
            worker_id,
            attempt + 1,
            capture_spans=capture_spans,
            capture_metrics=True,
            capture_profile=bool(profile_hz),
        )
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    conn.close()


class _ProcWorker:
    """One supervised worker process plus its command pipe."""

    def __init__(
        self,
        ctx: Any,
        worker_id: int,
        payload: bytes | None,
        capture_spans: bool = False,
        profile_hz: float | None = None,
    ):
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, child_conn, payload, capture_spans, profile_hz),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        #: (task, attempt) currently assigned, or None when idle.
        self.busy: tuple[Task, int] | None = None
        self.assigned_at = 0.0

    def assign(self, task: Task, attempt: int) -> None:
        self.conn.send((task, attempt))
        self.busy = (task, attempt)
        self.assigned_at = time.monotonic()  # lint: allow-wall-clock deadline bookkeeping only; never enters results

    def kill(self) -> None:
        self.process.terminate()
        self.process.join(timeout=5.0)
        self.conn.close()

    def stop(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.conn.close()


class WorkerPool:
    """Run tasks over N workers with deadlines, retries and recovery.

    ``workers=None`` resolves through :func:`resolve_workers` (the
    ``REPRO_EXEC_WORKERS`` environment default); ``workers=1`` always
    executes serially in-process.  ``backend=None`` picks ``process``
    for multi-worker pools.  ``queue_depth`` bounds how many tasks are
    pulled ahead of the workers (default ``2 * workers``).
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str | None = None,
        timeout: float | None = None,
        queue_depth: int | None = None,
        snapshot: SnapshotHandle | None = None,
        capture_spans: bool = True,
    ):
        self.workers = resolve_workers(workers)
        if backend is None:
            backend = "serial" if self.workers == 1 else "process"
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.workers == 1:
            backend = "serial"
        self.backend = backend
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        if queue_depth is not None and queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth or 2 * self.workers
        self.snapshot = snapshot if snapshot is not None else InlineSnapshot()
        #: Capture real per-task span trees (serial/process backends)
        #: when tracing is on.  ``False`` forces the synthesized-only
        #: trace shape on every backend — the structure the thread
        #: backend is limited to anyway.
        self.capture_spans = capture_spans

    # -- public surface ----------------------------------------------------

    def run(self, tasks: Iterable[Task]) -> PoolResult:
        """Execute all tasks; outcomes merge back in submission order."""
        # Environment-driven profiling (REPRO_PROFILE_HZ) starts here so
        # any benchmark that reaches a pool is profiled without code
        # changes; a no-op when unset or already running.
        ensure_profiling()
        stats = _RunStats()
        started = time.perf_counter()
        if self.backend == "serial":
            outcomes, counters = self._run_serial(tasks, stats)
        elif self.backend == "thread":
            outcomes, counters = self._run_thread(tasks, stats)
        else:
            outcomes, counters = self._run_process(tasks, stats)
        outcomes.sort(key=lambda outcome: outcome.index)
        for outcome in outcomes:  # worker-registry deltas, merge order fixed
            if outcome.metrics:
                registry().merge_snapshot(outcome.metrics)
        prof = profiler()
        if prof.enabled:
            for outcome in outcomes:  # worker profile deltas, same order
                if outcome.profile:
                    prof.merge(outcome.profile)
        self._record_metrics(outcomes, stats)
        self._graft_trace(outcomes)
        return PoolResult(
            outcomes=outcomes,
            elapsed=time.perf_counter() - started,
            workers=self.workers,
            backend=self.backend,
            retries=stats.retries,
            timeouts=stats.timeouts,
            crashes=stats.crashes,
            counters=counters,
        )

    # -- telemetry ---------------------------------------------------------

    def _record_metrics(
        self, outcomes: list[TaskOutcome], stats: _RunStats
    ) -> None:
        """Parent-side pool metrics, emitted in submission order.  Every
        series is touched unconditionally so the set of series present
        does not depend on worker count or scheduling."""
        metrics = registry()
        metrics.gauge("repro_pool_workers").set(self.workers)
        metrics.counter("repro_pool_retries_total").inc(stats.retries)
        metrics.counter("repro_pool_timeouts_total").inc(stats.timeouts)
        metrics.counter("repro_pool_crashes_total").inc(stats.crashes)
        for outcome in outcomes:
            kind = outcome.kind or "task"
            metrics.counter(
                "repro_tasks_total", kind=kind, status=outcome.status
            ).inc()
            metrics.histogram("repro_task_seconds", kind=kind).observe(
                outcome.duration
            )

    def _graft_trace(self, outcomes: list[TaskOutcome]) -> None:
        """Attach one ``pool`` span holding every task's tree, in
        submission order; tasks without a captured tree (thread backend,
        timeouts, crashes, ``capture_spans=False``) get a synthesized
        span, so the trace shape stays deterministic."""
        if not tracer().enabled:
            return
        task_spans: list[list[Span]] = []
        for outcome in outcomes:
            if outcome.spans:
                task_spans.append(outcome.spans)
            else:
                kind = outcome.kind or "task"
                task_spans.append(
                    [
                        synthesize_task_span(
                            f"{kind}[{outcome.index}]",
                            int(outcome.duration * 1_000_000),
                            task_kind=kind,
                            index=outcome.index,
                            worker=outcome.worker,
                            status=outcome.status,
                        )
                    ]
                )
        graft_outcomes(
            "pool",
            task_spans,
            kind="operation",
            backend=self.backend,
            workers=self.workers,
            tasks=len(outcomes),
        )

    # -- serial / thread backends -----------------------------------------

    def _soft_guard(self, outcome: TaskOutcome) -> TaskOutcome:
        """Apply the soft deadline: an overlong successful attempt is
        reclassified as a timeout (its value and counters are dropped,
        matching the hard-timeout backend where they never existed)."""
        if (
            self.timeout is not None
            and outcome.status == STATUS_OK
            and outcome.duration > self.timeout
        ):
            # Spans are dropped with the value: the hard-timeout backend
            # kills the worker before any tree could ship, and the soft
            # path must end in the same (synthesized-span) shape.
            return replace(
                outcome, status=STATUS_TIMEOUT, value=None, counters={},
                spans=[], profile={},
            )
        return outcome

    def _attempt_inline(
        self,
        task: Task,
        worker: int,
        stats: _RunStats,
        capture: bool,
        spans: bool = False,
    ) -> TaskOutcome:
        """Retry-once-then-record for the in-process backends."""
        outcome = self._soft_guard(
            _execute(task, worker, 1, capture, capture_spans=spans)
        )
        if outcome.ok:
            return outcome
        stats.retries += 1
        if outcome.status == STATUS_TIMEOUT:
            stats.timeouts += 1
        retried = self._soft_guard(
            _execute(task, worker, 2, capture, capture_spans=spans)
        )
        if retried.status == STATUS_TIMEOUT:
            stats.timeouts += 1
        return retried

    def _run_serial(
        self, tasks: Iterable[Task], stats: _RunStats
    ) -> tuple[list[TaskOutcome], dict[str, int]]:
        previous = activate(self.snapshot)
        capture = self.capture_spans and tracer().enabled
        # capture_spans=False with tracing on: mute the tracer so inline
        # tasks cannot leak operator spans the other backends would not
        # have (the trace shape must not depend on the backend).
        muted = (
            set_tracer(NullTracer())
            if tracer().enabled and not capture
            else None
        )
        try:
            outcomes = [
                self._attempt_inline(task, 0, stats, capture=True, spans=capture)
                for task in tasks
            ]
        finally:
            if muted is not None:
                set_tracer(muted)
            activate(previous)
        return outcomes, merge_counters(o.counters for o in outcomes)

    def _run_thread(
        self, tasks: Iterable[Task], stats: _RunStats
    ) -> tuple[list[TaskOutcome], dict[str, int]]:
        previous = activate(self.snapshot)
        # The global tracer cannot be swapped per worker thread, so the
        # thread backend never captures; mute it for the run's duration
        # (the pool grafts synthesized task spans afterwards).
        muted = set_tracer(NullTracer()) if tracer().enabled else None
        work: queue_mod.Queue = queue_mod.Queue(maxsize=self.queue_depth)
        outcomes: list[TaskOutcome] = []
        lock = threading.Lock()
        stats_lock = threading.Lock()

        def body(worker_id: int) -> None:
            local = _RunStats()
            while True:
                task = work.get()
                if task is None:
                    break
                # Threads share the engine's process-global counters, so
                # per-task attribution is impossible; the pool reports
                # one aggregate delta instead (capture=False).
                outcome = self._attempt_inline(
                    task, worker_id, local, capture=False
                )
                with lock:
                    outcomes.append(outcome)
            with stats_lock:
                stats.retries += local.retries
                stats.timeouts += local.timeouts

        reset_counters()
        threads = [
            threading.Thread(target=body, args=(worker_id,), daemon=True)
            for worker_id in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        try:
            for task in tasks:  # blocks when the bounded queue is full
                work.put(task)
        finally:
            for _ in threads:
                work.put(None)
            for thread in threads:
                thread.join()
            if muted is not None:
                set_tracer(muted)
            activate(previous)
        return outcomes, reset_counters().as_dict(skip_zero=True)

    # -- process backend ---------------------------------------------------

    def _tick(self) -> float:
        if self.timeout is None:
            return 0.05
        return min(0.05, self.timeout / 5.0)

    def _run_process(
        self, tasks: Iterable[Task], stats: _RunStats
    ) -> tuple[list[TaskOutcome], dict[str, int]]:
        available = mp.get_all_start_methods()
        method = os.environ.get(ENV_START_METHOD, "").strip()
        if method and method not in available:
            raise ValueError(
                f"{ENV_START_METHOD}={method!r} is not available here "
                f"(choices: {', '.join(available)})"
            )
        if not method:
            method = "fork" if "fork" in available else "spawn"
        context = mp.get_context(method)
        payload = None
        if context.get_start_method() != "fork":
            payload = pickle.dumps(self.snapshot.ship())
        # Fork inheritance: children see the handle activated here.
        previous = activate(self.snapshot)
        capture = self.capture_spans and tracer().enabled
        # Workers profile at the parent's rate and ship per-task deltas.
        profile_hz = profiler().hz if profiler().enabled else None
        workers = {}
        try:
            workers = {
                worker_id: _ProcWorker(
                    context, worker_id, payload, capture, profile_hz
                )
                for worker_id in range(self.workers)
            }
            outcomes = self._supervise(
                context, payload, workers, iter(tasks), stats, capture,
                profile_hz,
            )
        finally:
            for worker in workers.values():
                worker.stop()
            activate(previous)
        return outcomes, merge_counters(o.counters for o in outcomes)

    def _supervise(
        self,
        context: Any,
        payload: bytes | None,
        workers: dict[int, _ProcWorker],
        task_iter: Iterator[Task],
        stats: _RunStats,
        capture: bool = False,
        profile_hz: float | None = None,
    ) -> list[TaskOutcome]:
        backlog: deque[tuple[Task, int]] = deque()
        outcomes: list[TaskOutcome] = []
        exhausted = False

        def refill() -> None:
            nonlocal exhausted
            while not exhausted and len(backlog) < self.queue_depth:
                try:
                    backlog.append((next(task_iter), 0))
                except StopIteration:
                    exhausted = True

        def settle(
            worker: _ProcWorker, status: str, error: str
        ) -> None:
            """Retry-or-record for a task whose worker was lost."""
            assert worker.busy is not None
            task, attempt = worker.busy
            worker.busy = None
            if attempt == 0:
                stats.retries += 1
                backlog.appendleft((task, 1))
            else:
                outcomes.append(
                    TaskOutcome(
                        index=task.index,
                        status=status,
                        duration=self.timeout or 0.0,
                        attempts=attempt + 1,
                        worker=worker.worker_id,
                        error=error,
                        kind=task.kind,
                    )
                )

        def respawn(worker: _ProcWorker) -> None:
            workers[worker.worker_id] = _ProcWorker(
                context, worker.worker_id, payload, capture, profile_hz
            )

        while True:
            refill()
            for worker in workers.values():
                if worker.busy is None and backlog:
                    task, attempt = backlog.popleft()
                    worker.assign(task, attempt)
            busy = [w for w in workers.values() if w.busy is not None]
            if not busy:
                if exhausted and not backlog:
                    break
                continue

            ready = mp_connection.wait(
                [worker.conn for worker in busy], timeout=self._tick()
            )
            by_conn = {worker.conn: worker for worker in busy}
            for conn in ready:
                worker = by_conn[conn]
                try:
                    outcome: TaskOutcome = conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task: recover and re-dispatch.
                    stats.crashes += 1
                    worker.kill()
                    settle(worker, STATUS_CRASHED, "worker process died")
                    respawn(worker)
                    continue
                assert worker.busy is not None
                finished_task, finished_attempt = worker.busy
                worker.busy = None
                if outcome.status == STATUS_ERROR and finished_attempt == 0:
                    stats.retries += 1
                    backlog.appendleft((finished_task, 1))
                else:
                    outcomes.append(outcome)

            now = time.monotonic()  # lint: allow-wall-clock deadline bookkeeping only; never enters results
            if self.timeout is not None:
                for worker in list(workers.values()):
                    if (
                        worker.busy is not None
                        and now - worker.assigned_at > self.timeout
                    ):
                        stats.timeouts += 1
                        worker.kill()
                        settle(
                            worker,
                            STATUS_TIMEOUT,
                            f"exceeded {self.timeout:.3f}s deadline",
                        )
                        respawn(worker)
            for worker in list(workers.values()):
                if worker.busy is not None and not worker.process.is_alive():
                    # Crash detected by liveness before the pipe EOF:
                    # drain a final message if one made it out.
                    if worker.conn.poll():
                        continue  # the wait() loop will pick it up
                    stats.crashes += 1
                    worker.kill()
                    settle(worker, STATUS_CRASHED, "worker process died")
                    respawn(worker)
        return outcomes
