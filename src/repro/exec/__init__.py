"""repro.exec — process-parallel benchmark execution.

The execution subsystem the BI throughput methodology calls for: a
worker-pool scheduler (:class:`WorkerPool`) running registered task
kinds (:mod:`repro.exec.tasks`) over an immutable fork-shared store
snapshot (:mod:`repro.exec.snapshot`), with bounded dispatch, per-task
deadlines, retry-once-then-record semantics, worker-crash recovery and
deterministic result merging.  ``power_test`` / ``throughput_test`` /
``concurrent_read_test`` and the Interactive driver all execute through
it; ``REPRO_EXEC_WORKERS`` sets the default worker count everywhere.
"""

from repro.exec.pool import (
    ENV_WORKERS,
    PoolResult,
    WorkerPool,
    default_workers,
    resolve_workers,
)
from repro.exec.snapshot import StoreSnapshot, current_snapshot, install_snapshot
from repro.exec.tasks import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Task,
    TaskOutcome,
    register_task_kind,
    run_task,
)

__all__ = [
    "ENV_WORKERS",
    "PoolResult",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "StoreSnapshot",
    "Task",
    "TaskOutcome",
    "WorkerPool",
    "current_snapshot",
    "default_workers",
    "install_snapshot",
    "register_task_kind",
    "resolve_workers",
    "run_task",
]
