"""repro.exec — process-parallel benchmark execution.

The execution subsystem the BI throughput methodology calls for: a
worker-pool scheduler (:class:`WorkerPool`) running registered task
kinds (:mod:`repro.exec.tasks`) over an immutable shared snapshot
handle (:mod:`repro.exec.snapshot` — inline/fork-inherited or a mapped
snapshot file / shared-memory segment), with bounded dispatch, per-task
deadlines, retry-once-then-record semantics, worker-crash recovery and
deterministic result merging.  ``power_test`` / ``throughput_test`` /
``concurrent_read_test`` and the Interactive driver all execute through
it; ``REPRO_EXEC_WORKERS`` sets the default worker count everywhere.
"""

from repro.exec.pool import (
    ENV_START_METHOD,
    ENV_WORKERS,
    PoolResult,
    WorkerPool,
    default_workers,
    resolve_workers,
)
from repro.exec.snapshot import (
    PROVIDERS,
    InlineSnapshot,
    MmapFileSnapshot,
    SharedMemorySnapshot,
    ShippedSnapshot,
    SnapshotConfig,
    SnapshotHandle,
    activate,
    active,
    provide_snapshot,
)
from repro.exec.tasks import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Task,
    TaskOutcome,
    register_task_kind,
    run_task,
)

__all__ = [
    "PROVIDERS",
    "ENV_START_METHOD",
    "ENV_WORKERS",
    "InlineSnapshot",
    "MmapFileSnapshot",
    "PoolResult",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SharedMemorySnapshot",
    "ShippedSnapshot",
    "SnapshotConfig",
    "SnapshotHandle",
    "Task",
    "TaskOutcome",
    "WorkerPool",
    "activate",
    "active",
    "default_workers",
    "provide_snapshot",
    "register_task_kind",
    "resolve_workers",
    "run_task",
]
