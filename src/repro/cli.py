"""Command-line interface: ``python -m repro <command>``.

Commands mirror the benchmark workflow (spec Figure 2.3):

* ``generate``   — run Datagen and export the dataset, update/delete
  streams and substitution-parameter files.
* ``run``        — run a workload: ``--workload bi`` (power /
  throughput / concurrent modes, or one query via ``--query``) or
  ``--workload interactive`` (the driver).  ``--workers`` / ``--timeout``
  configure the :mod:`repro.exec` pool.  The pre-envelope commands
  ``run-bi`` and ``run-interactive`` remain as hidden aliases.
* ``validate``   — create or check a validation dataset (spec 6.2).
* ``report``     — print reference tables (choke points, scale factors).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.chokepoints import format_coverage_table
from repro.analysis.report import full_disclosure_report
from repro.core.api import SocialNetworkBenchmark
from repro.core.run import RunRequest
from repro.datagen.scale import SCALE_FACTORS
from repro.exec import PROVIDERS, SnapshotConfig
from repro.driver.validation import (
    read_validation_set,
    write_validation_set,
)
from repro.params.files import write_parameter_files


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--persons", type=int, default=300,
                        help="number of persons to generate (default 300)")
    parser.add_argument("--seed", type=int, default=42,
                        help="datagen master seed (default 42)")
    parser.add_argument("--years", type=int, default=3,
                        help="simulated years (default 3)")
    parser.add_argument("--start-year", type=int, default=2010,
                        help="first simulated year (default 2010)")


def _bench(args: argparse.Namespace) -> SocialNetworkBenchmark:
    return SocialNetworkBenchmark.generate(
        num_persons=args.persons,
        seed=args.seed,
        num_years=args.years,
        start_year=args.start_year,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    bench = _bench(args)
    output = Path(args.output)
    root = bench.export(output, variant=args.format)
    generated = len(list(root.rglob("*")))
    write_parameter_files(bench.params, output, bindings_per_query=args.bindings)
    if args.deletes:
        from repro.datagen.delete_streams import (
            build_delete_streams,
            write_delete_stream,
        )

        write_delete_stream(build_delete_streams(bench.network), output)
    print(
        f"generated {len(bench.network.persons)} persons"
        f" (~SF {bench.scale_factor:.4f}),"
        f" {bench.network.node_count()} nodes,"
        f" {bench.network.edge_count()} edges"
    )
    print(f"dataset: {root} ({generated} files, format {args.format})")
    print(f"parameters: {output / 'substitution_parameters'}")
    return 0


def _configuration(args: argparse.Namespace, request: RunRequest) -> dict:
    """The ``configuration.json`` document: the request envelope plus
    the dataset parameters that reproduce the graph."""
    return {
        "persons": args.persons,
        "datagen_seed": args.seed,
        **request.configuration_dict(),
    }


def _write_telemetry(args: argparse.Namespace, report) -> None:
    """Persist the run's telemetry per the ``--trace`` / ``--metrics-out``
    flags (no-ops when neither was given or no telemetry is attached)."""
    document = report.telemetry
    if document is None:
        return
    if args.trace:
        from repro.obs import to_chrome_trace

        trace_dir = Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        with open(trace_dir / "telemetry.json", "w") as handle:
            json.dump(document, handle, indent=2)
        with open(trace_dir / "trace.json", "w") as handle:
            json.dump(to_chrome_trace(document), handle)
        print(f"telemetry: {trace_dir / 'telemetry.json'}")
        print(f"trace (load in ui.perfetto.dev): {trace_dir / 'trace.json'}")
    if args.metrics_out:
        from repro.obs import to_prometheus

        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(to_prometheus(document["metrics"]))
        print(f"metrics: {metrics_path}")
    if args.profile and document.get("profile"):
        from repro.obs import to_chrome_trace, to_collapsed

        profile_dir = Path(args.profile)
        profile_dir.mkdir(parents=True, exist_ok=True)
        collapsed = profile_dir / "profile.collapsed"
        collapsed.write_text(to_collapsed(document))
        print(f"profile (collapsed stacks, flamegraph-ready): {collapsed}")
        if not args.trace:
            # Without --trace there is no trace.json yet; write one here
            # so the Perfetto counter tracks are reachable either way.
            with open(profile_dir / "trace.json", "w") as handle:
                json.dump(to_chrome_trace(document), handle)
            print(f"trace (counter tracks): {profile_dir / 'trace.json'}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.trace:
        from repro.obs import enable_tracing

        enable_tracing()
    if args.profile:
        from repro.obs import DEFAULT_PROFILE_HZ, ProfileConfig, enable_profiling

        # One parse point for the rate: REPRO_PROFILE_HZ when set, else
        # the default — the flag itself is what turns profiling on.
        config = ProfileConfig().resolved()
        enable_profiling(config.hz if config.enabled else DEFAULT_PROFILE_HZ)
    bench = _bench(args)
    if args.workload == "bi":
        if args.query is not None:
            rows = bench.bi.run(args.query)
            for row in rows[: args.limit]:
                print(tuple(row))
            print(f"-- BI {args.query}: {len(rows)} rows")
            return 0
        request = RunRequest(
            workload="bi",
            mode=args.mode,
            workers=args.workers,
            timeout=args.timeout,
            snapshot=_snapshot_config(args),
        )
        report = bench.run(request)
        print(report.format_table())
        telemetry_source = report
        if args.throughput and request.mode == "power":
            outcome = bench.run(
                RunRequest(
                    workload="bi",
                    mode="throughput",
                    workers=args.workers,
                    timeout=args.timeout,
                    snapshot=_snapshot_config(args),
                )
            )
            print(outcome.format_table())
            # The tracer is run-global: the second run's document holds
            # the spans and metrics of both runs.
            telemetry_source = outcome
        if args.results_dir:
            report.write_results_dir(
                args.results_dir, configuration=_configuration(args, request)
            )
            print(f"results directory: {args.results_dir}")
        _write_telemetry(args, telemetry_source)
        return 0
    request = RunRequest(
        workload="interactive",
        workers=args.workers,
        timeout=args.timeout,
        snapshot=_snapshot_config(args),
        options={
            "time_compression_ratio": args.tcr,
            "max_updates": args.updates,
            "include_deletes": args.deletes,
        },
    )
    report = bench.run(request)
    if args.results_dir:
        report.write_results_dir(
            args.results_dir, configuration=_configuration(args, request)
        )
        print(f"results directory: {args.results_dir}")
    _write_telemetry(args, report)
    if args.fdr:
        print(
            full_disclosure_report(
                f"{args.persons} persons (~SF {bench.scale_factor:.4f})",
                bench.load_seconds,
                report,
            )
        )
    else:
        print(report.format_table())
    return 0 if report.is_valid_run else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    bench = _bench(args)
    path = Path(args.file)
    if args.create:
        validation_set = bench.create_validation_set(
            bindings_per_query=args.bindings
        )
        write_validation_set(validation_set, path)
        print(f"wrote {len(validation_set['entries'])} entries to {path}")
        return 0
    validation_set = read_validation_set(path)
    mismatches = bench.validate(validation_set)
    if mismatches:
        print(f"FAILED: {len(mismatches)} mismatching queries")
        for mismatch in mismatches[:5]:
            print(f"  {mismatch['kind']} {mismatch['number']}"
                  f" params={mismatch['params']}")
        return 1
    print(f"OK: all {len(validation_set['entries'])} queries match")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.table == "chokepoints":
        print(format_coverage_table())
    elif args.table == "dataset":
        from repro.analysis.stats import compute_statistics

        bench = _bench(args)
        print(compute_statistics(bench.graph).format())
    elif args.table == "scale-factors":
        print(f"{'SF':>8s} {'#persons':>10s} {'#nodes':>14s} {'#edges':>15s}")
        for sf in sorted(SCALE_FACTORS):
            persons, nodes, edges = SCALE_FACTORS[sf]
            print(f"{sf:8g} {persons:10d} {nodes:14d} {edges:15d}")
    return 0


def _snapshot_config(args: argparse.Namespace) -> SnapshotConfig | None:
    """The run's :class:`SnapshotConfig`, or ``None`` when no snapshot
    flag was given (knobs then resolve from the environment)."""
    if args.snapshot_provider is None and args.morsel_size is None:
        return None
    return SnapshotConfig(
        provider=args.snapshot_provider, morsel_size=args.morsel_size
    )


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """Everything the unified ``run`` command (and its hidden aliases)
    accepts; options apply per workload as documented."""
    _add_dataset_options(parser)
    parser.add_argument("--mode", default=None,
                        choices=["power", "throughput", "concurrent"],
                        help="BI execution mode (default power)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: REPRO_EXEC_WORKERS"
                             " or serial)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-query deadline in seconds")
    parser.add_argument("--snapshot-provider", default=None,
                        choices=list(PROVIDERS),
                        help="how process workers obtain the read"
                             " snapshot (default: REPRO_SNAPSHOT_PROVIDER"
                             " or inline)")
    parser.add_argument("--morsel-size", type=int, default=None,
                        help="split heavy BI scans into morsels of this"
                             " many rows across the pool (default:"
                             " REPRO_MORSEL_SIZE or off)")
    parser.add_argument("--query", type=int, choices=range(1, 26),
                        help="run one BI query instead of a full test")
    parser.add_argument("--limit", type=int, default=10,
                        help="rows to print for --query")
    parser.add_argument("--throughput", action="store_true",
                        help="after a BI power test, also run the"
                             " microbatch throughput test")
    parser.add_argument("--updates", type=int, default=None,
                        help="interactive: cap on update operations")
    parser.add_argument("--tcr", type=float, default=0.0,
                        help="interactive: time compression ratio"
                             " (0 = flat out)")
    parser.add_argument("--deletes", action="store_true",
                        help="interactive: interleave the delete stream")
    parser.add_argument("--fdr", action="store_true",
                        help="interactive: print a full disclosure report")
    parser.add_argument("--results-dir", default=None,
                        help="write the \u00a76.2 results directory"
                             " (config, results log, summary)")
    parser.add_argument("--trace", default=None, metavar="DIR",
                        help="enable span tracing and write telemetry.json"
                             " plus a Perfetto-loadable trace.json to DIR")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the run's metrics in Prometheus text"
                             " exposition format to FILE")
    parser.add_argument("--profile", default=None, metavar="DIR",
                        help="enable the sampling profiler (rate:"
                             " REPRO_PROFILE_HZ or 97 Hz) and write"
                             " profile.collapsed to DIR")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LDBC Social Network Benchmark (BI workload) reproduction",
    )
    # The metavar hides the legacy run-bi/run-interactive aliases from
    # usage/help while argparse keeps accepting them.
    commands = parser.add_subparsers(
        dest="command", required=True,
        metavar="{generate,run,validate,report}",
    )

    generate = commands.add_parser(
        "generate", help="run Datagen and export all artefacts"
    )
    _add_dataset_options(generate)
    generate.add_argument("--output", default="out", help="output directory")
    generate.add_argument(
        "--format", default="CsvBasic",
        choices=["CsvBasic", "CsvMergeForeign", "CsvComposite",
                 "CsvCompositeMergeForeign", "Turtle"],
    )
    generate.add_argument("--bindings", type=int, default=20,
                          help="parameter bindings per query")
    generate.add_argument("--deletes", action="store_true",
                          help="also write the delete stream")
    generate.set_defaults(handler=_cmd_generate)

    run = commands.add_parser(
        "run", help="run a workload (BI or Interactive)"
    )
    run.add_argument("--workload", default="bi",
                     choices=["bi", "interactive"],
                     help="which workload to run (default bi)")
    _add_run_options(run)
    run.set_defaults(handler=_cmd_run)

    # Hidden aliases of `run` (the pre-envelope command names).
    run_bi = commands.add_parser("run-bi")
    _add_run_options(run_bi)
    run_bi.set_defaults(handler=_cmd_run, workload="bi")

    run_interactive = commands.add_parser("run-interactive")
    _add_run_options(run_interactive)
    run_interactive.set_defaults(handler=_cmd_run, workload="interactive")

    validate = commands.add_parser(
        "validate", help="create or check a validation dataset"
    )
    _add_dataset_options(validate)
    validate.add_argument("file", help="validation dataset path (JSON)")
    validate.add_argument("--create", action="store_true",
                          help="create instead of check")
    validate.add_argument("--bindings", type=int, default=2)
    validate.set_defaults(handler=_cmd_validate)

    report = commands.add_parser("report", help="print reference tables")
    _add_dataset_options(report)
    report.add_argument(
        "table", choices=["chokepoints", "scale-factors", "dataset"],
    )
    report.set_defaults(handler=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
