"""Command-line interface: ``python -m repro <command>``.

Commands mirror the benchmark workflow (spec Figure 2.3):

* ``generate``   — run Datagen and export the dataset, update/delete
  streams and substitution-parameter files.
* ``run-bi``     — run one BI read, or the full power test.
* ``run-interactive`` — run the Interactive workload through the driver.
* ``validate``   — create or check a validation dataset (spec 6.2).
* ``report``     — print reference tables (choke points, scale factors).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.chokepoints import format_coverage_table
from repro.analysis.report import full_disclosure_report
from repro.core.api import SocialNetworkBenchmark
from repro.datagen.scale import SCALE_FACTORS, approximate_scale_factor
from repro.driver.bi_driver import (
    build_microbatches,
    power_test,
    throughput_test,
)
from repro.driver.validation import (
    read_validation_set,
    write_validation_set,
)
from repro.params.files import write_parameter_files


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--persons", type=int, default=300,
                        help="number of persons to generate (default 300)")
    parser.add_argument("--seed", type=int, default=42,
                        help="datagen master seed (default 42)")
    parser.add_argument("--years", type=int, default=3,
                        help="simulated years (default 3)")
    parser.add_argument("--start-year", type=int, default=2010,
                        help="first simulated year (default 2010)")


def _bench(args: argparse.Namespace) -> SocialNetworkBenchmark:
    return SocialNetworkBenchmark.generate(
        num_persons=args.persons,
        seed=args.seed,
        num_years=args.years,
        start_year=args.start_year,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    bench = _bench(args)
    output = Path(args.output)
    root = bench.export(output, variant=args.format)
    generated = len(list(root.rglob("*")))
    write_parameter_files(bench.params, output, bindings_per_query=args.bindings)
    if args.deletes:
        from repro.datagen.delete_streams import (
            build_delete_streams,
            write_delete_stream,
        )

        write_delete_stream(build_delete_streams(bench.network), output)
    print(
        f"generated {len(bench.network.persons)} persons"
        f" (~SF {bench.scale_factor:.4f}),"
        f" {bench.network.node_count()} nodes,"
        f" {bench.network.edge_count()} edges"
    )
    print(f"dataset: {root} ({generated} files, format {args.format})")
    print(f"parameters: {output / 'substitution_parameters'}")
    return 0


def _cmd_run_bi(args: argparse.Namespace) -> int:
    bench = _bench(args)
    if args.query is not None:
        rows = bench.bi.run(args.query)
        for row in rows[: args.limit]:
            print(tuple(row))
        print(f"-- BI {args.query}: {len(rows)} rows")
        return 0
    sf = approximate_scale_factor(args.persons)
    result = power_test(bench.graph, bench.params, sf)
    print(result.format_table())
    if args.throughput:
        batches = build_microbatches(bench.network)
        outcome = throughput_test(bench.graph, bench.params, batches)
        print(outcome.format_table())
    return 0


def _cmd_run_interactive(args: argparse.Namespace) -> int:
    bench = _bench(args)
    report = bench.run_driver(
        time_compression_ratio=args.tcr,
        max_updates=args.updates,
        include_deletes=args.deletes,
    )
    if args.results_dir:
        report.write_results_dir(
            args.results_dir,
            configuration={
                "persons": args.persons,
                "seed": args.seed,
                "time_compression_ratio": args.tcr,
                "max_updates": args.updates,
                "include_deletes": args.deletes,
            },
        )
        print(f"results directory: {args.results_dir}")
    if args.fdr:
        print(
            full_disclosure_report(
                f"{args.persons} persons (~SF {bench.scale_factor:.4f})",
                bench.load_seconds,
                report,
            )
        )
    else:
        print(report.format_table())
    return 0 if report.is_valid_run else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    bench = _bench(args)
    path = Path(args.file)
    if args.create:
        validation_set = bench.create_validation_set(
            bindings_per_query=args.bindings
        )
        write_validation_set(validation_set, path)
        print(f"wrote {len(validation_set['entries'])} entries to {path}")
        return 0
    validation_set = read_validation_set(path)
    mismatches = bench.validate(validation_set)
    if mismatches:
        print(f"FAILED: {len(mismatches)} mismatching queries")
        for mismatch in mismatches[:5]:
            print(f"  {mismatch['kind']} {mismatch['number']}"
                  f" params={mismatch['params']}")
        return 1
    print(f"OK: all {len(validation_set['entries'])} queries match")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.table == "chokepoints":
        print(format_coverage_table())
    elif args.table == "dataset":
        from repro.analysis.stats import compute_statistics

        bench = _bench(args)
        print(compute_statistics(bench.graph).format())
    elif args.table == "scale-factors":
        print(f"{'SF':>8s} {'#persons':>10s} {'#nodes':>14s} {'#edges':>15s}")
        for sf in sorted(SCALE_FACTORS):
            persons, nodes, edges = SCALE_FACTORS[sf]
            print(f"{sf:8g} {persons:10d} {nodes:14d} {edges:15d}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LDBC Social Network Benchmark (BI workload) reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="run Datagen and export all artefacts"
    )
    _add_dataset_options(generate)
    generate.add_argument("--output", default="out", help="output directory")
    generate.add_argument(
        "--format", default="CsvBasic",
        choices=["CsvBasic", "CsvMergeForeign", "CsvComposite",
                 "CsvCompositeMergeForeign", "Turtle"],
    )
    generate.add_argument("--bindings", type=int, default=20,
                          help="parameter bindings per query")
    generate.add_argument("--deletes", action="store_true",
                          help="also write the delete stream")
    generate.set_defaults(handler=_cmd_generate)

    run_bi = commands.add_parser("run-bi", help="run BI reads")
    _add_dataset_options(run_bi)
    run_bi.add_argument("--query", type=int, choices=range(1, 26),
                        help="one query number (default: full power test)")
    run_bi.add_argument("--limit", type=int, default=10,
                        help="rows to print for --query")
    run_bi.add_argument("--throughput", action="store_true",
                        help="also run the microbatch throughput test")
    run_bi.set_defaults(handler=_cmd_run_bi)

    run_interactive = commands.add_parser(
        "run-interactive", help="run the Interactive workload driver"
    )
    _add_dataset_options(run_interactive)
    run_interactive.add_argument("--updates", type=int, default=None,
                                 help="cap on update operations")
    run_interactive.add_argument("--tcr", type=float, default=0.0,
                                 help="time compression ratio (0 = flat out)")
    run_interactive.add_argument("--deletes", action="store_true",
                                 help="interleave the delete stream")
    run_interactive.add_argument("--fdr", action="store_true",
                                 help="print a full disclosure report")
    run_interactive.add_argument("--results-dir", default=None,
                                 help="write the \u00a76.2 results directory"
                                      " (config, results log, summary)")
    run_interactive.set_defaults(handler=_cmd_run_interactive)

    validate = commands.add_parser(
        "validate", help="create or check a validation dataset"
    )
    _add_dataset_options(validate)
    validate.add_argument("file", help="validation dataset path (JSON)")
    validate.add_argument("--create", action="store_true",
                          help="create instead of check")
    validate.add_argument("--bindings", type=int, default=2)
    validate.set_defaults(handler=_cmd_validate)

    report = commands.add_parser("report", help="print reference tables")
    _add_dataset_options(report)
    report.add_argument(
        "table", choices=["chokepoints", "scale-factors", "dataset"],
    )
    report.set_defaults(handler=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
