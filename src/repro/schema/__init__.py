"""LDBC SNB data schema (spec section 2.3.2): entities and relations."""

from repro.schema.entities import (
    Comment,
    Forum,
    ForumKind,
    Message,
    Organisation,
    OrganisationType,
    Person,
    Place,
    PlaceType,
    Post,
    Tag,
    TagClass,
)
from repro.schema.relations import (
    HasMember,
    Knows,
    Likes,
    RELATIONS,
    RelationSpec,
    StudyAt,
    WorkAt,
)

__all__ = [
    "Comment",
    "Forum",
    "ForumKind",
    "HasMember",
    "Knows",
    "Likes",
    "Message",
    "Organisation",
    "OrganisationType",
    "Person",
    "Place",
    "PlaceType",
    "Post",
    "RELATIONS",
    "RelationSpec",
    "StudyAt",
    "Tag",
    "TagClass",
    "WorkAt",
]
