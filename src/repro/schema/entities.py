"""Entity types of the LDBC SNB schema (spec section 2.3.2, Figure 2.1).

Each entity is a plain dataclass with ``slots`` — rows are created in the
millions by Datagen, so per-instance dictionaries would dominate memory.
Attribute names follow the spec's camelCase converted to snake_case.

Dates are day ordinals and DateTimes epoch millis (see
:mod:`repro.util.dates`).  Optional text attributes use the spec's
"empty string" convention (section 2.3.2, textual restrictions): a Post
has either ``content`` or ``image_file``, the other is ``""``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.dates import Date, DateTime


class PlaceType(enum.Enum):
    """Sub-classes of Place (spec: City, Country, Continent)."""

    CITY = "city"
    COUNTRY = "country"
    CONTINENT = "continent"


class OrganisationType(enum.Enum):
    """Sub-classes of Organisation (spec: University, Company)."""

    UNIVERSITY = "university"
    COMPANY = "company"


class ForumKind(enum.Enum):
    """The three forum flavours distinguished by title (spec section 2.3.2.1)."""

    WALL = "wall"
    ALBUM = "album"
    GROUP = "group"


@dataclass(slots=True)
class Place:
    """A place in the world (Table 2.6) plus its isPartOf parent."""

    id: int
    name: str
    url: str
    type: PlaceType
    #: id of the containing Place (country for a city, continent for a
    #: country, -1 for a continent) — the isPartOf relation of Table 2.10.
    part_of: int = -1


@dataclass(slots=True)
class Organisation:
    """An institution (Table 2.4) plus its isLocatedIn place."""

    id: int
    type: OrganisationType
    name: str
    url: str
    #: City id for a University, Country id for a Company (Table 2.10).
    place_id: int = -1


@dataclass(slots=True)
class TagClass:
    """A node of the tag-class hierarchy (Table 2.9)."""

    id: int
    name: str
    url: str
    #: Parent TagClass id, -1 at the root (isSubclassOf, cardinality 0..1).
    subclass_of: int = -1


@dataclass(slots=True)
class Tag:
    """A topic or concept (Table 2.8)."""

    id: int
    name: str
    url: str
    #: TagClass id (hasType, cardinality exactly 1).
    type_id: int = -1


@dataclass(slots=True)
class Person:
    """The avatar of a real-world person (Table 2.5)."""

    id: int
    first_name: str
    last_name: str
    gender: str
    birthday: Date
    creation_date: DateTime
    location_ip: str
    browser_used: str
    #: Home City id (isLocatedIn, cardinality exactly 1).
    city_id: int = -1
    emails: list[str] = field(default_factory=list)
    speaks: list[str] = field(default_factory=list)
    #: Tag ids the person is interested in (hasInterest).
    interests: list[int] = field(default_factory=list)


@dataclass(slots=True)
class Forum:
    """A meeting point where people post messages (Table 2.2)."""

    id: int
    title: str
    creation_date: DateTime
    #: Moderator Person id (hasModerator, cardinality exactly 1).
    moderator_id: int = -1
    kind: ForumKind = ForumKind.GROUP
    #: Tag ids describing the forum's topics (hasTag).
    tag_ids: list[int] = field(default_factory=list)


@dataclass(slots=True)
class Post:
    """A Message posted in a Forum (Tables 2.3 and 2.7).

    Exactly one of ``content`` / ``image_file`` is non-empty.
    """

    id: int
    creation_date: DateTime
    location_ip: str
    browser_used: str
    content: str
    length: int
    creator_id: int
    forum_id: int
    #: Country id the post was issued from (isLocatedIn).
    country_id: int
    language: str = ""
    image_file: str = ""
    tag_ids: list[int] = field(default_factory=list)

    @property
    def is_comment(self) -> bool:
        return False

    @property
    def content_or_image(self) -> str:
        """The value IC 2/IC 9 project as ``messageContent``."""
        return self.content if self.content else self.image_file


@dataclass(slots=True)
class Comment:
    """A Message replying to another Message (Table 2.3).

    Exactly one of ``reply_of_post`` / ``reply_of_comment`` is >= 0.
    """

    id: int
    creation_date: DateTime
    location_ip: str
    browser_used: str
    content: str
    length: int
    creator_id: int
    #: Country id the comment was issued from (isLocatedIn).
    country_id: int
    reply_of_post: int = -1
    reply_of_comment: int = -1
    tag_ids: list[int] = field(default_factory=list)

    @property
    def is_comment(self) -> bool:
        return True

    @property
    def content_or_image(self) -> str:
        return self.content


#: A Message is the abstract union of Post and Comment (spec Table 2.3).
Message = Post | Comment
