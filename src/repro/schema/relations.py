"""Attributed relations and the relation registry (spec Table 2.10).

Relations without attributes (hasCreator, containerOf, hasTag, ...) are
stored as plain adjacency in the graph store; the four attributed
relations (knows, likes, hasMember, studyAt, workAt) get record types
here.  ``RELATIONS`` captures the full Table 2.10 metadata — tail/head
types, cardinalities and direction — which the schema tests and the
serializer inventory benchmark validate against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.dates import DateTime


@dataclass(slots=True, frozen=True)
class Knows:
    """Undirected friendship edge.  Stored once with person1 < person2."""

    person1: int
    person2: int
    creation_date: DateTime

    def other(self, person_id: int) -> int:
        return self.person2 if person_id == self.person1 else self.person1


@dataclass(slots=True, frozen=True)
class Likes:
    """A Person liking a Message (``is_post`` disambiguates the target)."""

    person_id: int
    message_id: int
    creation_date: DateTime
    is_post: bool


@dataclass(slots=True, frozen=True)
class HasMember:
    """Forum membership with join date."""

    forum_id: int
    person_id: int
    join_date: DateTime


@dataclass(slots=True, frozen=True)
class StudyAt:
    """Person studied at a University, graduating in ``class_year``."""

    person_id: int
    university_id: int
    class_year: int


@dataclass(slots=True, frozen=True)
class WorkAt:
    """Person works at a Company since ``work_from``."""

    person_id: int
    company_id: int
    work_from: int


@dataclass(slots=True, frozen=True)
class RelationSpec:
    """One row of spec Table 2.10."""

    name: str
    tail: str
    head: str
    directed: bool
    #: Attribute name -> spec type, empty when the relation is plain.
    attributes: tuple[tuple[str, str], ...] = ()


RELATIONS: tuple[RelationSpec, ...] = (
    RelationSpec("containerOf", "Forum", "Post", True),
    RelationSpec("hasCreator", "Message", "Person", True),
    RelationSpec("hasInterest", "Person", "Tag", True),
    RelationSpec("hasMember", "Forum", "Person", True, (("joinDate", "DateTime"),)),
    RelationSpec("hasModerator", "Forum", "Person", True),
    RelationSpec("hasTag (message)", "Message", "Tag", True),
    RelationSpec("hasTag (forum)", "Forum", "Tag", True),
    RelationSpec("hasType", "Tag", "TagClass", True),
    RelationSpec("isLocatedIn (company)", "Company", "Country", True),
    RelationSpec("isLocatedIn (message)", "Message", "Country", True),
    RelationSpec("isLocatedIn (person)", "Person", "City", True),
    RelationSpec("isLocatedIn (university)", "University", "City", True),
    RelationSpec("isPartOf (city)", "City", "Country", True),
    RelationSpec("isPartOf (country)", "Country", "Continent", True),
    RelationSpec("isSubclassOf", "TagClass", "TagClass", True),
    RelationSpec("knows", "Person", "Person", False, (("creationDate", "DateTime"),)),
    RelationSpec("likes", "Person", "Message", True, (("creationDate", "DateTime"),)),
    RelationSpec("replyOf", "Comment", "Message", True),
    RelationSpec("studyAt", "Person", "University", True, (("classYear", "32-bit Integer"),)),
    RelationSpec("workAt", "Person", "Company", True, (("workFrom", "32-bit Integer"),)),
)
