"""repro — a from-scratch Python reproduction of the LDBC Social Network
Benchmark (Business Intelligence workload, with the full Interactive
workload, Datagen, parameter curation and test driver).

Public entry points:

* :class:`repro.SocialNetworkBenchmark` — generate, load, query, drive.
* :mod:`repro.datagen` — the deterministic data generator.
* :mod:`repro.graph` — the in-memory reference SUT.
* :mod:`repro.queries.bi` / :mod:`repro.queries.interactive` — workloads.
* :mod:`repro.params` — substitution-parameter curation.
* :mod:`repro.driver` — scheduling, execution, validation.
* :mod:`repro.analysis` — choke points, checklists, disclosure reports.
"""

from repro.core.api import BiWorkload, InteractiveWorkload, SocialNetworkBenchmark
from repro.core.run import RunReport, RunRequest
from repro.datagen.config import DatagenConfig
from repro.datagen.generator import SocialNetworkData, generate
from repro.graph.store import SocialGraph

__version__ = "1.0.0"

__all__ = [
    "BiWorkload",
    "DatagenConfig",
    "InteractiveWorkload",
    "RunReport",
    "RunRequest",
    "SocialGraph",
    "SocialNetworkBenchmark",
    "SocialNetworkData",
    "generate",
    "__version__",
]
