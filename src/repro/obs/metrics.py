"""The metrics registry: named counters, gauges and latency histograms.

Naming scheme (documented in ``docs/OBSERVABILITY.md``):

* every metric is ``repro_<subsystem>_<what>`` with Prometheus-style
  unit suffixes — ``_total`` for counters, ``_seconds`` for latency
  histograms;
* labels are passed as keyword arguments (``histogram("repro_task_seconds",
  kind="bi")``) and become part of the series identity, serialized as
  ``name{k="v",...}`` in snapshots and the text exposition.

Histograms use **fixed buckets** (:data:`LATENCY_BUCKETS_SECONDS` by
default) so that per-worker histograms merge by plain bucket-count
addition — the same commutative-sum property the engine's operator
counters rely on — and p50/p95/p99 are derived from the bucket counts
(linear interpolation inside the bucket, exact tracked ``max``/``min``
as clamps).  Quantiles are therefore estimates with bucket-width
resolution, which is what fixed buckets trade for mergeability.

Like :mod:`repro.engine.stats`, the registry is process-global and
always on — integer adds are cheap enough to leave unconditionally
enabled, and (unlike the per-query operator counters, which the
executor resets around every task) it is **never reset during a run**,
so work done between queries (cache invalidation, write batches) keeps
its counts.  Worker processes accumulate into their own copy; the
executor ships per-task *deltas* back and merges them into the parent
registry (:meth:`MetricsRegistry.merge_snapshot`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

#: Default latency buckets, in seconds (upper bounds; +Inf is implicit).
LATENCY_BUCKETS_SECONDS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: One lock for all mutation: metric updates are coarse (per query /
#: per task, never per row), so contention is negligible and the thread
#: backend's concurrent increments stay exact.
_LOCK = threading.Lock()


def _escape_label_value(value: Any) -> str:
    """Label-value escaping per the Prometheus exposition format:
    backslash, double-quote and newline are escaped (in that order, so
    the escape character itself survives)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def series_key(name: str, labels: Mapping[str, Any]) -> str:
    """The canonical series identity: ``name{k="v",...}``, label-sorted
    (doubles as the Prometheus exposition series name, so label values
    carry the exposition format's escaping)."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with _LOCK:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with _LOCK:
            self.value = value


class Histogram:
    """A fixed-bucket latency histogram with derived quantiles."""

    __slots__ = ("buckets", "counts", "sum", "count", "max", "min")

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS_SECONDS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = tuple(buckets)
        #: One count per finite bucket plus the +Inf overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.max = 0.0
        self.min: float | None = None

    def observe(self, value: float) -> None:
        with _LOCK:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1
            if value > self.max:
                self.max = value
            if self.min is None or value < self.min:
                self.min = value

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else self.max
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                low_clamp = self.min if self.min is not None else 0.0
                return max(low_clamp, min(estimate, self.max))
            cumulative += bucket_count
        return self.max

    def summary(self) -> dict[str, float]:
        """count / mean / p50 / p95 / p99 / max, in milliseconds where
        the metric is a latency (the only histogram kind we keep)."""
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": float(self.count),
            "mean_ms": 1000.0 * mean,
            "p50_ms": 1000.0 * self.quantile(0.50),
            "p95_ms": 1000.0 * self.quantile(0.95),
            "p99_ms": 1000.0 * self.quantile(0.99),
            "max_ms": 1000.0 * self.max,
        }


class MetricsRegistry:
    """All metric series of one process, keyed by serialized identity."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- creation (get-or-create, stable per identity) ---------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = series_key(name, labels)
        found = self._counters.get(key)
        if found is None:
            with _LOCK:
                found = self._counters.setdefault(key, Counter())
        return found

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = series_key(name, labels)
        found = self._gauges.get(key)
        if found is None:
            with _LOCK:
                found = self._gauges.setdefault(key, Gauge())
        return found

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = LATENCY_BUCKETS_SECONDS,
                  **labels: Any) -> Histogram:
        key = series_key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            with _LOCK:
                found = self._histograms.setdefault(key, Histogram(buckets))
        return found

    # -- snapshots (the cross-process merge currency) ----------------------

    def snapshot(self) -> dict[str, Any]:
        """The registry as a JSON-able document (``telemetry.json``'s
        ``metrics`` section and the executor's shipping format)."""
        with _LOCK:
            return {
                "counters": {
                    key: counter.value
                    for key, counter in sorted(self._counters.items())
                },
                "gauges": {
                    key: gauge.value
                    for key, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    key: {
                        "buckets": list(hist.buckets),
                        "counts": list(hist.counts),
                        "sum": hist.sum,
                        "count": hist.count,
                        "max": hist.max,
                        "min": hist.min,
                    }
                    for key, hist in sorted(self._histograms.items())
                },
            }

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot (typically a per-task delta from a worker)
        into this registry: counters and histogram buckets add, gauges
        take the incoming value.  Addition is commutative, so merged
        totals do not depend on worker scheduling."""
        for key, value in snap.get("counters", {}).items():
            counter = self._counter_by_key(key)
            counter.inc(value)
        for key, value in snap.get("gauges", {}).items():
            self._gauge_by_key(key).set(value)
        for key, data in snap.get("histograms", {}).items():
            hist = self._histogram_by_key(key, tuple(data["buckets"]))
            if hist.buckets != tuple(data["buckets"]):
                raise ValueError(
                    f"histogram {key!r} bucket bounds differ; fixed "
                    "buckets are what makes histograms mergeable"
                )
            with _LOCK:
                for index, count in enumerate(data["counts"]):
                    hist.counts[index] += count
                hist.sum += data["sum"]
                hist.count += data["count"]
                hist.max = max(hist.max, data["max"])
                if data["min"] is not None:
                    hist.min = (
                        data["min"] if hist.min is None
                        else min(hist.min, data["min"])
                    )

    def _counter_by_key(self, key: str) -> Counter:
        with _LOCK:
            return self._counters.setdefault(key, Counter())

    def _gauge_by_key(self, key: str) -> Gauge:
        with _LOCK:
            return self._gauges.setdefault(key, Gauge())

    def _histogram_by_key(self, key: str,
                          buckets: tuple[float, ...]) -> Histogram:
        with _LOCK:
            return self._histograms.setdefault(key, Histogram(buckets))


def subtract_snapshot(after: Mapping[str, Any],
                      before: Mapping[str, Any]) -> dict[str, Any]:
    """``after - before``, per series: the per-task delta a worker ships
    (series absent from ``before`` pass through whole; unchanged series
    are dropped, keeping the shipped payload minimal)."""
    delta: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    before_counters = before.get("counters", {})
    for key, value in after.get("counters", {}).items():
        changed = value - before_counters.get(key, 0)
        if changed:
            delta["counters"][key] = changed
    before_gauges = before.get("gauges", {})
    for key, value in after.get("gauges", {}).items():
        if key not in before_gauges or before_gauges[key] != value:
            delta["gauges"][key] = value
    before_hists = before.get("histograms", {})
    for key, data in after.get("histograms", {}).items():
        prior = before_hists.get(key)
        if prior is None:
            if data["count"]:
                delta["histograms"][key] = data
            continue
        count = data["count"] - prior["count"]
        if not count:
            continue
        delta["histograms"][key] = {
            "buckets": data["buckets"],
            "counts": [
                now - then
                for now, then in zip(data["counts"], prior["counts"])
            ],
            "sum": data["sum"] - prior["sum"],
            "count": count,
            "max": data["max"],
            "min": data["min"],
        }
    return delta


def summarize_seconds(durations: Iterable[float]) -> dict[str, float]:
    """Latency summary of a duration list through a fixed-bucket
    histogram — the one quantile path every report uses (replacing the
    per-report ad-hoc index arithmetic)."""
    hist = Histogram()
    for value in durations:
        hist.observe(value)
    return hist.summary()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The live process-global registry."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Install a fresh global registry (run isolation for the CLI and
    tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = MetricsRegistry()
    return previous
