"""Low-overhead sampling profiler with span-tagged collapsed stacks.

A background daemon thread wakes at a configurable rate (default
:data:`DEFAULT_PROFILE_HZ`) and samples every *other* thread's Python
stack via ``sys._current_frames()`` — no signals, no
``sys.setprofile``/``settrace`` hooks, so the profiled code runs
unmodified and the disabled path costs nothing at all (the profiler is
simply not running).  Each sample is collapsed to the classic
flamegraph form (``file.py:func;file.py:func ...``, root first) and,
when span tracing is live, prefixed with the active span path
(``span:run/operation/task/operator``) so a flamegraph folds cleanly by
benchmark phase.  Alongside the stacks, every tick records a
:class:`~repro.obs.timeline.ResourceTimeline` sample (CPU, RSS, GC,
snapshot/delta/morsel gauges).

Configuration is parsed in one place, mirroring
``repro.exec.snapshot.SnapshotConfig``: :class:`ProfileConfig` with
:meth:`ProfileConfig.resolved` reading :data:`ENV_PROFILE_HZ`
(``REPRO_PROFILE_HZ``; unset/``0`` disables).  The CLI ``--profile
DIR`` flag and the pool's :func:`ensure_profiling` both go through it.

Crossing the process-pool boundary mirrors the metrics registry:
workers snapshot before a task, :func:`subtract_profile` after it, ship
the delta inside the :class:`~repro.exec.tasks.TaskOutcome`, and the
parent grafts the deltas in submission order
(:meth:`SamplingProfiler.merge`) — so a parallel run's profile is
structure-identical to a serial run's (sample *counts* differ; series
names and shape do not, which is what ``structure_of`` compares).

This module is the one sanctioned ``sys._current_frames`` caller in the
tree — lint rule R5 (``obs-raw-frames``) holds that boundary.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass, replace
from types import FrameType
from typing import Any, Mapping

from repro.obs.spans import tracer
from repro.obs.timeline import ResourceTimeline, subtract_timeline

#: The one environment knob, parsed only by :meth:`ProfileConfig.resolved`.
ENV_PROFILE_HZ = "REPRO_PROFILE_HZ"

#: Sampling rate used when profiling is requested without an explicit
#: rate (a prime, so the sampler cannot phase-lock with periodic work).
DEFAULT_PROFILE_HZ = 97.0

#: Deepest stack kept per sample; frames below the cut are dropped from
#: the root end (the leaf — where time is actually spent — survives).
MAX_STACK_DEPTH = 48


@dataclass(frozen=True)
class ProfileConfig:
    """Profiler settings with one env-parse point, like ``SnapshotConfig``.

    ``hz=None`` means "not configured": :meth:`resolved` fills it from
    :data:`ENV_PROFILE_HZ`, falling back to 0.0 (disabled).  An explicit
    ``hz`` always wins over the environment.
    """

    hz: float | None = None

    def resolved(self) -> "ProfileConfig":
        hz = self.hz
        if hz is None:
            raw = os.environ.get(ENV_PROFILE_HZ, "").strip()
            if raw:
                try:
                    hz = float(raw)
                except ValueError:
                    raise ValueError(
                        f"{ENV_PROFILE_HZ} must be a number (Hz), got {raw!r}"
                    ) from None
            else:
                hz = 0.0
        if hz < 0:
            raise ValueError("profile hz must be >= 0 (0 disables)")
        return replace(self, hz=hz)

    @property
    def enabled(self) -> bool:
        return bool(self.hz)


def _collapse(frame: FrameType | None) -> str:
    """One frame chain as a collapsed stack: root-first, ``;``-joined."""
    parts: list[str] = []
    while frame is not None and len(parts) < MAX_STACK_DEPTH:
        code = frame.f_code
        parts.append(
            f"{os.path.basename(code.co_filename)}:{code.co_name}"
        )
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples all threads' stacks at ``hz`` from a daemon thread."""

    enabled = True

    def __init__(self, hz: float = DEFAULT_PROFILE_HZ,
                 timeline_capacity: int | None = None) -> None:
        if hz <= 0:
            raise ValueError("SamplingProfiler needs hz > 0; use "
                             "NullProfiler for the disabled state")
        self.hz = float(hz)
        #: collapsed stack -> number of times it was sampled.
        self.stacks: dict[str, int] = {}
        #: total sampling ticks taken (denominator for stack shares).
        self.samples = 0
        self.timeline = (
            ResourceTimeline(timeline_capacity)
            if timeline_capacity is not None else ResourceTimeline()
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self.timeline.open()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent; records one final timeline tick)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None
        self.timeline.close()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample()

    # -- sampling ----------------------------------------------------------

    def sample(self) -> None:
        """Take one sample of every other thread (one profiler tick)."""
        me = threading.get_ident()
        names = tuple(
            span.name for span in list(tracer()._stack)
        )
        tag = ("span:" + "/".join(names)) if names else ""
        frames = sys._current_frames()
        with self._lock:
            self.samples += 1
            for ident, frame in frames.items():
                if ident == me:
                    continue
                stack = _collapse(frame)
                if not stack:
                    continue
                if tag:
                    stack = tag + ";" + stack
                self.stacks[stack] = self.stacks.get(stack, 0) + 1
        self.timeline.record()

    # -- snapshot / merge (the cross-process currency) ---------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able form (``telemetry.json``'s ``profile`` section)."""
        with self._lock:
            return {
                "hz": self.hz,
                "samples": self.samples,
                "stacks": dict(self.stacks),
                "timeline": self.timeline.snapshot(),
            }

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a worker's per-task profile delta into this profiler
        (stack counts add; timeline samples are rebased and appended).
        Called in submission order, like the metrics merge."""
        if not delta:
            return
        with self._lock:
            self.samples += int(delta.get("samples", 0))
            for stack, count in delta.get("stacks", {}).items():
                self.stacks[stack] = self.stacks.get(stack, 0) + count
        timeline = delta.get("timeline")
        if timeline:
            self.timeline.merge(timeline)


class NullProfiler(SamplingProfiler):
    """The disabled profiler: no thread, no samples, empty snapshot."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(hz=DEFAULT_PROFILE_HZ)
        self.hz = 0.0

    def start(self) -> "SamplingProfiler":
        return self

    def stop(self) -> None:
        pass

    def sample(self) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}

    def merge(self, delta: Mapping[str, Any]) -> None:
        pass


def subtract_profile(after: Mapping[str, Any],
                     before: Mapping[str, Any]) -> dict[str, Any]:
    """``after - before``: the per-task delta a worker ships (empty dict
    when nothing was sampled — kept falsy so outcomes stay small)."""
    if not after:
        return {}
    stacks: dict[str, int] = {}
    before_stacks = before.get("stacks", {})
    for stack, count in after.get("stacks", {}).items():
        fresh = count - before_stacks.get(stack, 0)
        if fresh:
            stacks[stack] = fresh
    samples = after.get("samples", 0) - before.get("samples", 0)
    timeline = subtract_timeline(
        after.get("timeline", {}), before.get("timeline", {})
    )
    if not samples and not stacks and not timeline:
        return {}
    delta: dict[str, Any] = {
        "hz": after.get("hz"),
        "samples": samples,
        "stacks": stacks,
    }
    if timeline:
        delta["timeline"] = timeline
    return delta


_PROFILER: SamplingProfiler = NullProfiler()


def profiler() -> SamplingProfiler:
    """The live process-global profiler (:class:`NullProfiler` when off)."""
    return _PROFILER


def set_profiler(new: SamplingProfiler) -> SamplingProfiler:
    """Install ``new`` as the global profiler; returns the previous one."""
    global _PROFILER
    previous = _PROFILER
    _PROFILER = new
    return previous


def profiling_enabled() -> bool:
    return _PROFILER.enabled


def enable_profiling(hz: float | None = None) -> SamplingProfiler:
    """Install (and start) a fresh profiler.

    ``hz=None`` resolves the rate from the environment
    (:data:`ENV_PROFILE_HZ`), falling back to :data:`DEFAULT_PROFILE_HZ`
    — an explicit call means profiling *is* wanted, so an unset
    environment does not disable it here.
    """
    if hz is None:
        config = ProfileConfig().resolved()
        hz = config.hz if config.enabled else DEFAULT_PROFILE_HZ
    previous = set_profiler(SamplingProfiler(hz=hz))
    previous.stop()
    return _PROFILER.start()


def disable_profiling() -> None:
    """Stop the profiler (if running) and install a :class:`NullProfiler`."""
    set_profiler(NullProfiler()).stop()


def ensure_profiling() -> SamplingProfiler:
    """Environment-driven enablement: start a profiler if
    :data:`ENV_PROFILE_HZ` asks for one and none is running (the pool
    calls this, so ``REPRO_PROFILE_HZ=97 make bench-smoke`` profiles
    without code changes).  Returns the live profiler either way."""
    if _PROFILER.enabled:
        return _PROFILER
    config = ProfileConfig().resolved()
    if config.enabled:
        return enable_profiling(config.hz)
    return _PROFILER


__all__ = [
    "DEFAULT_PROFILE_HZ",
    "ENV_PROFILE_HZ",
    "MAX_STACK_DEPTH",
    "NullProfiler",
    "ProfileConfig",
    "SamplingProfiler",
    "disable_profiling",
    "enable_profiling",
    "ensure_profiling",
    "profiler",
    "profiling_enabled",
    "set_profiler",
    "subtract_profile",
]
