"""Per-process resource timeline: ring-buffered time series of CPU/RSS/GC.

One :class:`ResourceTimeline` lives inside the sampling profiler
(:mod:`repro.obs.prof`) and records, on every profiler tick, a fixed
set of process-resource series plus a mirror of the registry's
snapshot/delta/morsel gauges:

* ``cpu_seconds`` — cumulative process CPU time (``time.process_time``);
* ``rss_bytes`` — resident set size (``/proc/self/statm``, with a
  ``resource.getrusage`` peak-RSS fallback off Linux);
* ``gc_gen0``/``gc_gen1``/``gc_gen2`` — collector generation counts;
* ``gc_collections_total`` — cumulative collections across generations;
* ``gc_pause_seconds_total`` — cumulative stop-the-world GC pause time,
  measured by a ``gc.callbacks`` hook while the timeline is open;
* every registry series whose name starts with a mirrored prefix
  (``repro_snapshot_``, ``repro_delta_``, ``repro_morsel_``,
  ``repro_frozen_``), so memory-footprint and morsel-dispatch gauges
  line up on the same clock as the profiler's stacks.

Storage is a bounded ring per series (``capacity`` samples; the oldest
fall off, counted in ``dropped``).  Timestamps use the tracer clock
(:func:`repro.obs.spans.now_us`), so timeline samples land on the same
timeline as spans in the Chrome trace, where the exporter renders each
series as a Perfetto counter track.

Crossing the process-pool boundary mirrors the metrics registry's
snapshot algebra: a worker ships :func:`subtract_timeline` deltas per
task, and the parent grafts them in submission order
(:meth:`ResourceTimeline.merge`), rebasing worker timestamps — which
are not comparable with the parent's — onto the end of the parent's
timeline, exactly like :func:`repro.obs.spans.graft_outcomes` does for
spans.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from typing import Any, Mapping

from repro.obs.metrics import _LOCK as _METRICS_LOCK
from repro.obs.metrics import registry
from repro.obs.spans import now_us

#: Series every open timeline records unconditionally on each tick —
#: the scheduling-invariant part of a profile's structure
#: (``structure_of`` keeps exactly these; the mirrored registry gauges
#: appear only once the run has published them).
FIXED_SERIES: tuple[str, ...] = (
    "cpu_seconds",
    "rss_bytes",
    "gc_gen0",
    "gc_gen1",
    "gc_gen2",
    "gc_collections_total",
    "gc_pause_seconds_total",
)

#: Registry series mirrored into the timeline (prefix match on the
#: serialized series key).
MIRRORED_PREFIXES: tuple[str, ...] = (
    "repro_snapshot_",
    "repro_delta_",
    "repro_morsel_",
    "repro_frozen_",
)

#: Default ring capacity per series (~40 s of history at the default
#: 97 Hz profiling rate).
DEFAULT_CAPACITY = 4096

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _rss_bytes() -> float:
    """Resident set size in bytes (0.0 when unreadable)."""
    try:
        with open("/proc/self/statm", "rb") as statm:
            return float(int(statm.read().split()[1]) * _PAGE_SIZE)
    except (OSError, ValueError, IndexError):
        try:
            import resource

            # ru_maxrss is KiB on Linux (peak, not current — best effort).
            return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024)
        except Exception:
            return 0.0


class ResourceTimeline:
    """Ring-buffered per-process resource time series."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("timeline capacity must be >= 1")
        self.capacity = capacity
        #: series name -> list of ``[t_us, value]`` rows, oldest first.
        self._series: dict[str, list[list[float]]] = {}
        #: series name -> total samples ever appended (ring drops do not
        #: decrement; ``total - len(samples)`` = dropped).  This is the
        #: bookkeeping :func:`subtract_timeline` diffs against, the same
        #: role histogram ``count`` plays in the metrics algebra.
        self._total: dict[str, int] = {}
        self._gc_pause_start: float | None = None
        self._gc_pause_total = 0.0
        self._open = False
        #: record() runs on the profiler thread; snapshot()/merge() on
        #: whatever thread drives the pool — one lock keeps the rings
        #: consistent.
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        """Start GC-pause measurement and record the first tick."""
        if not self._open:
            self._open = True
            gc.callbacks.append(self._gc_callback)
        self.record()

    def close(self) -> None:
        """Record a final tick and unhook from the collector."""
        if self._open:
            self.record()
            self._open = False
            try:
                gc.callbacks.remove(self._gc_callback)
            except ValueError:
                pass

    def _gc_callback(self, phase: str, info: Mapping[str, Any]) -> None:
        if phase == "start":
            self._gc_pause_start = time.perf_counter()
        elif phase == "stop" and self._gc_pause_start is not None:
            self._gc_pause_total += time.perf_counter() - self._gc_pause_start
            self._gc_pause_start = None

    # -- sampling ----------------------------------------------------------

    def record(self) -> None:
        """Append one sample to every series (one profiler tick)."""
        stamp = float(now_us())
        gen0, gen1, gen2 = gc.get_count()
        collections = float(sum(s["collections"] for s in gc.get_stats()))
        values: list[tuple[str, float]] = [
            ("cpu_seconds", time.process_time()),
            ("rss_bytes", _rss_bytes()),
            ("gc_gen0", float(gen0)),
            ("gc_gen1", float(gen1)),
            ("gc_gen2", float(gen2)),
            ("gc_collections_total", collections),
            ("gc_pause_seconds_total", self._gc_pause_total),
        ]
        reg = registry()
        with _METRICS_LOCK:
            for key, gauge in reg._gauges.items():
                if key.startswith(MIRRORED_PREFIXES):
                    values.append((key, float(gauge.value)))
            for key, counter in reg._counters.items():
                if key.startswith(MIRRORED_PREFIXES):
                    values.append((key, float(counter.value)))
        with self._lock:
            for name, value in values:
                self._append(name, stamp, value)

    def _append(self, name: str, stamp: float, value: float) -> None:
        rows = self._series.setdefault(name, [])
        rows.append([stamp, value])
        self._total[name] = self._total.get(name, 0) + 1
        if len(rows) > self.capacity:
            del rows[: len(rows) - self.capacity]

    # -- snapshot / merge (the cross-process currency) ---------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able form: per-series samples + append totals."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "series": {
                    name: {
                        "samples": [list(row) for row in rows],
                        "total": self._total.get(name, len(rows)),
                    }
                    for name, rows in sorted(self._series.items())
                },
            }

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Graft a worker's timeline delta onto this timeline.

        Worker clocks are not comparable with the parent's, so incoming
        samples are rebased as one block onto the end of the parent
        timeline (relative spacing inside the delta is preserved) —
        called in submission order, like every other cross-process
        merge, so the result is scheduling-independent in structure.
        """
        series = delta.get("series", {})
        if not series:
            return
        starts = [
            data["samples"][0][0]
            for data in series.values()
            if data.get("samples")
        ]
        if not starts:
            return
        base = min(starts)
        with self._lock:
            cursor = 0.0
            for rows in self._series.values():
                if rows:
                    cursor = max(cursor, rows[-1][0])
            offset = cursor - base
            for name, data in sorted(series.items()):
                for stamp, value in data.get("samples", ()):
                    self._append(name, stamp + offset, value)


def subtract_timeline(after: Mapping[str, Any],
                      before: Mapping[str, Any]) -> dict[str, Any]:
    """``after - before``: the samples appended since ``before`` was
    taken (per series, via the append totals — exact even across ring
    drops).  Series with nothing new are omitted."""
    series: dict[str, Any] = {}
    before_series = before.get("series", {})
    for name, data in after.get("series", {}).items():
        fresh = data.get("total", 0) - before_series.get(name, {}).get("total", 0)
        if fresh <= 0:
            continue
        samples = data.get("samples", [])
        kept = samples[-fresh:] if fresh < len(samples) else samples
        if kept:
            series[name] = {"samples": [list(row) for row in kept],
                            "total": len(kept)}
    return {"series": series} if series else {}


__all__ = [
    "DEFAULT_CAPACITY",
    "FIXED_SERIES",
    "MIRRORED_PREFIXES",
    "ResourceTimeline",
    "subtract_timeline",
]
