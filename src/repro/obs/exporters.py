"""Telemetry exporters: ``telemetry.json``, Chrome trace, Prometheus.

Three machine-readable views of one run's telemetry:

* :func:`telemetry_document` — the versioned ``telemetry.json``
  combining the span tree and the metrics snapshot.  Its *structure*
  (span names/kinds/nesting, metric series names, bucket bounds) is
  deterministic across worker counts; only timing values differ —
  :func:`structure_of` computes exactly that comparable form, and the
  differential tests assert ``structure_of(w1) == structure_of(w4)``.
* :func:`to_chrome_trace` — Chrome trace-event JSON (``traceEvents``
  with complete ``"X"`` events), loadable in Perfetto / ``chrome://tracing``.
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` headers, escaped label values), with
  ``_bucket{le=...}`` series per histogram so p50/p95/p99 are derivable
  by any Prometheus-compatible consumer.
* :func:`to_collapsed` — the profiler's stacks in collapsed-stack text
  (one ``stack count`` line per stack), the input format of
  ``flamegraph.pl`` / speedscope / inferno.

When the sampling profiler is live, :func:`telemetry_document` attaches
its snapshot as a ``profile`` section and :func:`to_chrome_trace`
renders its resource timeline as Perfetto counter tracks (``"C"``
events) alongside the span events.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.prof import profiler
from repro.obs.spans import Tracer, tracer
from repro.obs.timeline import FIXED_SERIES

#: Version stamp of the telemetry.json layout; bump on shape changes.
TELEMETRY_VERSION = 1


def telemetry_document(
    trace: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    configuration: Mapping[str, Any] | None = None,
    profile: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The versioned run-telemetry document (defaults to the globals).

    The ``profile`` section appears only when the sampling profiler is
    enabled (or an explicit ``profile`` mapping is passed) — the
    disabled path adds nothing to the document.
    """
    trace = trace if trace is not None else tracer()
    metrics = metrics if metrics is not None else registry()
    document = {
        "telemetry_version": TELEMETRY_VERSION,
        "configuration": dict(configuration or {}),
        "spans": [span.to_dict() for span in trace.roots],
        "metrics": metrics.snapshot(),
    }
    if profile is None and profiler().enabled:
        profile = profiler().snapshot()
    if profile:
        document["profile"] = dict(profile)
    return document


def _span_structure(span: Mapping[str, Any]) -> list[Any]:
    return [
        span["name"],
        span["kind"],
        [_span_structure(child) for child in span["children"]],
    ]


def structure_of(document: Mapping[str, Any]) -> dict[str, Any]:
    """The scheduling-invariant skeleton of a telemetry document.

    Keeps span names/kinds/tree shape, metric series names and
    histogram bucket bounds; drops every timing- or placement-dependent
    value (timestamps, durations, counts, worker attributes).  Two runs
    of the same workload must agree on this form whatever their worker
    count — the executor's deterministic-merge guarantee, extended from
    results to telemetry.
    """
    metrics = document.get("metrics", {})
    skeleton: dict[str, Any] = {
        "telemetry_version": document.get("telemetry_version"),
        "spans": [_span_structure(span) for span in document.get("spans", ())],
        "counters": sorted(metrics.get("counters", {})),
        "gauges": sorted(metrics.get("gauges", {})),
        "histograms": {
            key: list(data["buckets"])
            for key, data in sorted(metrics.get("histograms", {}).items())
        },
    }
    profile = document.get("profile")
    if profile is not None:
        # Sample counts and stack contents are timing-dependent; the
        # scheduling-invariant part of a profile is its rate and which
        # fixed timeline series were recorded (the mirrored registry
        # gauges appear only when the run publishes them, so they are
        # excluded like other placement-dependent values).
        timeline = profile.get("timeline", {}).get("series", {})
        skeleton["profile"] = {
            "hz": profile.get("hz"),
            "timeline_series": sorted(set(timeline) & set(FIXED_SERIES)),
        }
    return skeleton


# -- Chrome trace-event JSON ------------------------------------------------

#: Span kind -> Chrome trace category (Perfetto's grouping/filter key).
_CATEGORIES = {
    "run": "run",
    "phase": "phase",
    "operation": "operation",
    "task": "task",
    "operator": "operator",
}


def _flatten_events(span: Mapping[str, Any], pid: int,
                    events: list[dict[str, Any]]) -> None:
    tid = int(span["attrs"].get("worker", 0)) + 1
    events.append(
        {
            "name": span["name"],
            "cat": _CATEGORIES.get(span["kind"], span["kind"]),
            "ph": "X",
            "ts": span["start_us"],
            "dur": span["duration_us"],
            "pid": pid,
            "tid": tid,
            "args": dict(span["attrs"]),
        }
    )
    for child in span["children"]:
        _flatten_events(child, pid, events)


def to_chrome_trace(document: Mapping[str, Any]) -> dict[str, Any]:
    """Chrome trace-event JSON for one telemetry document.

    Every span becomes a complete (``"X"``) duration event.  All spans
    share one process; a span's ``worker`` attribute (pool tasks) picks
    its thread lane, so parallel work fans out visually while the
    sequential rebasing done at graft time keeps the timeline readable.
    When the document carries a ``profile`` section, each resource
    timeline series additionally becomes a Perfetto counter track
    (``"C"`` events) under the same process, so CPU/RSS/GC ride the
    same timeline as the spans.
    Load the file in https://ui.perfetto.dev or ``chrome://tracing``.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro benchmark"},
        }
    ]
    for span in document.get("spans", ()):
        _flatten_events(span, 1, events)
    profile = document.get("profile") or {}
    for name, data in sorted(profile.get("timeline", {}).get("series", {}).items()):
        for stamp, value in data.get("samples", ()):
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": stamp,
                    "pid": 1,
                    "tid": 0,
                    "args": {name: value},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- collapsed stacks (flamegraph input) ------------------------------------


def to_collapsed(document: Mapping[str, Any]) -> str:
    """The profile's stacks in collapsed-stack text: one
    ``frame;frame;... count`` line per distinct stack, sorted — feed it
    to ``flamegraph.pl``, speedscope or inferno.  Accepts either a full
    telemetry document or a bare ``profile`` section; returns an empty
    string when there is no profile."""
    profile = document.get("profile", document)
    stacks = profile.get("stacks", {}) if profile else {}
    return "".join(
        f"{stack} {count}\n" for stack, count in sorted(stacks.items())
    )


# -- Prometheus text exposition ---------------------------------------------


def _split_series(key: str) -> tuple[str, str]:
    """``name{labels}`` -> (name, "{labels}" or "")."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def _merge_labels(label_part: str, extra: str) -> str:
    """Insert one extra ``k="v"`` pair into a serialized label set."""
    if not label_part:
        return "{" + extra + "}"
    return label_part[:-1] + "," + extra + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


#: Help strings for the well-known series families; anything else gets
#: the generic fallback (the exposition format wants *a* HELP line per
#: family, not prose for every future series).
_HELP_TEXTS: dict[str, str] = {
    "repro_operation_seconds": "Driver per-operation latency.",
    "repro_query_seconds": "Power-test per-query latency.",
    "repro_task_seconds": "Pool task wall time.",
    "repro_tasks_total": "Pool task outcomes by kind and status.",
    "repro_pool_retries_total": "Pool task retries.",
    "repro_pool_timeouts_total": "Pool task deadline expiries.",
    "repro_pool_crashes_total": "Pool worker crashes.",
    "repro_pool_workers": "Resolved worker count.",
    "repro_cache_hits_total": "CP-6.1 result-cache hits.",
    "repro_cache_misses_total": "CP-6.1 result-cache misses.",
    "repro_cache_evictions_total": "CP-6.1 result-cache evictions.",
    "repro_cache_invalidations_total": "CP-6.1 result-cache invalidations.",
    "repro_frozen_bytes": "Frozen-snapshot footprint per column family.",
    "repro_frozen_freezes_total": "Frozen snapshots built.",
    "repro_frozen_path_total": "Read tasks by snapshot serving path.",
    "repro_delta_rows": "Delta-overlay insert rows outstanding.",
    "repro_delta_tombstones": "Delta-overlay tombstones outstanding.",
    "repro_delta_compactions_total": "Overlay-into-snapshot compactions.",
    "repro_snapshot_bytes_mapped": "Column bytes served zero-copy.",
    "repro_snapshot_attaches_total": "Snapshot attach events.",
    "repro_snapshot_fallback_total": "Mapped-snapshot requests served inline.",
    "repro_morsel_tasks_total": "Scan morsel tasks dispatched per query.",
}

_GENERIC_HELP = "repro benchmark telemetry series (docs/OBSERVABILITY.md)."


def _escape_help(text: str) -> str:
    """HELP text escaping per the exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a metrics snapshot in the text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            help_text = _HELP_TEXTS.get(name, _GENERIC_HELP)
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, _ = _split_series(key)
        type_line(name, "counter")
        lines.append(f"{key} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        name, _ = _split_series(key)
        type_line(name, "gauge")
        lines.append(f"{key} {_format_value(value)}")
    for key, data in snapshot.get("histograms", {}).items():
        name, labels = _split_series(key)
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            series = _merge_labels(labels, f'le="{bound}"')
            lines.append(f"{name}_bucket{series} {cumulative}")
        cumulative += data["counts"][len(data["buckets"])]
        series = _merge_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{series} {cumulative}")
        lines.append(f"{name}_sum{labels} {_format_value(data['sum'])}")
        lines.append(f"{name}_count{labels} {data['count']}")
    return "\n".join(lines) + "\n"


__all__ = [
    "TELEMETRY_VERSION",
    "structure_of",
    "telemetry_document",
    "to_chrome_trace",
    "to_collapsed",
    "to_prometheus",
]
