"""Telemetry exporters: ``telemetry.json``, Chrome trace, Prometheus.

Three machine-readable views of one run's telemetry:

* :func:`telemetry_document` — the versioned ``telemetry.json``
  combining the span tree and the metrics snapshot.  Its *structure*
  (span names/kinds/nesting, metric series names, bucket bounds) is
  deterministic across worker counts; only timing values differ —
  :func:`structure_of` computes exactly that comparable form, and the
  differential tests assert ``structure_of(w1) == structure_of(w4)``.
* :func:`to_chrome_trace` — Chrome trace-event JSON (``traceEvents``
  with complete ``"X"`` events), loadable in Perfetto / ``chrome://tracing``.
* :func:`to_prometheus` — the Prometheus text exposition format, with
  ``_bucket{le=...}`` series per histogram so p50/p95/p99 are derivable
  by any Prometheus-compatible consumer.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.spans import Tracer, tracer

#: Version stamp of the telemetry.json layout; bump on shape changes.
TELEMETRY_VERSION = 1


def telemetry_document(
    trace: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    configuration: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The versioned run-telemetry document (defaults to the globals)."""
    trace = trace if trace is not None else tracer()
    metrics = metrics if metrics is not None else registry()
    return {
        "telemetry_version": TELEMETRY_VERSION,
        "configuration": dict(configuration or {}),
        "spans": [span.to_dict() for span in trace.roots],
        "metrics": metrics.snapshot(),
    }


def _span_structure(span: Mapping[str, Any]) -> list[Any]:
    return [
        span["name"],
        span["kind"],
        [_span_structure(child) for child in span["children"]],
    ]


def structure_of(document: Mapping[str, Any]) -> dict[str, Any]:
    """The scheduling-invariant skeleton of a telemetry document.

    Keeps span names/kinds/tree shape, metric series names and
    histogram bucket bounds; drops every timing- or placement-dependent
    value (timestamps, durations, counts, worker attributes).  Two runs
    of the same workload must agree on this form whatever their worker
    count — the executor's deterministic-merge guarantee, extended from
    results to telemetry.
    """
    metrics = document.get("metrics", {})
    return {
        "telemetry_version": document.get("telemetry_version"),
        "spans": [_span_structure(span) for span in document.get("spans", ())],
        "counters": sorted(metrics.get("counters", {})),
        "gauges": sorted(metrics.get("gauges", {})),
        "histograms": {
            key: list(data["buckets"])
            for key, data in sorted(metrics.get("histograms", {}).items())
        },
    }


# -- Chrome trace-event JSON ------------------------------------------------

#: Span kind -> Chrome trace category (Perfetto's grouping/filter key).
_CATEGORIES = {
    "run": "run",
    "phase": "phase",
    "operation": "operation",
    "task": "task",
    "operator": "operator",
}


def _flatten_events(span: Mapping[str, Any], pid: int,
                    events: list[dict[str, Any]]) -> None:
    tid = int(span["attrs"].get("worker", 0)) + 1
    events.append(
        {
            "name": span["name"],
            "cat": _CATEGORIES.get(span["kind"], span["kind"]),
            "ph": "X",
            "ts": span["start_us"],
            "dur": span["duration_us"],
            "pid": pid,
            "tid": tid,
            "args": dict(span["attrs"]),
        }
    )
    for child in span["children"]:
        _flatten_events(child, pid, events)


def to_chrome_trace(document: Mapping[str, Any]) -> dict[str, Any]:
    """Chrome trace-event JSON for one telemetry document.

    Every span becomes a complete (``"X"``) duration event.  All spans
    share one process; a span's ``worker`` attribute (pool tasks) picks
    its thread lane, so parallel work fans out visually while the
    sequential rebasing done at graft time keeps the timeline readable.
    Load the file in https://ui.perfetto.dev or ``chrome://tracing``.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro benchmark"},
        }
    ]
    for span in document.get("spans", ()):
        _flatten_events(span, 1, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- Prometheus text exposition ---------------------------------------------


def _split_series(key: str) -> tuple[str, str]:
    """``name{labels}`` -> (name, "{labels}" or "")."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def _merge_labels(label_part: str, extra: str) -> str:
    """Insert one extra ``k="v"`` pair into a serialized label set."""
    if not label_part:
        return "{" + extra + "}"
    return label_part[:-1] + "," + extra + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a metrics snapshot in the text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, _ = _split_series(key)
        type_line(name, "counter")
        lines.append(f"{key} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        name, _ = _split_series(key)
        type_line(name, "gauge")
        lines.append(f"{key} {_format_value(value)}")
    for key, data in snapshot.get("histograms", {}).items():
        name, labels = _split_series(key)
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            series = _merge_labels(labels, f'le="{bound}"')
            lines.append(f"{name}_bucket{series} {cumulative}")
        cumulative += data["counts"][len(data["buckets"])]
        series = _merge_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{series} {cumulative}")
        lines.append(f"{name}_sum{labels} {_format_value(data['sum'])}")
        lines.append(f"{name}_count{labels} {data['count']}")
    return "\n".join(lines) + "\n"


__all__ = [
    "TELEMETRY_VERSION",
    "structure_of",
    "telemetry_document",
    "to_chrome_trace",
    "to_prometheus",
]
