"""``repro.obs`` — run telemetry: span tracing, metrics, exporters.

The observability layer the VLDB 2022 analysis methodology presumes:
hierarchical spans (``run → phase → operation → task → operator``)
threaded through the driver, the executor pool and the engine; a
process-global metrics registry of counters/gauges/fixed-bucket latency
histograms; and exporters producing a versioned ``telemetry.json``, a
Perfetto-loadable Chrome trace and a Prometheus text exposition.

Tracing is off by default (:class:`~repro.obs.spans.NullTracer`;
near-zero overhead on every instrumented path) and enabled per run by
the CLI ``--trace`` flag.  The metrics registry is always on.

See ``docs/OBSERVABILITY.md`` for the span model, the metric naming
scheme and how to read the exports.
"""

from repro.obs.exporters import (
    TELEMETRY_VERSION,
    structure_of,
    telemetry_document,
    to_chrome_trace,
    to_collapsed,
    to_prometheus,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
    subtract_snapshot,
    summarize_seconds,
)
from repro.obs.prof import (
    DEFAULT_PROFILE_HZ,
    ENV_PROFILE_HZ,
    NullProfiler,
    ProfileConfig,
    SamplingProfiler,
    disable_profiling,
    enable_profiling,
    ensure_profiling,
    profiler,
    profiling_enabled,
    set_profiler,
    subtract_profile,
)
from repro.obs.spans import (
    SPAN_KINDS,
    NullTracer,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    graft_outcomes,
    set_tracer,
    span,
    synthesize_task_span,
    task_capture,
    tracer,
    tracing_enabled,
)
from repro.obs.timeline import (
    FIXED_SERIES,
    MIRRORED_PREFIXES,
    ResourceTimeline,
    subtract_timeline,
)

__all__ = [
    "DEFAULT_PROFILE_HZ",
    "ENV_PROFILE_HZ",
    "FIXED_SERIES",
    "LATENCY_BUCKETS_SECONDS",
    "MIRRORED_PREFIXES",
    "SPAN_KINDS",
    "TELEMETRY_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullProfiler",
    "NullTracer",
    "ProfileConfig",
    "ResourceTimeline",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "disable_profiling",
    "disable_tracing",
    "enable_profiling",
    "enable_tracing",
    "ensure_profiling",
    "graft_outcomes",
    "profiler",
    "profiling_enabled",
    "registry",
    "reset_registry",
    "set_profiler",
    "set_tracer",
    "span",
    "structure_of",
    "subtract_profile",
    "subtract_snapshot",
    "subtract_timeline",
    "summarize_seconds",
    "synthesize_task_span",
    "task_capture",
    "telemetry_document",
    "to_chrome_trace",
    "to_collapsed",
    "to_prometheus",
    "tracer",
    "tracing_enabled",
]
