"""``repro.obs`` — run telemetry: span tracing, metrics, exporters.

The observability layer the VLDB 2022 analysis methodology presumes:
hierarchical spans (``run → phase → operation → task → operator``)
threaded through the driver, the executor pool and the engine; a
process-global metrics registry of counters/gauges/fixed-bucket latency
histograms; and exporters producing a versioned ``telemetry.json``, a
Perfetto-loadable Chrome trace and a Prometheus text exposition.

Tracing is off by default (:class:`~repro.obs.spans.NullTracer`;
near-zero overhead on every instrumented path) and enabled per run by
the CLI ``--trace`` flag.  The metrics registry is always on.

See ``docs/OBSERVABILITY.md`` for the span model, the metric naming
scheme and how to read the exports.
"""

from repro.obs.exporters import (
    TELEMETRY_VERSION,
    structure_of,
    telemetry_document,
    to_chrome_trace,
    to_prometheus,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
    subtract_snapshot,
    summarize_seconds,
)
from repro.obs.spans import (
    SPAN_KINDS,
    NullTracer,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    graft_outcomes,
    set_tracer,
    span,
    synthesize_task_span,
    task_capture,
    tracer,
    tracing_enabled,
)

__all__ = [
    "LATENCY_BUCKETS_SECONDS",
    "SPAN_KINDS",
    "TELEMETRY_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "graft_outcomes",
    "registry",
    "reset_registry",
    "set_tracer",
    "span",
    "structure_of",
    "subtract_snapshot",
    "summarize_seconds",
    "synthesize_task_span",
    "task_capture",
    "telemetry_document",
    "to_chrome_trace",
    "to_prometheus",
    "tracer",
    "tracing_enabled",
]
