"""Hierarchical span tracing: ``run → phase → operation → task → operator``.

A :class:`Span` is one timed region of a benchmark run; spans nest, and
the tree a run leaves behind is the trace the exporters serialize
(:mod:`repro.obs.exporters`).  Two creation styles exist because the
layers that emit spans have different shapes:

* ``with tracer().span(name, kind=...):`` — strictly nested regions
  (run, phase, operation, pool task).  The context manager pushes the
  span while the block runs, so anything opened inside becomes a child.
* ``tracer().open_span(name, kind="operator")`` — leaf spans for the
  engine's generator operators, which outlive the call that created
  them (a scan's span closes when the *consumer* exhausts or drops the
  generator).  Open spans attach to the current stack top at creation
  and never push, so lazy generators cannot corrupt the nesting of the
  strict layers.  :meth:`Span.close` is idempotent: a generator
  finalized late (by GC, after its task's capture ended) is a no-op.

The module-global tracer defaults to :class:`NullTracer`, whose
``span()`` returns one shared no-op context manager and whose
``enabled`` flag lets hot paths (the engine operators) skip span
construction entirely — with tracing disabled the per-operator cost is
one attribute check.

Clock: span timestamps read ``time.monotonic_ns()`` — the one module
allowed to, under the R1 observability carve-out (file waiver below).
Timestamps are *per-process*: spans captured in worker processes are
rebased onto the parent timeline when grafted (:func:`graft_outcomes`),
laying parallel tasks out sequentially so a parallel run's trace has
exactly the serial run's shape.
"""

# lint: file-allow-wall-clock span timestamps are observability-only: they
# are emitted into traces/telemetry and never feed back into query results,
# scheduling decisions or any other benchmark semantics.

from __future__ import annotations

import time
from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Span kinds, outermost first (the hierarchy the exporters expect).
SPAN_KINDS = ("run", "phase", "operation", "task", "operator")


def now_us() -> int:
    """The tracer clock, in integer microseconds (monotonic, per process).

    Internal to ``repro.obs``: every other layer gets time *into* the
    telemetry through spans and histograms, never by calling the clock
    (rule R5 of ``repro.lint`` holds that boundary).
    """
    return time.monotonic_ns() // 1_000


@dataclass
class Span:
    """One timed, attributed region of a run."""

    name: str
    kind: str
    start_us: int
    attrs: dict[str, Any] = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)
    #: ``None`` while the span is open.
    duration_us: int | None = None

    @property
    def end_us(self) -> int:
        return self.start_us + (self.duration_us or 0)

    def close(self, end_us: int | None = None) -> None:
        """Close the span (idempotent; late double-closes are no-ops)."""
        if self.duration_us is None:
            if end_us is None:
                end_us = now_us()
            self.duration_us = max(0, end_us - self.start_us)

    def shift(self, delta_us: int) -> None:
        """Translate this span and its subtree by ``delta_us``."""
        self.start_us += delta_us
        for child in self.children:
            child.shift(delta_us)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``telemetry.json`` span shape)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start_us": self.start_us,
            "duration_us": self.duration_us or 0,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Collects a span tree for one process (or one captured task)."""

    enabled: bool = True

    def __init__(self) -> None:
        #: Top-level spans (usually exactly one ``run`` span).
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- creation ----------------------------------------------------------

    def open_span(self, name: str, kind: str = "operator",
                  **attrs: Any) -> Span:
        """Create a leaf span under the current stack top, without
        pushing it; the caller closes it (engine operator style)."""
        span = Span(name=name, kind=kind, start_us=now_us(), attrs=attrs)
        self._attach(span)
        return span

    def span(self, name: str, kind: str = "operation",
             **attrs: Any) -> AbstractContextManager[Span | None]:
        """A strictly nested span covering the ``with`` block."""
        return self._span_cm(name, kind, attrs)

    @contextmanager
    def _span_cm(self, name: str, kind: str,
                 attrs: dict[str, Any]) -> Iterator[Span | None]:
        span = Span(name=name, kind=kind, start_us=now_us(), attrs=attrs)
        self._attach(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.close()
            if self._stack and self._stack[-1] is span:
                self._stack.pop()

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- inspection / repair -----------------------------------------------

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the innermost open span, if any."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def finish_open(self) -> None:
        """Force-close every span still on the stack (exception unwind /
        end of a task capture); abandoned generator spans close too when
        they are finalized, idempotently."""
        while self._stack:
            self._stack.pop().close()

    def graft(self, span: Span) -> None:
        """Adopt an already-built span (tree) under the current top."""
        self._attach(span)


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null = _NullSpanContext()

    def open_span(self, name: str, kind: str = "operator",
                  **attrs: Any) -> Span:
        return _NULL_SPAN

    def span(self, name: str, kind: str = "operation",
             **attrs: Any) -> AbstractContextManager[Span | None]:
        return self._null

    def annotate(self, **attrs: Any) -> None:
        pass

    def graft(self, span: Span) -> None:
        pass


class _NullSpanContext(AbstractContextManager["Span | None"]):
    """One shared, reusable no-op context manager (zero allocation per
    ``span()`` call on the disabled path)."""

    def __enter__(self) -> Span | None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


#: Shared closed span handed out by the disabled ``open_span``; closing
#: it again is a no-op, and it is never attached to anything.
_NULL_SPAN = Span(name="", kind="operator", start_us=0, duration_us=0)

_TRACER: Tracer = NullTracer()


def tracer() -> Tracer:
    """The process-global tracer (a :class:`NullTracer` when disabled)."""
    return _TRACER


def set_tracer(new: Tracer) -> Tracer:
    """Install ``new`` as the global tracer; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = new
    return previous


def tracing_enabled() -> bool:
    return _TRACER.enabled


def enable_tracing() -> Tracer:
    """Install (and return) a fresh live tracer."""
    fresh = Tracer()
    set_tracer(fresh)
    return fresh


def disable_tracing() -> None:
    set_tracer(NullTracer())


def span(name: str, kind: str = "operation",
         **attrs: Any) -> AbstractContextManager[Span | None]:
    """``tracer().span(...)`` — the one-liner the execution layers use."""
    return _TRACER.span(name, kind=kind, **attrs)


# -- task capture & grafting (the fork/process boundary) --------------------


@contextmanager
def task_capture(name: str, **attrs: Any) -> Iterator[list[Span]]:
    """Capture the spans of one pool task into a detached tree.

    Swaps a fresh :class:`Tracer` in for the duration of the block and
    yields a list that, at exit, holds the task's root span (with
    everything the task opened nested beneath it).  The executor ships
    that list across the process boundary inside the
    :class:`~repro.exec.tasks.TaskOutcome`; :func:`graft_outcomes`
    merges it back into the parent trace deterministically.
    """
    local = Tracer()
    previous = set_tracer(local)
    collected: list[Span] = []
    root = Span(name=name, kind="task", start_us=now_us(), attrs=attrs)
    local.roots.append(root)
    local._stack.append(root)
    try:
        yield collected
    finally:
        local.finish_open()
        set_tracer(previous)
        collected.extend(local.roots)


def synthesize_task_span(name: str, duration_us: int,
                         **attrs: Any) -> Span:
    """A task span built from outcome bookkeeping alone — what the
    thread backend (which cannot capture safely) grafts instead."""
    return Span(
        name=name, kind="task", start_us=0, attrs=attrs,
        duration_us=max(0, duration_us),
    )


def graft_outcomes(name: str, task_spans: list[list[Span]],
                   kind: str = "operation", **attrs: Any) -> Span | None:
    """Merge per-task span trees under one new ``operation`` span.

    ``task_spans`` is one list per task, in submission order (each as
    captured by :func:`task_capture`, possibly in another process).
    Every tree is rebased onto the parent timeline and the tasks are
    laid out sequentially — worker-process clocks are not comparable
    with the parent's, and the sequential layout makes a parallel run's
    trace identical in shape (and layout) to a serial run's.

    Returns the new span (attached to the current trace), or ``None``
    when tracing is disabled.
    """
    trace = _TRACER
    if not trace.enabled:
        return None
    parent = trace.current()
    if parent is not None and parent.children:
        cursor = parent.children[-1].end_us
    elif parent is not None:
        cursor = parent.start_us
    else:
        cursor = now_us()
    operation = Span(name=name, kind=kind, start_us=cursor, attrs=attrs)
    total = 0
    for spans in task_spans:
        for task_span in spans:
            task_span.close()  # defensive: grafted trees must be closed
            task_span.shift(cursor + total - task_span.start_us)
            operation.children.append(task_span)
            total += task_span.duration_us or 0
    operation.duration_us = total
    trace.graft(operation)
    return operation
