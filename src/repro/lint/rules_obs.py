"""R5 — observability discipline.

:mod:`repro.obs` exists so telemetry never contaminates benchmark
semantics, which only holds if the instrumentation stays in the layers
built for it.  Two leaks this rule closes:

* query modules importing :mod:`repro.obs` (slug ``obs-in-queries``) —
  queries are pure graph -> rows functions; their operator spans come
  from the engine and their latency histograms from the driver, so an
  in-query ``span()`` would double-count time and make the reference
  implementations diverge from the spec's declarative text;
* code outside ``repro/obs/`` calling ``now_us()`` — the tracer's
  internal clock — directly (slug ``obs-raw-clock``).  Every other
  layer gets time *into* the telemetry by opening spans, which
  timestamp themselves; a raw ``now_us()`` read is a wall-clock read
  wearing an observability badge, exactly what R1 forbids;
* code anywhere except the sampling profiler (``repro/obs/prof.py``)
  calling ``sys._current_frames()``, ``sys.setprofile()`` or
  ``sys.settrace()`` (slug ``obs-raw-frames``).  A second frame
  inspector would race the profiler's sampling thread and a
  ``setprofile``/``settrace`` hook slows every bytecode dispatch —
  exactly the measurement contamination the sampling design avoids.
  This check applies *inside* ``repro/obs/`` too: the profiler module
  is the single sanctioned user.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext
from repro.lint.diagnostics import Diagnostic

RULE = "R5"

_OBS_PACKAGE = "repro.obs"


def _is_obs_module(name: str | None) -> bool:
    return name is not None and (
        name == _OBS_PACKAGE or name.startswith(_OBS_PACKAGE + ".")
    )


#: Frame-inspection entry points only the sampling profiler may call.
_RAW_FRAME_FUNCS = frozenset({"_current_frames", "setprofile", "settrace"})


def check_obs_discipline(ctx: FileContext) -> list[Diagnostic]:
    """Keep instrumentation out of queries and the raw clock in obs."""
    found: list[Diagnostic] = []
    if ctx.module_parts[-2:] != ("obs", "prof.py"):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name in _RAW_FRAME_FUNCS:
                found.append(
                    ctx.diagnostic(
                        node, RULE, "obs-raw-frames",
                        f"{name}() belongs to the sampling profiler "
                        "(repro/obs/prof.py); a second frame inspector "
                        "races its sampling thread and a profile/trace "
                        "hook taxes every call the profiler is built "
                        "not to",
                    )
                )
    if ctx.in_obs:
        return found
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            if ctx.in_queries and any(
                _is_obs_module(alias.name) for alias in node.names
            ):
                found.append(
                    ctx.diagnostic(
                        node, RULE, "obs-in-queries",
                        "query modules must not import repro.obs; operator "
                        "spans come from the engine and query latency from "
                        "the driver",
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            if ctx.in_queries and _is_obs_module(node.module):
                found.append(
                    ctx.diagnostic(
                        node, RULE, "obs-in-queries",
                        "query modules must not import repro.obs; operator "
                        "spans come from the engine and query latency from "
                        "the driver",
                    )
                )
            elif _is_obs_module(node.module) and any(
                alias.name == "now_us" for alias in node.names
            ):
                found.append(
                    ctx.diagnostic(
                        node, RULE, "obs-raw-clock",
                        "now_us() is the tracer's internal clock; open a "
                        "span (repro.obs span()/open_span()) instead of "
                        "reading it directly",
                    )
                )
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name == "now_us":
                found.append(
                    ctx.diagnostic(
                        node, RULE, "obs-raw-clock",
                        "now_us() is the tracer's internal clock; open a "
                        "span (repro.obs span()/open_span()) instead of "
                        "reading it directly",
                    )
                )
    return found
