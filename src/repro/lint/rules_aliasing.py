"""R6 — snapshot-aliasing discipline in ``repro/graph/``.

``FrozenGraph.__init__`` adopts the live store's ``__dict__`` wholesale
and ``OverlaidGraph`` adopts the base snapshot's, so every entity table,
relation list and secondary index is shared *by reference* across the
live store and all of its frozen/overlay views.  Two things must
therefore never happen outside construction:

* ``table-rebind`` — a graph-view class (or helper function) rebinding
  an aliased table/column attribute (``self.likes_edges = [...]``,
  ``rows = rows + [x]`` then written back, a ``list(...)``/slice copy
  assigned over the attribute).  The views keep the *old* object and
  silently fork from the live store.  In-place mutation (``append``,
  ``del``, swap-remove, ``+=``) is the sanctioned write path.
* ``frozen-mutation`` — a frozen/overlay view mutating an adopted base
  column or table (directly or through a local alias): snapshots are
  immutable after construction; writes go to the live store and reach
  readers through the delta overlay.

The rule is flow-sensitive (see :mod:`repro.lint.flow`): a write-back of
the *same* object (``rows = self.likes_edges; rows.remove(x);
self.likes_edges = rows``) is allowed, and construction contexts are
exempt — methods reachable only from ``__init__`` (freeze-time column
builders) and alternate constructors that build a fresh instance via
``cls.__new__(cls)`` (the snapshot attach/rebuild paths), since the
instance they populate has no other view aliasing it yet.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow import (
    AliasAnalysis,
    Classifier,
    Env,
    FunctionNode,
    UNKNOWN,
    Values,
    class_methods,
    constructor_only_methods,
    module_functions,
)
from repro.lint.spec import (
    FROZEN_COLUMN_FAMILIES,
    FROZEN_VIEW_CLASSES,
    GRAPH_VIEW_CLASSES,
    RAW_STORE_COLLECTIONS,
)

RULE = "R6"

#: Attributes aliased across every view regardless of class body.
_ALIASED_BASE: frozenset[str] = RAW_STORE_COLLECTIONS | FROZEN_COLUMN_FAMILIES

#: Container constructors whose result in ``__init__`` becomes an
#: aliased attribute (position maps, secondary indexes, hook lists).
_CONTAINER_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "array"}
)

#: In-place container mutators — the *allowed* write path on the live
#: store, and exactly what frozen views must never call on adopted state.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "update", "setdefault", "add", "discard",
        "sort", "reverse",
    }
)

_FRESH: Values = frozenset({"fresh"})
_FRESH_CALLS = frozenset(
    {"list", "dict", "set", "tuple", "sorted", "frozenset", "filter", "copy"}
)


def _attr_token(name: str) -> str:
    return f"attr:{name}"


def _alias_classifier() -> Classifier:
    """Expression classifier for the aliasing domain.

    Container displays, comprehensions, ``list(...)``-style copies,
    ``+`` concatenation and slice copies are *fresh* objects; attribute
    reads are the attribute's alias token; names look up the flow
    environment.
    """

    def classify(expr: ast.expr, env: Env) -> Values:
        if isinstance(expr, ast.Attribute):
            return frozenset({_attr_token(expr.attr)})
        if isinstance(expr, ast.Name):
            return env.get(expr.id, UNKNOWN)
        if isinstance(
            expr,
            (
                ast.List, ast.Dict, ast.Set, ast.Tuple,
                ast.ListComp, ast.DictComp, ast.SetComp, ast.GeneratorExp,
            ),
        ):
            return _FRESH
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in _FRESH_CALLS:
                return _FRESH
            if isinstance(func, ast.Attribute) and func.attr == "copy":
                return _FRESH
            return UNKNOWN
        if isinstance(expr, ast.BinOp):
            return _FRESH  # ``rows + [x]`` allocates a new container
        if isinstance(expr, ast.Subscript):
            if isinstance(expr.slice, ast.Slice):
                return _FRESH  # ``rows[:]`` is a copy
            return UNKNOWN
        if isinstance(expr, ast.IfExp):
            return classify(expr.body, env) | classify(expr.orelse, env)
        if isinstance(expr, ast.BoolOp):
            values: Values = frozenset()
            for value in expr.values:
                values |= classify(value, env)
            return values
        if isinstance(expr, ast.NamedExpr):
            return classify(expr.value, env)
        return UNKNOWN

    return classify


def _is_view_class(cls: ast.ClassDef, names: frozenset[str]) -> bool:
    if cls.name in names:
        return True
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id in names:
            return True
        if isinstance(base, ast.Attribute) and base.attr in names:
            return True
    return False


def _ctor_container_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.X`` attributes bound to containers in ``__init__`` —
    aliased by any view that adopts this instance's ``__dict__``."""
    init = class_methods(cls).get("__init__")
    if init is None:
        return set()
    attrs: set[str] = set()
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not _is_container_expr(value):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


def _alternate_constructors(cls: ast.ClassDef) -> set[str]:
    """Methods that build a fresh instance via ``cls.__new__(cls)`` —
    alternate constructors such as the snapshot attach/rebuild
    classmethods.  Like ``__init__`` they assign columns on an instance
    no other view aliases yet, so rebind checks do not apply."""
    names: set[str] = set()
    for name, func in class_methods(cls).items():
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__new__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "cls"
            ):
                names.add(name)
                break
    return names


def _is_container_expr(expr: ast.expr) -> bool:
    if isinstance(
        expr,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _CONTAINER_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _CONTAINER_CALLS:
            return True
    return False


def check_snapshot_aliasing(context: FileContext) -> list[Diagnostic]:
    """R6: aliased tables are mutated in place, never rebound; frozen
    views never mutate adopted base columns."""
    if not context.in_graph:
        return []
    found: list[Diagnostic] = []
    classify = _alias_classifier()
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_view_class(node, GRAPH_VIEW_CLASSES):
            continue
        aliased = frozenset(_ALIASED_BASE | _ctor_container_attrs(node))
        frozen_view = _is_view_class(node, FROZEN_VIEW_CLASSES)
        exempt = (
            constructor_only_methods(node)
            | _alternate_constructors(node)
            | {"__init__"}
        )
        for name, method in class_methods(node).items():
            if name in exempt:
                continue
            found.extend(
                _scan_function(context, method, classify, aliased, frozen_view)
            )
    for func in module_functions(context.tree).values():
        found.extend(
            _scan_function(context, func, classify, _ALIASED_BASE, False)
        )
    return found


def _scan_function(
    context: FileContext,
    func: FunctionNode,
    classify: Classifier,
    aliased: frozenset[str],
    frozen_view: bool,
) -> Iterator[Diagnostic]:
    analysis = AliasAnalysis(func, classify)
    aliased_tokens = frozenset(_attr_token(name) for name in aliased)
    for stmt in analysis.cfg.statements():
        env = analysis.env_before.get(stmt, {})
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                yield from _check_rebind(
                    context, target, stmt.value, env, classify, aliased
                )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            yield from _check_rebind(
                context, stmt.target, stmt.value, env, classify, aliased
            )
        elif (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "setattr"
            and len(stmt.value.args) >= 2
            and isinstance(stmt.value.args[1], ast.Constant)
            and stmt.value.args[1].value in aliased
        ):
            yield context.diagnostic(
                stmt,
                RULE,
                "table-rebind",
                f"setattr rebinds aliased table "
                f"{stmt.value.args[1].value!r}; frozen/overlay views share "
                "it by reference — mutate it in place instead",
            )
        if frozen_view:
            yield from _check_frozen_mutation(
                context, stmt, env, classify, aliased_tokens
            )


def _check_rebind(
    context: FileContext,
    target: ast.expr,
    value: ast.expr,
    env: Env,
    classify: Classifier,
    aliased: frozenset[str],
) -> Iterator[Diagnostic]:
    if isinstance(target, (ast.Tuple, ast.List)):
        pairwise = (
            isinstance(value, (ast.Tuple, ast.List))
            and len(value.elts) == len(target.elts)
            and not any(isinstance(e, ast.Starred) for e in target.elts)
        )
        for position, element in enumerate(target.elts):
            if pairwise:
                assert isinstance(value, (ast.Tuple, ast.List))
                yield from _check_rebind(
                    context, element, value.elts[position], env, classify,
                    aliased,
                )
            else:
                yield from _flag_if_aliased(context, element, aliased)
        return
    if not isinstance(target, ast.Attribute) or target.attr not in aliased:
        return
    values = classify(value, env)
    if values and values <= {_attr_token(target.attr)}:
        return  # write-back of the very object the attribute holds
    yield context.diagnostic(
        target,
        RULE,
        "table-rebind",
        f"rebinds aliased table '{target.attr}' "
        "(frozen/overlay views share it by reference); mutate it in "
        "place — append/del/swap-remove — instead of assigning a new "
        "container",
    )


def _flag_if_aliased(
    context: FileContext, target: ast.expr, aliased: frozenset[str]
) -> Iterator[Diagnostic]:
    """Unpacking with no per-element value: any aliased attr target is a
    rebind (the unpacked value cannot be the attribute's own object)."""
    if isinstance(target, ast.Attribute) and target.attr in aliased:
        yield context.diagnostic(
            target,
            RULE,
            "table-rebind",
            f"rebinds aliased table '{target.attr}' via unpacking; "
            "frozen/overlay views share it by reference — mutate it in "
            "place instead",
        )


def _check_frozen_mutation(
    context: FileContext,
    stmt: ast.AST,
    env: Env,
    classify: Classifier,
    aliased_tokens: frozenset[str],
) -> Iterator[Diagnostic]:
    def touches(expr: ast.expr) -> str | None:
        values = classify(expr, env)
        hit = values & aliased_tokens
        if hit:
            return sorted(hit)[0].removeprefix("attr:")
        return None

    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr in _MUTATOR_METHODS
    ):
        name = touches(stmt.value.func.value)
        if name is not None:
            yield context.diagnostic(
                stmt,
                RULE,
                "frozen-mutation",
                f"calls .{stmt.value.func.attr}() on adopted column "
                f"'{name}' in a frozen view; snapshots are immutable "
                "after construction — write to the live store and let "
                "the delta overlay carry it",
            )
        return
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        if isinstance(target, ast.Subscript):
            name = touches(target.value)
            if name is not None:
                yield context.diagnostic(
                    target,
                    RULE,
                    "frozen-mutation",
                    f"writes through adopted column '{name}' in a frozen "
                    "view; snapshots are immutable after construction",
                )
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            target, ast.Attribute
        ):
            token = _attr_token(target.attr)
            if token in aliased_tokens:
                yield context.diagnostic(
                    target,
                    RULE,
                    "frozen-mutation",
                    f"augments adopted column '{target.attr}' in a frozen "
                    "view; snapshots are immutable after construction",
                )
