"""CLI: ``python -m repro.lint <path>... [--format {text,github}]``.

Exit codes: 0 clean, 1 violations found, 2 usage error (bad flag,
nonexistent path).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.checker import lint_paths
from repro.lint.diagnostics import format_diagnostic


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based benchmark-invariant checker: determinism (R1), "
            "engine discipline (R2), query contracts (R3), "
            "total-order sorts (R4)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="Python files or directory trees to check",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="diagnostic format (github = workflow annotations)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors and 0 on --help; keep both.
        return int(exit_.code or 0)
    try:
        diagnostics = lint_paths(args.paths)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for diag in diagnostics:
        print(format_diagnostic(diag, args.format))
    if diagnostics:
        print(
            f"{len(diagnostics)} violation(s) found", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
