"""CLI: ``python -m repro.lint <path>... [options]``.

Options: ``--format {text,github}`` (github = workflow annotations),
``--select R6,R7`` (run only the named rule families), and
``--audit-suppressions`` (report waivers that no longer suppress any
diagnostic instead of linting).

Exit codes: 0 clean, 1 violations (or dead waivers) found, 2 usage
error (bad flag, unknown family, nonexistent path).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.checker import audit_paths, lint_paths
from repro.lint.diagnostics import format_diagnostic
from repro.lint.rules import ALL_RULES, RULES_BY_FAMILY, rules_for


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST/dataflow benchmark-invariant checker: determinism (R1), "
            "engine discipline (R2), query contracts (R3), "
            "total-order sorts (R4), observability discipline (R5), "
            "snapshot-aliasing discipline (R6), fork/worker safety (R7)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="Python files or directory trees to check",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="diagnostic format (github = workflow annotations)",
    )
    parser.add_argument(
        "--select",
        metavar="FAMILIES",
        default=None,
        help=(
            "comma-separated rule families to run "
            f"(of: {', '.join(sorted(RULES_BY_FAMILY))}); default all"
        ),
    )
    parser.add_argument(
        "--audit-suppressions",
        action="store_true",
        help=(
            "audit the waiver inventory: report '# lint: allow-*' "
            "comments that no longer suppress any diagnostic"
        ),
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors and 0 on --help; keep both.
        return int(exit_.code or 0)
    rules = ALL_RULES
    if args.select is not None:
        families = [part.strip() for part in args.select.split(",") if part.strip()]
        try:
            rules = rules_for(families)
        except KeyError as error:
            print(f"error: unknown rule family {error}", file=sys.stderr)
            return 2
    runner = audit_paths if args.audit_suppressions else lint_paths
    try:
        diagnostics = runner(args.paths, rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for diag in diagnostics:
        print(format_diagnostic(diag, args.format))
    if diagnostics:
        noun = "dead waiver(s)" if args.audit_suppressions else "violation(s)"
        print(f"{len(diagnostics)} {noun} found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
