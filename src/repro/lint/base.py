"""Shared lint infrastructure: per-file context and the rule protocol.

Every rule is a callable over one :class:`FileContext` — a parsed module
with its path classification, parent links and suppression index.  The
checker builds the context once per file and hands it to each rule, so
the file is read and parsed exactly once however many rules run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.suppressions import SuppressionIndex, parse_suppressions

#: A rule: FileContext -> diagnostics (pre-suppression).
Rule = Callable[["FileContext"], "list[Diagnostic]"]


@dataclass
class FileContext:
    """One parsed source file plus everything rules need to inspect it."""

    path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    #: Path components from the last ``repro`` segment on (exclusive),
    #: e.g. ``("queries", "bi", "q04.py")`` — how rules decide whether
    #: they apply to this file.
    module_parts: tuple[str, ...]
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @property
    def in_queries(self) -> bool:
        return "queries" in self.module_parts[:-1]

    @property
    def in_obs(self) -> bool:
        """Inside :mod:`repro.obs` — the one module allowed to read the
        clock wholesale (its timestamps never enter benchmark results)."""
        return "obs" in self.module_parts[:-1]

    @property
    def in_graph(self) -> bool:
        """Inside :mod:`repro.graph` — where the snapshot-aliasing
        discipline (R6) applies to store/frozen/delta code."""
        return "graph" in self.module_parts[:-1]

    @property
    def in_exec(self) -> bool:
        """Inside :mod:`repro.exec` — task runners and the worker pool,
        where the fork-safety rules (R7) apply in full."""
        return "exec" in self.module_parts[:-1]

    @property
    def in_driver(self) -> bool:
        """Inside :mod:`repro.driver` — pool-submission call sites R7
        checks for live-store capture."""
        return "driver" in self.module_parts[:-1]

    @property
    def is_rng_module(self) -> bool:
        return self.module_parts[-2:] == ("util", "rng.py")

    def parent(self, node: ast.AST) -> ast.AST | None:
        if not self._parents:
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)

    def diagnostic(
        self, node: ast.AST, rule: str, slug: str, message: str
    ) -> Diagnostic:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Diagnostic(
            path=self.path,
            line=line,
            col=col,
            rule=rule,
            slug=slug,
            message=message,
        )


def make_context(path: str, source: str) -> FileContext | Diagnostic:
    """Parse a file into a context, or a syntax-error diagnostic."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return Diagnostic(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 0) or 1,
            rule="R0",
            slug="syntax-error",
            message=f"file does not parse: {error.msg}",
        )
    parts = _pure_parts(path)
    if "repro" in parts:
        module_parts = parts[len(parts) - parts[::-1].index("repro"):]
    else:
        module_parts = parts
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(path, source),
        module_parts=module_parts,
    )


def _pure_parts(path: str) -> tuple[str, ...]:
    return tuple(part for part in path.replace("\\", "/").split("/") if part)


def walk_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    yield from ast.walk(tree)
