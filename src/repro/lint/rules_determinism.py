"""R1 — determinism.

The spec (section 2.3.3) requires the whole pipeline to be deterministic
regardless of parallelism; the in-depth SNB benchmarking study traces
most cross-system result mismatches to exactly the two leaks this rule
closes:

* wall-clock reads (``datetime.now()``, ``time.time()``, and the
  scheduler clocks ``time.monotonic()`` / ``time.monotonic_ns()``) and
  stdlib ``random`` — every random decision must flow through the
  labelled streams of :mod:`repro.util.rng` (slugs ``wall-clock``,
  ``raw-random``).  Worker-pool code that legitimately needs a deadline
  clock is not exempted wholesale: each read carries a reasoned
  ``# lint: allow-wall-clock <why>`` suppression stating that the value
  never reaches benchmark results.  The *file-wide* form of that waiver
  is reserved for :mod:`repro.obs` (the tracer clock is the module's
  whole purpose); anywhere else it is flagged as
  ``filewide-clock-waiver`` so a blanket waiver cannot silently creep
  into executor or driver code;
* result lists built directly from iterating an unordered collection
  (a ``set`` or dict view) with no intervening ``sorted()`` / ``top_k``
  — the rows would depend on hash seeding or insertion accidents
  (slug ``unordered-return``, query modules only, heuristic: only
  directly returned comprehensions are examined).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext
from repro.lint.diagnostics import Diagnostic

RULE = "R1"

#: Zero-argument "current moment" constructors on datetime/date objects.
_CLOCK_ATTRS = frozenset({"now", "utcnow", "today"})
#: Receivers those attributes are temporal on (module aliases included).
_TEMPORAL_RECEIVERS = frozenset({"datetime", "date", "_dt"})
#: Wall-clock functions of the ``time`` module.  ``monotonic`` /
#: ``monotonic_ns`` are listed because scheduler deadlines read them;
#: executor code must justify each read with a reasoned suppression
#: (``time.perf_counter()`` stays allowed for latency measurement).
_TIME_FUNCS = frozenset(
    {"time", "time_ns", "localtime", "monotonic", "monotonic_ns"}
)


def _receiver_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def check_clock_and_random(ctx: FileContext) -> list[Diagnostic]:
    """Forbid wall-clock reads and stdlib ``random`` outside the RNG hub."""
    if ctx.is_rng_module:
        return []
    found: list[Diagnostic] = []
    # A file-wide wall-clock waiver is one reasoned module-level
    # exemption, and repro/obs/ is the one module entitled to it.  The
    # diagnostic carries its own slug so the waiver under audit cannot
    # suppress the report about itself.
    if "wall-clock" in ctx.suppressions.filewide and not ctx.in_obs:
        waiver_line = ctx.suppressions.filewide_lines.get("wall-clock", 1)
        found.append(
            Diagnostic(
                path=ctx.path,
                line=waiver_line,
                col=1,
                rule=RULE,
                slug="filewide-clock-waiver",
                message=(
                    "file-wide allow-wall-clock waivers are reserved for "
                    "repro/obs/; justify each clock read with a per-line "
                    "'# lint: allow-wall-clock <why>' instead"
                ),
            )
        )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    found.append(
                        ctx.diagnostic(
                            node, RULE, "raw-random",
                            "stdlib random imported; draw from the labelled "
                            "streams of repro.util.rng instead",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                found.append(
                    ctx.diagnostic(
                        node, RULE, "raw-random",
                        "stdlib random imported; draw from the labelled "
                        "streams of repro.util.rng instead",
                    )
                )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            receiver = _receiver_name(node.func.value)
            if receiver == "random":
                found.append(
                    ctx.diagnostic(
                        node, RULE, "raw-random",
                        f"random.{node.func.attr}() is unseeded; use "
                        "repro.util.rng.DeterministicRng",
                    )
                )
            elif (
                node.func.attr in _CLOCK_ATTRS
                and receiver in _TEMPORAL_RECEIVERS
            ):
                found.append(
                    ctx.diagnostic(
                        node, RULE, "wall-clock",
                        f"{receiver}.{node.func.attr}() reads the wall "
                        "clock; benchmark time must come from the dataset",
                    )
                )
            elif receiver == "time" and node.func.attr in _TIME_FUNCS:
                found.append(
                    ctx.diagnostic(
                        node, RULE, "wall-clock",
                        f"time.{node.func.attr}() reads the wall clock; "
                        "use time.perf_counter() for latency measurement "
                        "and dataset timestamps for semantics",
                    )
                )
    return found


def _is_unordered_source(node: ast.expr) -> bool:
    """Syntactically a set or dict-view expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set", "frozenset"
        ):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "values", "keys", "items"
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_unordered_source(node.left) or _is_unordered_source(
            node.right
        )
    return False


def _is_ordering_call(node: ast.AST) -> bool:
    """A call that imposes a total order on its input."""
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name) and node.func.id in (
        "sorted", "top_k"
    ):
        return True
    # TopK accumulators surface rows through .result().
    return isinstance(node.func, ast.Attribute) and node.func.attr == "result"


def _unordered_comprehensions(node: ast.AST) -> Iterator[ast.AST]:
    """Comprehensions over unordered sources, skipping ordered subtrees."""
    if _is_ordering_call(node):
        return
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        if node.generators and _is_unordered_source(node.generators[0].iter):
            yield node
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple")
        and node.args
        and _is_unordered_source(node.args[0])
    ):
        yield node
    for child in ast.iter_child_nodes(node):
        yield from _unordered_comprehensions(child)


def check_unordered_return(ctx: FileContext) -> list[Diagnostic]:
    """Flag result lists materialized straight off an unordered source."""
    if not ctx.in_queries:
        return []
    found: list[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        for offender in _unordered_comprehensions(node.value):
            found.append(
                ctx.diagnostic(
                    offender, RULE, "unordered-return",
                    "returned rows iterate an unordered set/dict view "
                    "with no sorted()/top_k step; the row order would "
                    "depend on hash seeding",
                )
            )
    return found
