"""R3 — query contracts.

Every BI/IC read query carries machine-readable metadata — an ``INFO``
descriptor (number, choke points, result limit), a ``NamedTuple`` row
type and an entry point whose signature mirrors the curated parameter
files.  The driver, the parameter curation and the Table A.1 coverage
matrix all trust that metadata, so this rule checks each declaration
against the spec transcriptions in :mod:`repro.lint.spec`:

* ``INFO`` exists, its number matches the filename, every choke-point
  id resolves in Appendix A, and ``limit`` equals the spec's table;
* a ``Bi<N>Row`` / ``Ic<N>Row`` ``NamedTuple`` exists;
* the ``bi<N>`` / ``ic<N>`` entry point takes ``graph`` plus the
  snake_case forms of the spec's camelCase parameter names, in order.

Everything is read from the AST — the module under scrutiny is never
imported.  Slug: ``query-contract``.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.spec import (
    SPEC_BI_LIMITS,
    SPEC_BI_PARAMS,
    SPEC_IC_LIMITS,
    SPEC_IC_PARAMS,
    VALID_CHOKE_POINTS,
    camel_to_snake,
)

RULE = "R3"
SLUG = "query-contract"

_BI_FILE_RE = re.compile(r"q(\d+)\.py")
_IC_INFO_RE = re.compile(r"IC(\d+)_INFO")


def check_query_contracts(ctx: FileContext) -> list[Diagnostic]:
    parts = ctx.module_parts
    if len(parts) < 3 or parts[0] != "queries":
        return []
    if parts[1] == "bi":
        match = _BI_FILE_RE.fullmatch(parts[-1])
        if match is not None:
            return _check_bi_module(ctx, int(match.group(1)))
    if parts[1] == "interactive" and parts[-1].startswith("complex_part"):
        return _check_ic_module(ctx)
    return []


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def _top_level_assign(tree: ast.Module, name: str) -> ast.Call | None:
    """The RHS call of ``<name> = SomeInfo(...)`` at module level."""
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name) and target.id == name:
            if isinstance(node.value, ast.Call):
                return node.value
    return None


def _call_argument(
    call: ast.Call, position: int, keyword: str
) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if 0 <= position < len(call.args):
        return call.args[position]
    return None


def _constant(node: ast.expr | None) -> object:
    if isinstance(node, ast.Constant):
        return node.value
    return _MISSING


_MISSING = object()


def _has_namedtuple_class(tree: ast.Module, name: str) -> bool:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            for base in node.bases:
                base_name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr if isinstance(base, ast.Attribute) else ""
                )
                if base_name == "NamedTuple":
                    return True
    return False


def _function_def(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _check_choke_points(
    ctx: FileContext, info: ast.Call, label: str, position: int
) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    cps = _call_argument(info, position, "choke_points")
    if not isinstance(cps, ast.Tuple):
        found.append(
            ctx.diagnostic(
                info, RULE, SLUG,
                f"{label}: choke_points must be a literal tuple of "
                "Appendix A identifiers",
            )
        )
        return found
    for element in cps.elts:
        value = _constant(element)
        if value not in VALID_CHOKE_POINTS:
            found.append(
                ctx.diagnostic(
                    element, RULE, SLUG,
                    f"{label}: choke point {value!r} does not resolve in "
                    "Appendix A (repro.analysis.chokepoints)",
                )
            )
    return found


def _check_entry_point(
    ctx: FileContext,
    tree: ast.Module,
    label: str,
    func_name: str,
    spec_params: tuple[str, ...],
) -> list[Diagnostic]:
    func = _function_def(tree, func_name)
    if func is None:
        return [
            ctx.diagnostic(
                tree, RULE, SLUG,
                f"{label}: entry point '{func_name}' not found at module "
                "level",
            )
        ]
    actual = [arg.arg for arg in func.args.args]
    expected = ["graph"] + [camel_to_snake(p) for p in spec_params]
    # Trailing implementation knobs are fine iff they carry defaults —
    # the driver binds only the curated parameters.
    extras = len(actual) - len(expected)
    if actual[: len(expected)] != expected or (
        extras > len(func.args.defaults)
    ):
        return [
            ctx.diagnostic(
                func, RULE, SLUG,
                f"{label}: parameters {actual} do not match the curated "
                f"parameter file names {expected} (graph + snake_case of "
                f"{list(spec_params)}; extra trailing parameters must "
                "have defaults)",
            )
        ]
    return []


def _check_limit(
    ctx: FileContext,
    info: ast.Call,
    label: str,
    position: int,
    expected: int | None,
    default: int | None,
) -> list[Diagnostic]:
    node = _call_argument(info, position, "limit")
    declared = default if node is None else _constant(node)
    if declared is _MISSING or declared != expected:
        shown = "<non-literal>" if declared is _MISSING else repr(declared)
        return [
            ctx.diagnostic(
                node or info, RULE, SLUG,
                f"{label}: declared limit {shown} != spec table limit "
                f"{expected!r}",
            )
        ]
    return []


# ----------------------------------------------------------------------
# BI modules (one query per file, q<NN>.py)
# ----------------------------------------------------------------------

def _check_bi_module(ctx: FileContext, number: int) -> list[Diagnostic]:
    label = f"BI {number}"
    if number not in SPEC_BI_PARAMS:
        return [
            ctx.diagnostic(
                ctx.tree, RULE, SLUG,
                f"{label}: no such query in the spec (BI 1-25)",
            )
        ]
    info = _top_level_assign(ctx.tree, "INFO")
    if info is None:
        return [
            ctx.diagnostic(
                ctx.tree, RULE, SLUG,
                f"{label}: module must export 'INFO = BiQueryInfo(...)'",
            )
        ]
    found: list[Diagnostic] = []
    declared_number = _constant(_call_argument(info, 0, "number"))
    if declared_number != number:
        found.append(
            ctx.diagnostic(
                info, RULE, SLUG,
                f"{label}: INFO.number is {declared_number!r} but the file "
                f"is q{number:02d}.py",
            )
        )
    found.extend(_check_choke_points(ctx, info, label, 2))
    found.extend(
        _check_limit(ctx, info, label, 3, SPEC_BI_LIMITS[number], default=100)
    )
    if not _has_namedtuple_class(ctx.tree, f"Bi{number}Row"):
        found.append(
            ctx.diagnostic(
                ctx.tree, RULE, SLUG,
                f"{label}: missing 'Bi{number}Row(NamedTuple)' row type",
            )
        )
    found.extend(
        _check_entry_point(
            ctx, ctx.tree, label, f"bi{number}", SPEC_BI_PARAMS[number]
        )
    )
    return found


# ----------------------------------------------------------------------
# IC modules (several queries per file, complex_part*.py)
# ----------------------------------------------------------------------

def _check_ic_module(ctx: FileContext) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    covered: set[int] = set()
    for node in ctx.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        match = _IC_INFO_RE.fullmatch(target.id)
        if match is None or not isinstance(node.value, ast.Call):
            continue
        number = int(match.group(1))
        covered.add(number)
        found.extend(_check_one_ic(ctx, node.value, number))
    for node in ctx.tree.body:
        if isinstance(node, ast.FunctionDef):
            match_fn = re.fullmatch(r"ic(\d+)", node.name)
            if match_fn and int(match_fn.group(1)) not in covered:
                found.append(
                    ctx.diagnostic(
                        node, RULE, SLUG,
                        f"IC {match_fn.group(1)}: entry point has no "
                        f"matching IC{match_fn.group(1)}_INFO descriptor",
                    )
                )
    return found


def _check_one_ic(
    ctx: FileContext, info: ast.Call, number: int
) -> list[Diagnostic]:
    label = f"IC {number}"
    if number not in SPEC_IC_PARAMS:
        return [
            ctx.diagnostic(
                info, RULE, SLUG,
                f"{label}: no such query in the spec (IC 1-14)",
            )
        ]
    found: list[Diagnostic] = []
    kind = _constant(_call_argument(info, 0, "kind"))
    if kind != "complex":
        found.append(
            ctx.diagnostic(
                info, RULE, SLUG,
                f"{label}: INFO.kind is {kind!r}, expected 'complex'",
            )
        )
    declared_number = _constant(_call_argument(info, 1, "number"))
    if declared_number != number:
        found.append(
            ctx.diagnostic(
                info, RULE, SLUG,
                f"{label}: INFO.number is {declared_number!r} but the "
                f"descriptor is named IC{number}_INFO",
            )
        )
    found.extend(_check_choke_points(ctx, info, label, 3))
    found.extend(
        _check_limit(
            ctx, info, label, 4, SPEC_IC_LIMITS[number], default=None
        )
    )
    if not _has_namedtuple_class(ctx.tree, f"Ic{number}Row"):
        found.append(
            ctx.diagnostic(
                info, RULE, SLUG,
                f"{label}: missing 'Ic{number}Row(NamedTuple)' row type",
            )
        )
    found.extend(
        _check_entry_point(
            ctx, ctx.tree, label, f"ic{number}", SPEC_IC_PARAMS[number]
        )
    )
    return found
