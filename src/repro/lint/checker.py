"""The checker driver: expand paths, run rules, filter suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.base import Rule, make_context
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ALL_RULES

def _SORT_KEY(diag: Diagnostic) -> tuple[str, int, int, str, str]:
    return (diag.path, diag.line, diag.col, diag.rule, diag.slug)


def lint_source(
    path: str, source: str, rules: Sequence[Rule] = ALL_RULES
) -> list[Diagnostic]:
    """Lint one in-memory module; returns post-suppression diagnostics."""
    context = make_context(path, source)
    if isinstance(context, Diagnostic):
        return [context]
    found: list[Diagnostic] = list(context.suppressions.problems)
    for rule in rules:
        for diag in rule(context):
            if not context.suppressions.is_suppressed(diag.slug, diag.line):
                found.append(diag)
    found.sort(key=_SORT_KEY)
    return found


def audit_source(
    path: str, source: str, rules: Sequence[Rule] = ALL_RULES
) -> list[Diagnostic]:
    """Audit one module's waiver inventory: rerun the rules *without*
    suppression filtering and report every waiver whose slug/scope
    matches none of the raw diagnostics (``R0``/``dead-suppression``)."""
    context = make_context(path, source)
    if isinstance(context, Diagnostic):
        return [context]
    raw: list[Diagnostic] = []
    for rule in rules:
        raw.extend(rule(context))
    dead = context.suppressions.dead_waivers(raw)
    dead.sort(key=_SORT_KEY)
    return dead


def _expand_paths(paths: Iterable[str]) -> list[Path]:
    """Files and directory trees (``*.py``, sorted traversal).

    Raises :class:`FileNotFoundError` for a path that does not exist —
    the CLI maps that to exit code 2 (usage error), because a silently
    skipped path would report "clean" without having checked anything.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def lint_paths(
    paths: Iterable[str], rules: Sequence[Rule] = ALL_RULES
) -> list[Diagnostic]:
    """Lint files and directory trees (see :func:`_expand_paths`)."""
    found: list[Diagnostic] = []
    for file in _expand_paths(paths):
        found.extend(
            lint_source(str(file), file.read_text(encoding="utf-8"), rules)
        )
    return found


def audit_paths(
    paths: Iterable[str], rules: Sequence[Rule] = ALL_RULES
) -> list[Diagnostic]:
    """Audit waiver inventories across files and directory trees."""
    found: list[Diagnostic] = []
    for file in _expand_paths(paths):
        found.extend(
            audit_source(str(file), file.read_text(encoding="utf-8"), rules)
        )
    return found
