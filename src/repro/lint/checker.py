"""The checker driver: expand paths, run rules, filter suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.base import Rule, make_context
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ALL_RULES


def lint_source(
    path: str, source: str, rules: Sequence[Rule] = ALL_RULES
) -> list[Diagnostic]:
    """Lint one in-memory module; returns post-suppression diagnostics."""
    context = make_context(path, source)
    if isinstance(context, Diagnostic):
        return [context]
    found: list[Diagnostic] = list(context.suppressions.problems)
    for rule in rules:
        for diag in rule(context):
            if not context.suppressions.is_suppressed(diag.slug, diag.line):
                found.append(diag)
    found.sort(key=lambda d: (d.path, d.line, d.col, d.rule, d.slug))
    return found


def lint_paths(
    paths: Iterable[str], rules: Sequence[Rule] = ALL_RULES
) -> list[Diagnostic]:
    """Lint files and directory trees (``*.py``, sorted traversal).

    Raises :class:`FileNotFoundError` for a path that does not exist —
    the CLI maps that to exit code 2 (usage error), because a silently
    skipped path would report "clean" without having checked anything.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    found: list[Diagnostic] = []
    for file in files:
        found.extend(
            lint_source(str(file), file.read_text(encoding="utf-8"), rules)
        )
    return found
