"""R2 — engine discipline.

PR 1 routed every read query through the instrumented operator layer
(:mod:`repro.engine`): scans push predicates into the store's secondary
indexes and tally their work into the per-query counters the power test
reports.  That layer is trivially bypassable — nothing stops a query
from iterating ``graph.posts.values()`` directly, silently escaping both
the pushdown and the instrumentation.  This rule makes the boundary
machine-checked for modules under ``repro/queries/``:

* no access to the store's ``_``-prefixed private index attributes
  (slug ``private-index``);
* no iteration of the raw entity/relation tables — ``graph.persons``,
  ``.posts``, ``.likes_edges``, … — or calls to the ``messages()``
  full-scan accessor (slug ``raw-store``).  Point access stays
  sanctioned: subscripts (``graph.persons[pid]``), ``.get()``,
  ``in`` membership tests and ``len()``;
* no import of :mod:`repro.graph.frozen` or :mod:`repro.graph.delta`
  (slug ``frozen-import``) — the frozen columnar layout and its delta
  overlay are engine-level optimisations, and a query that touches CSR
  arrays, ordinal maps, or overlay insert/tombstone state directly
  would produce layout-dependent results the frozen-vs-live
  differential cannot protect.  Queries see the snapshot only through
  the same ``SocialGraph`` accessor surface and engine operators as
  the live store.

The collection list lives in :mod:`repro.lint.spec` and is
cross-checked against ``SocialGraph.RAW_TABLES`` by the meta-tests.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.spec import RAW_STORE_COLLECTIONS

RULE = "R2"

#: Variable names treated as the store in query code.
_STORE_NAMES = frozenset({"graph", "store"})


def _store_attribute(node: ast.AST) -> ast.Attribute | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _STORE_NAMES
    ):
        return node
    return None


def check_engine_discipline(ctx: FileContext) -> list[Diagnostic]:
    if not ctx.in_queries:
        return []
    found: list[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        frozen_import = _frozen_import(node)
        if frozen_import is not None:
            found.append(
                ctx.diagnostic(
                    node, RULE, "frozen-import",
                    f"query code imports '{frozen_import}'; the frozen "
                    "columnar layout and its delta overlay are "
                    "engine-internal — write against SocialGraph "
                    "accessors and repro.engine operators, which take "
                    "the frozen/overlay fast path automatically",
                )
            )
            continue
        attr = _store_attribute(node)
        if attr is None:
            continue
        name = attr.attr
        if name.startswith("_") and not name.startswith("__"):
            found.append(
                ctx.diagnostic(
                    attr, RULE, "private-index",
                    f"query code reaches into the store's private index "
                    f"'{name}'; use a SocialGraph accessor or a "
                    "repro.engine operator",
                )
            )
            continue
        if name not in RAW_STORE_COLLECTIONS:
            continue
        if _is_sanctioned_use(ctx, attr):
            continue
        found.append(
            ctx.diagnostic(
                attr, RULE, "raw-store",
                f"raw store collection '{name}' used outside the engine; "
                "scan through repro.engine (scan_messages/scan_persons/"
                "scan_forums/scan_likes/...) so pushdown and "
                "instrumentation apply",
            )
        )
    return found


#: Engine-internal storage-layout modules queries must not import.
_LAYOUT_MODULES = ("repro.graph.frozen", "repro.graph.delta")


def _frozen_import(node: ast.AST) -> str | None:
    """The offending module path if ``node`` imports a layout module
    (:mod:`repro.graph.frozen` or :mod:`repro.graph.delta`)."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            for banned in _LAYOUT_MODULES:
                if alias.name == banned or alias.name.startswith(banned + "."):
                    return alias.name
    if isinstance(node, ast.ImportFrom) and node.module is not None:
        module = node.module
        for banned in _LAYOUT_MODULES:
            if module == banned or module.startswith(banned + "."):
                return module
        # ``from repro.graph import frozen`` smuggles the same module.
        if module == "repro.graph":
            for alias in node.names:
                for banned in _LAYOUT_MODULES:
                    if alias.name == banned.rsplit(".", 1)[1]:
                        return banned
    return None


def _is_sanctioned_use(ctx: FileContext, attr: ast.Attribute) -> bool:
    """Point lookups are fine; anything that can iterate rows is not."""
    parent = ctx.parent(attr)
    # graph.persons[pid]
    if isinstance(parent, ast.Subscript) and parent.value is attr:
        return True
    # pid in graph.persons  /  pid not in graph.persons
    if isinstance(parent, ast.Compare) and attr in parent.comparators:
        index = parent.comparators.index(attr)
        return isinstance(parent.ops[index], (ast.In, ast.NotIn))
    if isinstance(parent, ast.Attribute):
        # graph.persons.get(pid) — but .values()/.items()/.keys() is a scan.
        grand = ctx.parent(parent)
        if (
            parent.attr == "get"
            and isinstance(grand, ast.Call)
            and grand.func is parent
        ):
            return True
        return False
    # len(graph.persons) — a cardinality, not an iteration order.
    if (
        isinstance(parent, ast.Call)
        and attr in parent.args
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "len"
    ):
        return True
    return False
