"""R7 — fork/worker safety in ``repro/exec/`` and driver pool sites.

The process backend runs task runners in forked (or spawned) children.
Two classes of bug survive every unit test run on the serial backend and
only corrupt results under real parallelism:

* ``worker-shared-state`` — a task runner writing module-level mutable
  state (or resetting the metrics registry/operator counters).  In a
  forked child the write lands in the child's copy-on-write pages and
  silently vanishes; on the thread backend it races.  The sanctioned
  channel is the metrics-registry delta protocol: runners ``inc()``
  counters, the pool snapshots/subtracts and merges deltas in
  submission order.  Runner bodies are found through the ``TASK_KINDS``
  registry (and ``register_task_kind`` calls) plus every module-local
  helper they transitively call, so moving the write into a helper does
  not hide it.
* ``live-store-capture`` — a pool submission capturing a live
  ``SocialGraph`` or ``FreezeManager`` (a snapshot-provider constructor
  — ``provide_snapshot``/``InlineSnapshot``/``MmapFileSnapshot``/
  ``SharedMemorySnapshot`` — over a live handle,
  ``WorkerPool(snapshot=…)``, a live store in a ``Task`` payload).  Live stores carry position maps, write hooks and delta
  overlays that must not cross the process boundary; workers get
  ``provide_snapshot(freeze(graph))`` or ``manager.frozen()``
  (attach-by-path through a mapped provider is exactly as legal as the
  inline fork share).  The check is flow-sensitive and flags only
  values that are *provably* live on every path, so
  ``freeze(graph) if freeze_enabled else graph`` stays legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow import (
    AliasAnalysis,
    Env,
    FunctionNode,
    UNKNOWN,
    Values,
    function_defs,
    module_functions,
    transitive_local_callees,
)
from repro.lint.spec import (
    LIVE_STORE_CONSTRUCTORS,
    SNAPSHOT_CONSTRUCTORS,
    SNAPSHOT_PROVIDER_CONSTRUCTORS,
    TASK_RUNNER_REGISTRY,
)

RULE = "R7"

_LIVE: Values = frozenset({"live-store"})
_SAFE: Values = frozenset({"snapshot"})

#: Registry/counter reset entry points; only the pool's delta-capture
#: protocol may call these, never a task runner.
_RESET_CALLS = frozenset({"reset_counters", "reset_registry"})

_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "update", "setdefault", "add", "discard",
        "sort", "reverse",
    }
)


def check_fork_safety(context: FileContext) -> list[Diagnostic]:
    """R7: worker bodies touch no shared module state; pool submissions
    carry snapshots, never live stores."""
    found: list[Diagnostic] = []
    if context.in_exec:
        found.extend(_check_worker_shared_state(context))
    if context.in_exec or context.in_driver:
        found.extend(_check_live_store_capture(context))
    return found


# -- worker-shared-state ---------------------------------------------------


def _runner_roots(tree: ast.Module) -> set[str]:
    """Function names registered as task runners in this module."""
    roots: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            # TASK_KINDS = {"bi": _run_bi, ...} and TASK_KINDS[k] = fn.
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == TASK_RUNNER_REGISTRY
                    and isinstance(node.value, ast.Dict)
                ):
                    for value in node.value.values:
                        if isinstance(value, ast.Name):
                            roots.add(value.id)
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == TASK_RUNNER_REGISTRY
                    and isinstance(node.value, ast.Name)
                ):
                    roots.add(node.value.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == TASK_RUNNER_REGISTRY
                and isinstance(node.value, ast.Dict)
            ):
                for value in node.value.values:
                    if isinstance(value, ast.Name):
                        roots.add(value.id)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register_task_kind"
        ):
            for argument in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(argument, ast.Name):
                    roots.add(argument.id)
    return roots


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound at module top level (shared state candidates)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return names


def _check_worker_shared_state(context: FileContext) -> Iterator[Diagnostic]:
    functions = module_functions(context.tree)
    runners = transitive_local_callees(functions, _runner_roots(context.tree))
    if not runners:
        return
    module_names = _module_level_names(context.tree)
    for name in sorted(runners):
        yield from _scan_runner(context, name, functions[name], module_names)


def _scan_runner(
    context: FileContext,
    runner_name: str,
    func: FunctionNode,
    module_names: set[str],
) -> Iterator[Diagnostic]:
    declared_globals: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_globals.update(node.names)
    shared = module_names | declared_globals

    def shared_name(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name) and expr.id in shared:
            return expr.id
        return None

    local_shadows: set[str] = set()
    for node in ast.walk(func):
        # A local binding of the same name shadows the module global
        # from then on; one coarse pre-pass keeps this check honest.
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id not in declared_globals
                ):
                    local_shadows.add(target.id)
    shared -= local_shadows - declared_globals

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_globals
                ):
                    yield context.diagnostic(
                        target, RULE, "worker-shared-state",
                        f"task runner '{runner_name}' rebinds module global "
                        f"'{target.id}'; worker writes vanish with the "
                        "forked process — ship results through the "
                        "metrics-registry delta protocol or the task "
                        "return value",
                    )
                elif isinstance(target, ast.Subscript):
                    owner = shared_name(target.value)
                    if owner is not None:
                        yield context.diagnostic(
                            target, RULE, "worker-shared-state",
                            f"task runner '{runner_name}' writes shared "
                            f"module state '{owner}[...]'; worker writes "
                            "vanish with the forked process — return the "
                            "result or use the metrics delta protocol",
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    owner = shared_name(target.value)
                    if owner is not None:
                        yield context.diagnostic(
                            target, RULE, "worker-shared-state",
                            f"task runner '{runner_name}' deletes from "
                            f"shared module state '{owner}'",
                        )
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                owner = shared_name(node.func.value)
                if owner is not None:
                    yield context.diagnostic(
                        node, RULE, "worker-shared-state",
                        f"task runner '{runner_name}' mutates shared module "
                        f"state '{owner}.{node.func.attr}(...)'; worker "
                        "writes vanish with the forked process — return "
                        "the result or use the metrics delta protocol",
                    )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _RESET_CALLS
            ):
                yield context.diagnostic(
                    node, RULE, "worker-shared-state",
                    f"task runner '{runner_name}' calls "
                    f"{node.func.id}(); only the pool's delta-capture "
                    "protocol may reset metrics — a runner reset corrupts "
                    "every concurrent task's deltas",
                )


# -- live-store-capture ----------------------------------------------------


def _live_classifier(expr: ast.expr, env: Env) -> Values:
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in LIVE_STORE_CONSTRUCTORS:
                return _LIVE
            if func.id in SNAPSHOT_CONSTRUCTORS:
                return _SAFE
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in LIVE_STORE_CONSTRUCTORS
            ):
                return _LIVE
            if func.attr in SNAPSHOT_CONSTRUCTORS:
                return _SAFE
        return UNKNOWN
    if isinstance(expr, ast.Name):
        return env.get(expr.id, UNKNOWN)
    if isinstance(expr, ast.IfExp):
        return _live_classifier(expr.body, env) | _live_classifier(
            expr.orelse, env
        )
    if isinstance(expr, ast.BoolOp):
        values: Values = frozenset()
        for value in expr.values:
            values |= _live_classifier(value, env)
        return values
    if isinstance(expr, ast.NamedExpr):
        return _live_classifier(expr.value, env)
    return UNKNOWN


def _statement_expressions(stmt: ast.AST) -> Iterator[ast.expr]:
    """Direct expression operands of one statement (headers included,
    nested statements excluded — those sit in their own CFG blocks)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child
        elif isinstance(child, ast.withitem):
            yield child.context_expr


def _submission_arguments(call: ast.Call) -> Iterator[ast.expr]:
    """Expressions a pool submission would capture into workers."""
    func = call.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    if name in SNAPSHOT_PROVIDER_CONSTRUCTORS:
        if call.args:
            yield call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "graph":
                yield keyword.value
    elif name == "WorkerPool":
        for keyword in call.keywords:
            if keyword.arg == "snapshot":
                yield keyword.value
    elif name == "Task":
        payloads = [kw.value for kw in call.keywords if kw.arg == "payload"]
        if len(call.args) >= 3:
            payloads.append(call.args[2])
        for payload in payloads:
            if isinstance(payload, (ast.Tuple, ast.List)):
                yield from payload.elts
            else:
                yield payload


def _check_live_store_capture(context: FileContext) -> Iterator[Diagnostic]:
    for func in function_defs(context.tree):
        analysis = AliasAnalysis(func, _live_classifier)
        for stmt in analysis.cfg.statements():
            env = analysis.env_before.get(stmt, {})
            for expr in _statement_expressions(stmt):
                for node in ast.walk(expr):
                    if not isinstance(node, ast.Call):
                        continue
                    for argument in _submission_arguments(node):
                        if _live_classifier(argument, env) == _LIVE:
                            yield context.diagnostic(
                                argument, RULE, "live-store-capture",
                                "pool submission captures a live store "
                                "(SocialGraph/FreezeManager); workers must "
                                "receive frozen state — pass "
                                "provide_snapshot(freeze(graph)) or "
                                "manager.frozen() instead",
                            )
