"""Suppression comments: ``# lint: allow-<slug> <reason>``.

Two scopes, mirroring how LDBC audits record waivers — every waiver
names the rule it waives and why:

* line scope — the comment sits on the violating line, alone on the
  line directly above it, or on *any physical line of the violating
  logical statement* — a multi-line sort key continued inside parens
  can be waived right where the key is written; the waiver covers the
  whole statement span, wherever within it the diagnostic anchors;
* file scope — ``# lint: file-allow-<slug> <reason>`` anywhere in the
  file (conventionally in the header) waives the slug for the whole
  file, e.g. for the deliberately engine-free reference
  implementations.

A suppression without a reason is itself reported (``R0``/
``bare-suppression``): an unexplained waiver is exactly the kind of
drift the checker exists to prevent.  Each reasoned waiver is also kept
as a :class:`Waiver` record so ``--audit-suppressions`` can report
waivers that no longer suppress anything (``R0``/``dead-suppression``)
— the inventory must not rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic

_COMMENT_RE = re.compile(
    r"#\s*lint:\s*(?P<filewide>file-)?allow-(?P<slug>[a-z][a-z0-9-]*)"
    r"(?:\s+(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Waiver:
    """One reasoned suppression comment, for the dead-waiver audit."""

    slug: str
    #: Physical line of the comment itself.
    line: int
    filewide: bool
    #: Line numbers this waiver suppresses (empty for file scope).
    covered: frozenset[int] = frozenset()


@dataclass
class SuppressionIndex:
    """Parsed suppressions of one file, queried by (line, slug)."""

    #: The file the suppressions came from (for audit diagnostics).
    path: str = ""
    #: slug -> set of line numbers the suppression covers.
    lines: dict[str, set[int]] = field(default_factory=dict)
    #: slugs waived for the entire file.
    filewide: set[str] = field(default_factory=set)
    #: slug -> line of the (first) file-wide waiver, so rules that audit
    #: waiver *placement* (e.g. R1 reserves file-wide ``wall-clock``
    #: waivers for ``repro/obs/``) can point at the comment itself.
    filewide_lines: dict[str, int] = field(default_factory=dict)
    #: diagnostics produced by malformed suppressions (missing reason).
    problems: list[Diagnostic] = field(default_factory=list)
    #: every reasoned waiver, in file order, for ``--audit-suppressions``.
    waivers: list[Waiver] = field(default_factory=list)

    def is_suppressed(self, slug: str, line: int) -> bool:
        if slug in self.filewide:
            return True
        return line in self.lines.get(slug, set())

    def dead_waivers(
        self, raw_diagnostics: list[Diagnostic]
    ) -> list[Diagnostic]:
        """Waivers that suppress none of ``raw_diagnostics``.

        ``raw_diagnostics`` must be *pre-suppression* rule output for
        this file; a waiver is live exactly when some raw diagnostic
        matches its slug inside its scope.
        """
        dead: list[Diagnostic] = []
        for waiver in self.waivers:
            used = any(
                diag.slug == waiver.slug
                and (waiver.filewide or diag.line in waiver.covered)
                for diag in raw_diagnostics
            )
            if used:
                continue
            form = "file-allow" if waiver.filewide else "allow"
            dead.append(
                Diagnostic(
                    path=self.path,
                    line=waiver.line,
                    col=1,
                    rule="R0",
                    slug="dead-suppression",
                    message=(
                        f"waiver '{form}-{waiver.slug}' no longer "
                        "suppresses any diagnostic; delete it (or fix the "
                        "slug) so the waiver inventory stays auditable"
                    ),
                )
            )
        return dead


def _scan_tokens(
    source: str,
) -> tuple[dict[int, tuple[int, int]], list[tuple[int, int, str]]]:
    """One tokenize pass: logical-line spans and comment tokens.

    The first result maps each physical line to the ``(first, last)``
    physical-line span of its logical statement: a logical line opens at
    the first non-trivia token and closes at NEWLINE; NL, COMMENT,
    INDENT and DEDENT never end one, so continuation lines — both
    backslash and implicit paren/bracket continuations — map back to the
    statement they belong to.  The second result is ``(line, col, text)`` per COMMENT
    token, so suppression parsing sees only real comments and a
    ``# lint:`` sequence inside a string literal or docstring cannot
    register as a waiver.  Both are empty when tokenize cannot scan the
    source (the AST parse will have reported the syntax error already).
    """
    spans: dict[int, tuple[int, int]] = {}
    comments: list[tuple[int, int, str]] = []
    current: int | None = None
    trivia = {
        tokenize.NL,
        tokenize.COMMENT,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
    }
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
            if token.type == tokenize.NEWLINE:
                if current is not None:
                    span = (current, token.start[0])
                    for line in range(current, token.start[0] + 1):
                        spans.setdefault(line, span)
                current = None
            elif token.type in trivia:
                continue
            elif current is None:
                current = token.start[0]
    except (tokenize.TokenError, IndentationError):
        return {}, []
    return spans, comments


def parse_suppressions(path: str, source: str) -> SuppressionIndex:
    """Scan comment tokens for suppression comments.

    Line-scope comments cover their own line, the next one, and every
    physical line of the logical statement they sit on (see the module
    docstring).  The scan is token-based: only genuine ``#`` comments
    count, so lint's own documentation strings cannot register waivers.
    """
    index = SuppressionIndex(path=path)
    logical_spans, comments = _scan_tokens(source)
    for lineno, col, text in comments:
        match = _COMMENT_RE.search(text)
        if match is None:
            continue
        slug = match.group("slug")
        if not match.group("reason"):
            index.problems.append(
                Diagnostic(
                    path=path,
                    line=lineno,
                    col=col + match.start() + 1,
                    rule="R0",
                    slug="bare-suppression",
                    message=(
                        f"suppression 'allow-{slug}' has no reason; "
                        "write '# lint: allow-"
                        f"{slug} <why this is sound>'"
                    ),
                )
            )
            continue
        if match.group("filewide"):
            index.filewide.add(slug)
            index.filewide_lines.setdefault(slug, lineno)
            index.waivers.append(Waiver(slug, lineno, filewide=True))
        else:
            covered = {lineno, lineno + 1}
            span = logical_spans.get(lineno)
            if span is not None:
                covered.update(range(span[0], span[1] + 1))
            index.lines.setdefault(slug, set()).update(covered)
            index.waivers.append(
                Waiver(slug, lineno, filewide=False, covered=frozenset(covered))
            )
    return index
