"""Suppression comments: ``# lint: allow-<slug> <reason>``.

Two scopes, mirroring how LDBC audits record waivers — every waiver
names the rule it waives and why:

* line scope — the comment sits on the violating line, or alone on the
  line directly above it;
* file scope — ``# lint: file-allow-<slug> <reason>`` anywhere in the
  file (conventionally in the header) waives the slug for the whole
  file, e.g. for the deliberately engine-free reference
  implementations.

A suppression without a reason is itself reported (``R0``/
``bare-suppression``): an unexplained waiver is exactly the kind of
drift the checker exists to prevent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic

_COMMENT_RE = re.compile(
    r"#\s*lint:\s*(?P<filewide>file-)?allow-(?P<slug>[a-z][a-z0-9-]*)"
    r"(?:\s+(?P<reason>\S.*))?"
)


@dataclass
class SuppressionIndex:
    """Parsed suppressions of one file, queried by (line, slug)."""

    #: slug -> set of line numbers the suppression covers.
    lines: dict[str, set[int]] = field(default_factory=dict)
    #: slugs waived for the entire file.
    filewide: set[str] = field(default_factory=set)
    #: slug -> line of the (first) file-wide waiver, so rules that audit
    #: waiver *placement* (e.g. R1 reserves file-wide ``wall-clock``
    #: waivers for ``repro/obs/``) can point at the comment itself.
    filewide_lines: dict[str, int] = field(default_factory=dict)
    #: diagnostics produced by malformed suppressions (missing reason).
    problems: list[Diagnostic] = field(default_factory=list)

    def is_suppressed(self, slug: str, line: int) -> bool:
        if slug in self.filewide:
            return True
        return line in self.lines.get(slug, set())


def parse_suppressions(path: str, source: str) -> SuppressionIndex:
    """Scan source lines for suppression comments.

    Line-scope comments cover their own line and the next one, so both
    trailing comments and standalone comments above the construct work.
    (The scan is textual; a ``# lint:`` sequence inside a string literal
    would match too — none exist in practice and the failure mode is a
    too-wide waiver on one line, caught in review.)
    """
    index = SuppressionIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _COMMENT_RE.search(text)
        if match is None:
            continue
        slug = match.group("slug")
        if not match.group("reason"):
            index.problems.append(
                Diagnostic(
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    rule="R0",
                    slug="bare-suppression",
                    message=(
                        f"suppression 'allow-{slug}' has no reason; "
                        "write '# lint: allow-"
                        f"{slug} <why this is sound>'"
                    ),
                )
            )
            continue
        if match.group("filewide"):
            index.filewide.add(slug)
            index.filewide_lines.setdefault(slug, lineno)
        else:
            index.lines.setdefault(slug, set()).update((lineno, lineno + 1))
    return index
