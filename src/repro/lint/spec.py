"""Spec transcriptions the contract rule (R3) checks declarations against.

These tables are deliberately *copies* of what the implementation
declares elsewhere (``repro.analysis.chokepoints``, ``repro.params.files``,
each query module's ``INFO``) rather than imports of it: double-entry
bookkeeping in the LDBC-audit sense.  An edit that changes only one side
— a query's declared limit, a parameter rename, a new choke-point id —
fails the lint until both sides agree.  ``tests/test_lint.py`` holds the
meta-tests keeping these copies synchronized with the runtime modules.
"""

from __future__ import annotations

import re

#: Choke-point identifiers of spec Appendix A (Table A.1 row set).
VALID_CHOKE_POINTS: frozenset[str] = frozenset(
    {
        "1.1", "1.2", "1.3", "1.4",
        "2.1", "2.2", "2.3", "2.4",
        "3.1", "3.2", "3.3",
        "4.1", "4.2", "4.3", "4.4",
        "5.1", "5.2", "5.3",
        "6.1",
        "7.1", "7.2", "7.3", "7.4",
        "8.1", "8.2", "8.3", "8.4", "8.5", "8.6",
    }
)

#: Result-row limits of the BI reads (spec chapter 5 query definitions).
#: ``None`` means the query returns all groups (BI 1, 18) or a fixed
#: small row set (BI 17's single count).
SPEC_BI_LIMITS: dict[int, int | None] = {
    1: None, 2: 100, 3: 100, 4: 20, 5: 100,
    6: 100, 7: 100, 8: 100, 9: 100, 10: 100,
    11: 100, 12: 100, 13: 100, 14: 100, 15: 100,
    16: 100, 17: None, 18: None, 19: 100, 20: 100,
    21: 100, 22: 100, 23: 100, 24: 100, 25: 100,
}

#: Result-row limits of the Interactive complex reads (spec chapter 4).
SPEC_IC_LIMITS: dict[int, int | None] = {
    1: 20, 2: 20, 3: 20, 4: 10, 5: 20, 6: 10, 7: 20,
    8: 20, 9: 20, 10: 10, 11: 10, 12: 20, 13: None, 14: None,
}

#: Substitution-parameter names per BI read, camelCase as in the spec's
#: *params* sections (must equal ``repro.params.files.BI_PARAM_NAMES``).
SPEC_BI_PARAMS: dict[int, tuple[str, ...]] = {
    1: ("date",),
    2: ("startDate", "endDate", "country1", "country2", "endOfSimulation"),
    3: ("year", "month"),
    4: ("tagClass", "country"),
    5: ("country",),
    6: ("tag",),
    7: ("tag",),
    8: ("tag",),
    9: ("tagClass1", "tagClass2", "threshold"),
    10: ("tag", "date"),
    11: ("country", "blacklist"),
    12: ("date", "likeThreshold"),
    13: ("country",),
    14: ("begin", "end"),
    15: ("country",),
    16: ("personId", "country", "tagClass", "minPathDistance",
         "maxPathDistance"),
    17: ("country",),
    18: ("date", "lengthThreshold", "languages"),
    19: ("date", "tagClass1", "tagClass2"),
    20: ("tagClasses",),
    21: ("country", "endDate"),
    22: ("country1", "country2"),
    23: ("country",),
    24: ("tagClass",),
    25: ("person1Id", "person2Id", "startDate", "endDate"),
}

#: Substitution-parameter names per Interactive complex read (must equal
#: ``repro.params.files.INTERACTIVE_PARAM_NAMES``).
SPEC_IC_PARAMS: dict[int, tuple[str, ...]] = {
    1: ("personId", "firstName"),
    2: ("personId", "maxDate"),
    3: ("personId", "countryXName", "countryYName", "startDate",
        "durationDays"),
    4: ("personId", "startDate", "durationDays"),
    5: ("personId", "minDate"),
    6: ("personId", "tagName"),
    7: ("personId",),
    8: ("personId",),
    9: ("personId", "maxDate"),
    10: ("personId", "month"),
    11: ("personId", "countryName", "workFromYear"),
    12: ("personId", "tagClassName"),
    13: ("person1Id", "person2Id"),
    14: ("person1Id", "person2Id"),
}

#: Raw collection attributes of ``SocialGraph`` that query modules must
#: not iterate directly (must stay a subset of the store's actual entity
#: and relation tables, plus the ``messages()`` full-scan accessor).
RAW_STORE_COLLECTIONS: frozenset[str] = frozenset(
    {
        "places", "organisations", "tag_classes", "tags",
        "persons", "forums", "posts", "comments",
        "knows_edges", "likes_edges", "memberships",
        "study_at", "work_at",
        "messages",
    }
)


#: Frozen/overlay column-family attributes of ``FrozenGraph`` (must
#: equal the underscore-prefixed class-level annotations of
#: ``repro.graph.frozen.FrozenGraph``).  R6 treats these — plus
#: :data:`RAW_STORE_COLLECTIONS` and every container attribute a graph
#: view binds in its constructor — as *aliased*: rebinding one forks the
#: snapshot views that adopted it by reference.
FROZEN_COLUMN_FAMILIES: frozenset[str] = frozenset(
    {
        "_person_ids", "_person_ord", "_person_country",
        "_knows_offsets", "_knows_targets", "_knows_dates",
        "_post_objs", "_post_dates", "_comment_objs", "_comment_dates",
        "_msg_objs", "_msg_ord", "_root_ord",
        "_reply_offsets", "_reply_targets",
        "_thread_offsets", "_thread_members",
        "_likes_offsets", "_likes_person", "_likes_dates",
        "_forum_ids", "_forum_ord",
        "_member_offsets", "_member_person", "_member_dates",
        "_forum_post_offsets", "_forum_post_targets",
        "_forum_post_objs", "_forum_post_date_cols",
        "_tag_objs", "_tag_dates",
        "_comment_root_lang", "_lang_code_of", "_country_persons",
        "_post_language", "_post_browser", "_comment_browser",
        "_person_gender", "_person_browser",
    }
)

#: Read-only snapshot view classes: their methods must never mutate the
#: base columns or tables they adopted by reference.
FROZEN_VIEW_CLASSES: frozenset[str] = frozenset(
    {"FrozenGraph", "OverlaidGraph"}
)

#: Classes whose instances *are* graph views sharing tables by
#: reference (live store included — its tables must be mutated in
#: place, never rebound, or frozen views silently fork).
GRAPH_VIEW_CLASSES: frozenset[str] = frozenset(
    {"SocialGraph"} | FROZEN_VIEW_CLASSES
)

#: Constructors whose result is a *live*, mutable store handle — R7
#: flags these crossing the process-pool boundary (workers must receive
#: a snapshot provider / frozen state instead).
LIVE_STORE_CONSTRUCTORS: frozenset[str] = frozenset(
    {"SocialGraph", "FreezeManager"}
)

#: Calls whose result is safe to ship to workers (frozen or overlay
#: snapshots built for exactly that purpose).
SNAPSHOT_CONSTRUCTORS: frozenset[str] = frozenset({"freeze", "frozen"})

#: Snapshot-provider constructors of the Snapshot API
#: (``repro.exec.snapshot``) — the graph they wrap crosses the pool
#: boundary (by fork, pickle, or attach-by-path), so R7 checks their
#: graph argument.
SNAPSHOT_PROVIDER_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "InlineSnapshot",
        "MmapFileSnapshot",
        "SharedMemorySnapshot",
        "provide_snapshot",
    }
)

#: The task-runner registry name in ``repro.exec.tasks`` — R7 treats the
#: callables registered there (and their module-local helpers) as worker
#: bodies.
TASK_RUNNER_REGISTRY = "TASK_KINDS"


def camel_to_snake(name: str) -> str:
    """The spec's camelCase parameter names as Python argument names."""
    return re.sub(r"([A-Z])", r"_\1", name).lower().lstrip("_")
