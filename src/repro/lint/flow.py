"""Dataflow layer for the flow-sensitive rules (R6/R7).

Three pieces, each deliberately small and intra-procedural:

* :func:`build_cfg` — a per-function control-flow graph over ``ast``
  covering branches, loops (with ``else`` and ``break``/``continue``),
  ``try``/``except``/``finally``, ``with`` and ``match``.  Compound
  statements live in the block where their *header* executes; their
  bodies get blocks of their own, so every statement of the function
  body sits in exactly one block.
* :class:`AliasAnalysis` — forward may-analysis to a fixpoint over that
  CFG.  The abstract domain is a set of opaque string tokens per name
  (``attr:likes_edges``, ``fresh``, ``live-store``, …) produced by a
  rule-supplied expression classifier; the analysis only moves the
  tokens through assignments, loops and joins.  Because the merge is a
  union over a finite token set, the fixpoint always terminates.
* call-graph helpers — :func:`constructor_only_methods` finds the
  methods of a class reachable *only* from ``__init__`` (freeze-time
  column builders), and :func:`transitive_local_callees` expands a set
  of module-level roots (task runners) through module-local calls so a
  violation moved into a helper is still attributed to the runner.

Known, documented blind spots: nested functions are opaque statements
(analyse them separately if needed), ``:=`` targets inside expression
headers are not bound, and comprehension targets are deliberately *not*
definitions — Python 3 scopes them to the comprehension.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: A function-ish definition node the CFG builder accepts.
FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Abstract value of one name: a set of opaque classifier tokens.
Values = frozenset[str]
#: name (or ``self.<attr>`` spelled ``attr:<name>``) -> abstract value.
Env = dict[str, Values]
#: Rule-supplied expression classifier: (expression, env) -> tokens.
Classifier = Callable[[ast.expr, "Env"], Values]

#: The classifier token for "no idea" — joins absorb it.
UNKNOWN_TOKEN = "unknown"
UNKNOWN: Values = frozenset({UNKNOWN_TOKEN})
EMPTY: Values = frozenset()


@dataclass
class Block:
    """A basic block: straight-line statements plus successor edges."""

    block_id: int
    statements: list[ast.AST] = field(default_factory=list)
    successors: list["Block"] = field(default_factory=list)

    def link(self, other: "Block") -> None:
        if other is not self and other not in self.successors:
            self.successors.append(other)


@dataclass
class ControlFlowGraph:
    """CFG of one function body; ``entry``/``exit`` are empty blocks."""

    blocks: list[Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def statements(self) -> Iterator[ast.AST]:
        """Every statement of the function body, each exactly once."""
        for block in self.blocks:
            yield from block.statements

    def reachable(self, start: Block | None = None) -> set[int]:
        """Block ids reachable from ``start`` (default: entry)."""
        stack = [start if start is not None else self.entry]
        seen: set[int] = set()
        while stack:
            block = stack.pop()
            if block.block_id in seen:
                continue
            seen.add(block.block_id)
            stack.extend(block.successors)
        return seen


class _Builder:
    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        # (continue target, break target) per enclosing loop.
        self._loops: list[tuple[Block, Block]] = []

    def build(self, body: list[ast.stmt]) -> ControlFlowGraph:
        end = self._sequence(body, self.cfg.entry)
        end.link(self.cfg.exit)
        return self.cfg

    def _sequence(self, body: list[ast.stmt], current: Block) -> Block:
        for stmt in body:
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: Block) -> Block:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # The items bind in ``current``; the body is straight-line.
            current.statements.append(stmt)
            return self._sequence(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            current.statements.append(stmt)
            if self._loops:
                target = self._loops[-1]
                current.link(target[1] if isinstance(stmt, ast.Break) else target[0])
            # Statements after a jump are unreachable: fresh island block.
            return self.cfg.new_block()
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            current.link(self.cfg.exit)
            return self.cfg.new_block()
        # Simple statement (incl. nested def/class, treated as opaque).
        current.statements.append(stmt)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Block:
        current.statements.append(stmt)
        after = self.cfg.new_block()
        then_start = self.cfg.new_block()
        current.link(then_start)
        self._sequence(stmt.body, then_start).link(after)
        if stmt.orelse:
            else_start = self.cfg.new_block()
            current.link(else_start)
            self._sequence(stmt.orelse, else_start).link(after)
        else:
            current.link(after)
        return after

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: Block
    ) -> Block:
        head = self.cfg.new_block()
        current.link(head)
        # ``for`` targets rebind at the head on every iteration.
        head.statements.append(stmt)
        after = self.cfg.new_block()
        body_start = self.cfg.new_block()
        head.link(body_start)
        self._loops.append((head, after))
        body_end = self._sequence(stmt.body, body_start)
        self._loops.pop()
        body_end.link(head)
        if stmt.orelse:
            else_start = self.cfg.new_block()
            head.link(else_start)
            self._sequence(stmt.orelse, else_start).link(after)
        else:
            head.link(after)
        return after

    def _split_sequence(self, body: list[ast.stmt], current: Block) -> Block:
        """Like :meth:`_sequence`, but each statement opens a fresh
        block, so every *intermediate* environment of a try body sits at
        some block boundary and the exceptional may-edges carry it."""
        for stmt in body:
            opened = self.cfg.new_block()
            current.link(opened)
            current = self._statement(stmt, opened)
        return current

    def _try(self, stmt: ast.Try, current: Block) -> Block:
        body_start = self.cfg.new_block()
        current.link(body_start)
        mark = len(self.cfg.blocks)
        body_end = self._split_sequence(stmt.body, body_start)
        # Any block executed inside the try body may raise into any
        # handler (and into ``finally``) — a conservative may-edge set.
        body_blocks = [body_start] + self.cfg.blocks[mark:]
        if stmt.orelse:
            body_end = self._sequence(stmt.orelse, body_end)
        join = self.cfg.new_block()
        body_end.link(join)
        for handler in stmt.handlers:
            handler_start = self.cfg.new_block()
            for block in body_blocks:
                block.link(handler_start)
            # The ``except ... as name`` binding happens here.
            handler_start.statements.append(handler)
            self._sequence(handler.body, handler_start).link(join)
        if stmt.finalbody:
            if not stmt.handlers:
                # Unhandled exceptions still run ``finally``: defs from
                # mid-body must reach it.
                for block in body_blocks:
                    block.link(join)
            final_end = self._sequence(stmt.finalbody, join)
            final_end.link(self.cfg.exit)
            return final_end
        return join

    def _match(self, stmt: ast.Match, current: Block) -> Block:
        current.statements.append(stmt)
        after = self.cfg.new_block()
        current.link(after)  # no case may match
        for case in stmt.cases:
            case_start = self.cfg.new_block()
            current.link(case_start)
            self._sequence(case.body, case_start).link(after)
        return after


def build_cfg(func: FunctionNode) -> ControlFlowGraph:
    """The control-flow graph of one function's body."""
    return _Builder().build(func.body)


def _merge(into: Env, other: Env) -> bool:
    """Key-wise union of ``other`` into ``into``; True if it grew."""
    changed = False
    for name, values in other.items():
        previous = into.get(name, EMPTY)
        merged = previous | values
        if merged != previous:
            into[name] = merged
            changed = True
    return changed


class AliasAnalysis:
    """Reaching-definitions/alias fixpoint over one function's CFG.

    ``env_before[stmt]`` is the abstract environment on entry to each
    statement (union over all program paths reaching it).  Rules read it
    to ask "what may this name alias *here*?" — flow-sensitively, so a
    rebind on one branch taints the join but a straight write-back of
    the same object does not.
    """

    def __init__(
        self,
        func: FunctionNode,
        classify: Classifier,
        initial: Env | None = None,
    ) -> None:
        self.func = func
        self.classify = classify
        self.cfg = build_cfg(func)
        self.env_before: dict[ast.AST, Env] = {}
        self._run(initial or {})

    # -- fixpoint ------------------------------------------------------

    def _run(self, initial: Env) -> None:
        in_envs: dict[int, Env] = {self.cfg.entry.block_id: dict(initial)}
        visited: set[int] = set()
        work: list[Block] = [self.cfg.entry]
        while work:
            block = work.pop()
            visited.add(block.block_id)
            env = dict(in_envs.get(block.block_id, {}))
            for stmt in block.statements:
                before = self.env_before.setdefault(stmt, {})
                _merge(before, env)
                env = self._transfer(stmt, env)
            for successor in block.successors:
                succ_env = in_envs.setdefault(successor.block_id, {})
                if _merge(succ_env, env) or successor.block_id not in visited:
                    work.append(successor)

    # -- transfer ------------------------------------------------------

    def _transfer(self, stmt: ast.AST, env: Env) -> Env:
        env = dict(env)
        if isinstance(stmt, ast.Assign):
            self._bind_targets(stmt.targets, stmt.value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind_targets([stmt.target], stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            # In-place on the object already bound: aliases unchanged
            # for attributes/subscripts; a plain name may rebind (int
            # ``+=``), so it degrades to unknown.
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = UNKNOWN
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_unknown(stmt.target, env)
        elif isinstance(stmt, (ast.While, ast.If, ast.Match)):
            pass  # header only; bodies transfer in their own blocks
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_unknown(item.optional_vars, env)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env[stmt.name] = UNKNOWN
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                env[(alias.asname or alias.name).split(".")[0]] = UNKNOWN
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return env

    def _bind_targets(
        self, targets: list[ast.expr], value: ast.expr, env: Env
    ) -> None:
        values: Values | None = None
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._bind_unpack(target, value, env)
                continue
            if values is None:
                values = self.classify(value, env)
            self._bind_one(target, values, env)

    def _bind_unpack(
        self, target: ast.Tuple | ast.List, value: ast.expr, env: Env
    ) -> None:
        elements = target.elts
        if (
            isinstance(value, (ast.Tuple, ast.List))
            and len(value.elts) == len(elements)
            and not any(isinstance(e, ast.Starred) for e in elements)
            and not any(isinstance(e, ast.Starred) for e in value.elts)
        ):
            for element, element_value in zip(elements, value.elts):
                self._bind_one(element, self.classify(element_value, env), env)
            return
        for element in elements:
            self._bind_unknown(element, env)

    def _bind_one(self, target: ast.expr, values: Values, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = values
        elif isinstance(target, ast.Attribute):
            env[f"attr:{target.attr}"] = values
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_unknown(element, env)
        elif isinstance(target, ast.Starred):
            self._bind_unknown(target.value, env)
        # Subscript targets mutate, they do not rebind: no env change.

    def _bind_unknown(self, target: ast.expr, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = UNKNOWN
        elif isinstance(target, ast.Attribute):
            env[f"attr:{target.attr}"] = UNKNOWN
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_unknown(element, env)
        elif isinstance(target, ast.Starred):
            self._bind_unknown(target.value, env)


# -- call-graph helpers ----------------------------------------------------


def function_defs(node: ast.AST) -> Iterator[FunctionNode]:
    """Every (async) function definition anywhere under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child


def class_methods(cls: ast.ClassDef) -> dict[str, FunctionNode]:
    """Directly declared methods of a class body (no nesting)."""
    methods: dict[str, FunctionNode] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = stmt
    return methods


def _self_calls(func: FunctionNode) -> set[str]:
    """Names of ``self.<m>(...)`` methods invoked inside ``func``."""
    called: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            called.add(node.func.attr)
    return called


def constructor_only_methods(cls: ast.ClassDef) -> set[str]:
    """Methods reachable only through ``__init__`` (freeze-time builders).

    A method is constructor-only iff every ``self.``-call site naming it
    sits in ``__init__`` or in another constructor-only method, and it
    has at least one such site.  ``FrozenGraph._build_columns`` →
    ``_build_person_columns`` chains resolve in a couple of fixpoint
    rounds; a method also called from a public mutator drops out.
    """
    methods = class_methods(cls)
    callers: dict[str, set[str]] = {name: set() for name in methods}
    for name, func in methods.items():
        for callee in _self_calls(func):
            if callee in callers:
                callers[callee].add(name)
    constructor_only = {
        name
        for name in methods
        if name != "__init__" and callers[name] and callers[name] <= {"__init__"}
    }
    changed = True
    while changed:
        changed = False
        allowed = constructor_only | {"__init__"}
        for name in methods:
            if name == "__init__" or name in constructor_only:
                continue
            if callers[name] and callers[name] <= allowed:
                constructor_only.add(name)
                changed = True
    return constructor_only


def module_functions(tree: ast.Module) -> dict[str, FunctionNode]:
    """Top-level function definitions of a module, by name."""
    functions: dict[str, FunctionNode] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[stmt.name] = stmt
    return functions


def transitive_local_callees(
    functions: dict[str, FunctionNode], roots: set[str]
) -> set[str]:
    """``roots`` plus every module-local function they (transitively)
    call by bare name — how R7 attributes helper bodies to runners."""
    reached = set(roots) & set(functions)
    work = list(reached)
    while work:
        name = work.pop()
        for node in ast.walk(functions[name]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in functions
                and node.func.id not in reached
            ):
                reached.add(node.func.id)
                work.append(node.func.id)
    return reached
