"""Diagnostic records and output formatting for the lint checker."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a source location."""

    path: str
    line: int
    col: int
    #: Rule family, e.g. ``"R2"`` (``"R0"`` for checker-level problems).
    rule: str
    #: Stable violation slug, also the suppression token
    #: (``# lint: allow-<slug> <reason>``).
    slug: str
    message: str


def format_diagnostic(diag: Diagnostic, fmt: str = "text") -> str:
    """Render a diagnostic as ``text`` or GitHub Actions ``github``.

    The ``github`` format emits workflow annotation commands, so CI
    findings become clickable file/line markers on the pull request.
    """
    if fmt == "github":
        return (
            f"::error file={diag.path},line={diag.line},"
            f"col={diag.col},title={diag.rule} {diag.slug}::{diag.message}"
        )
    return (
        f"{diag.path}:{diag.line}:{diag.col}: "
        f"{diag.rule}[{diag.slug}] {diag.message}"
    )
