"""The rule registry: every enabled benchmark-invariant rule."""

from __future__ import annotations

from repro.lint.base import Rule
from repro.lint.rules_aliasing import check_snapshot_aliasing
from repro.lint.rules_contracts import check_query_contracts
from repro.lint.rules_determinism import (
    check_clock_and_random,
    check_unordered_return,
)
from repro.lint.rules_engine import check_engine_discipline
from repro.lint.rules_fork import check_fork_safety
from repro.lint.rules_obs import check_obs_discipline
from repro.lint.rules_ordering import check_total_order_sorts

#: All rules, in report order.  Each is a pure function of one
#: :class:`repro.lint.base.FileContext`; suppression filtering happens
#: afterwards in the checker, so rules never consult the index.
ALL_RULES: tuple[Rule, ...] = (
    check_clock_and_random,
    check_unordered_return,
    check_engine_discipline,
    check_query_contracts,
    check_total_order_sorts,
    check_obs_discipline,
    check_snapshot_aliasing,
    check_fork_safety,
)

#: Rule family -> the checkers implementing it, for ``--select``.
RULES_BY_FAMILY: dict[str, tuple[Rule, ...]] = {
    "R1": (check_clock_and_random, check_unordered_return),
    "R2": (check_engine_discipline,),
    "R3": (check_query_contracts,),
    "R4": (check_total_order_sorts,),
    "R5": (check_obs_discipline,),
    "R6": (check_snapshot_aliasing,),
    "R7": (check_fork_safety,),
}


def rules_for(families: "list[str] | tuple[str, ...]") -> tuple[Rule, ...]:
    """The checkers for a ``--select`` family list (e.g. ``["R6", "R7"]``).

    Raises :class:`KeyError` for an unknown family so the CLI can report
    a usage error instead of silently checking nothing.
    """
    selected: list[Rule] = []
    for family in families:
        for rule in RULES_BY_FAMILY[family]:
            if rule not in selected:
                selected.append(rule)
    return tuple(selected)
