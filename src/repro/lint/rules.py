"""The rule registry: every enabled benchmark-invariant rule."""

from __future__ import annotations

from repro.lint.base import Rule
from repro.lint.rules_contracts import check_query_contracts
from repro.lint.rules_determinism import (
    check_clock_and_random,
    check_unordered_return,
)
from repro.lint.rules_engine import check_engine_discipline
from repro.lint.rules_obs import check_obs_discipline
from repro.lint.rules_ordering import check_total_order_sorts

#: All rules, in report order.  Each is a pure function of one
#: :class:`repro.lint.base.FileContext`; suppression filtering happens
#: afterwards in the checker, so rules never consult the index.
ALL_RULES: tuple[Rule, ...] = (
    check_clock_and_random,
    check_unordered_return,
    check_engine_discipline,
    check_query_contracts,
    check_total_order_sorts,
    check_obs_discipline,
)
