"""R4 — total-order sorts.

The spec fixes every query's result order completely; ties broken by
dict insertion order or heap arrival order reproduce on one machine and
diverge on the next.  The convention in this repo is that every sort key
in query code ends in a unique-identifier tie-breaker (an ``id`` or a
spec-unique ``name`` field), so equal aggregate values still order the
same everywhere.

This is a heuristic, so it reads the *last* component of the key:

* ``key=lambda r: (-r.count, r.person_id)`` — terminal ``person_id``,
  accepted;
* ``key=lambda r: (-r.count, r.month)`` — terminal ``month``, flagged;
* ``key=lambda t: t[0]`` — opaque (the tuple's composition is invisible
  at the sort site), flagged.

Keys built with :func:`repro.engine.operators.sort_key` are unpacked the
same way: the terminal is the value of the last ``(value, descending)``
pair.  Sort sites whose order is genuinely total for another reason
(e.g. the terminal component is the group-by key, unique per row)
carry ``# lint: allow-partial-order <why the order is total>``.
Slug: ``partial-order``.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import FileContext
from repro.lint.diagnostics import Diagnostic

RULE = "R4"
SLUG = "partial-order"

#: Terminal key components accepted as unique tie-breakers: ``id``,
#: ``person_id``, ``tag_ids`` … and spec-unique ``*name*`` fields.
UNIQUE_RE = re.compile(r"(?:^|_)(?:ids?|name)(?:_|$)")


def check_total_order_sorts(ctx: FileContext) -> list[Diagnostic]:
    if not ctx.in_queries:
        return []
    found: list[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        site = _sort_site_name(node)
        if site is None:
            continue
        key = _keyword(node, "key")
        if key is None:
            continue
        problem = _key_problem(key)
        if problem is not None:
            found.append(
                ctx.diagnostic(
                    key, RULE, SLUG,
                    f"{site} key {problem}; end the key in a unique-id "
                    "tie-breaker, or add '# lint: allow-partial-order "
                    "<why the order is total>'",
                )
            )
    return found


def _sort_site_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name) and call.func.id in ("sorted", "top_k"):
        return f"{call.func.id}()"
    if isinstance(call.func, ast.Attribute) and call.func.attr == "sort":
        return ".sort()"
    return None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _key_problem(key: ast.expr) -> str | None:
    """Why the key is not visibly total, or None if it is."""
    if not isinstance(key, ast.Lambda):
        return "is not a lambda, so its tie-breaking cannot be checked"
    terminal = _terminal_component(key.body)
    if terminal is None:
        return "has an opaque terminal component"
    name = _component_name(terminal)
    if name is None:
        return (
            f"ends in an opaque expression "
            f"({ast.unparse(terminal)}), not a named field"
        )
    if not UNIQUE_RE.search(name):
        return f"ends in '{name}', which is not a unique identifier"
    return None


def _terminal_component(body: ast.expr) -> ast.expr | None:
    """Last ordering component of a key expression."""
    # sort_key((value, desc), (value, desc), ...): last pair's value.
    if (
        isinstance(body, ast.Call)
        and isinstance(body.func, ast.Name)
        and body.func.id == "sort_key"
        and body.args
    ):
        last = body.args[-1]
        if isinstance(last, ast.Tuple) and last.elts:
            return _strip_negation(last.elts[0])
        return None
    if isinstance(body, ast.Tuple):
        if not body.elts:
            return None
        return _strip_negation(body.elts[-1])
    return _strip_negation(body)


def _strip_negation(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return node


def _component_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
