"""``repro.lint`` — AST-based benchmark-invariant checker.

The LDBC auditing rules (spec section 7) demand properties that unit
tests cannot economically pin down for every future query: runs must be
deterministic, every query's declared metadata must match what the code
does, and all result orderings must be total.  This package checks those
invariants *statically*, so a refactor that reintroduces unseeded
randomness or bypasses the instrumented operator layer fails CI before
it can silently skew benchmark results.

Rules (see ``docs/LINTING.md`` for rationale and examples):

* **R1 determinism** — no wall-clock reads or stdlib ``random`` outside
  :mod:`repro.util.rng`; no result lists built by iterating unordered
  collections without an ordering step.
* **R2 engine discipline** — query modules compose
  :mod:`repro.engine` operators instead of touching the store's private
  indexes or iterating its raw entity/relation tables.
* **R3 query contracts** — each BI/IC module's ``INFO`` metadata
  (number, choke points, limit), row type and entry-point signature
  agree with the spec transcriptions.
* **R4 total-order sorts** — every sort key ends in a unique-id
  tie-breaker (heuristic, suppressible).

Run with ``python -m repro.lint src`` (exit 0 clean / 1 violations /
2 usage error) or through ``tests/test_lint.py``.
"""

from repro.lint.checker import lint_paths, lint_source
from repro.lint.diagnostics import Diagnostic, format_diagnostic
from repro.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "format_diagnostic",
    "lint_paths",
    "lint_source",
]
