"""``repro.lint`` — AST/dataflow benchmark-invariant checker.

The LDBC auditing rules (spec section 7) demand properties that unit
tests cannot economically pin down for every future query: runs must be
deterministic, every query's declared metadata must match what the code
does, and all result orderings must be total.  This package checks those
invariants *statically*, so a refactor that reintroduces unseeded
randomness or bypasses the instrumented operator layer fails CI before
it can silently skew benchmark results.

Rules (see ``docs/LINTING.md`` for rationale and examples):

* **R1 determinism** — no wall-clock reads or stdlib ``random`` outside
  :mod:`repro.util.rng`; no result lists built by iterating unordered
  collections without an ordering step.
* **R2 engine discipline** — query modules compose
  :mod:`repro.engine` operators instead of touching the store's private
  indexes or iterating its raw entity/relation tables.
* **R3 query contracts** — each BI/IC module's ``INFO`` metadata
  (number, choke points, limit), row type and entry-point signature
  agree with the spec transcriptions.
* **R4 total-order sorts** — every sort key ends in a unique-id
  tie-breaker (heuristic, suppressible).
* **R5 observability discipline** — span/metric usage stays inside the
  sanctioned :mod:`repro.obs` surfaces.
* **R6 snapshot-aliasing discipline** — live store tables and frozen
  column families are mutated in place, never rebound, and frozen
  views never mutate adopted base state (flow-sensitive, built on the
  CFG/alias layer in :mod:`repro.lint.flow`).
* **R7 fork/worker safety** — task runners write no shared module
  state outside the metrics delta protocol, and pool submissions carry
  snapshots, never live stores.

Run with ``python -m repro.lint src`` (exit 0 clean / 1 violations /
2 usage error), audit the waiver inventory with
``python -m repro.lint src --audit-suppressions``, or go through
``tests/test_lint.py``.
"""

from repro.lint.checker import audit_paths, audit_source, lint_paths, lint_source
from repro.lint.diagnostics import Diagnostic, format_diagnostic
from repro.lint.rules import ALL_RULES, RULES_BY_FAMILY, rules_for

__all__ = [
    "ALL_RULES",
    "RULES_BY_FAMILY",
    "Diagnostic",
    "audit_paths",
    "audit_source",
    "format_diagnostic",
    "lint_paths",
    "lint_source",
    "rules_for",
]
