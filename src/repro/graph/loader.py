"""Bulk loader: read a CsvBasic dataset directory into a SocialGraph.

Implements the SUT's load phase (spec section 6.1.3): every file of the
CsvBasic serializer (Table 2.13) is parsed and loaded; nothing may be
filtered out.  The loader is the round-trip counterpart of
:class:`repro.datagen.serializers.CsvBasicSerializer` and is validated
against it by the integration tests.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path

from repro.graph.store import SocialGraph
from repro.schema.entities import (
    Comment,
    Forum,
    ForumKind,
    Organisation,
    OrganisationType,
    Person,
    Place,
    PlaceType,
    Post,
    Tag,
    TagClass,
)
from repro.schema.relations import HasMember, Knows, Likes, StudyAt, WorkAt
from repro.util.dates import parse_date, parse_datetime


def _rows(directory: Path, name: str):
    """Parse one logical CsvBasic file — all of its thread parts
    (``<name>_0_<part>.csv``) in part order — skipping headers."""
    paths = sorted(directory.glob(f"{name}_0_*.csv"))
    if not paths:
        raise FileNotFoundError(directory / f"{name}_0_0.csv")
    for path in paths:
        with open(path, newline="") as handle:
            reader = csv.reader(handle, delimiter="|")
            next(reader, None)
            yield from reader


def _forum_kind(title: str) -> ForumKind:
    if title.startswith("Wall"):
        return ForumKind.WALL
    if title.startswith("Album"):
        return ForumKind.ALBUM
    return ForumKind.GROUP


def load_csv_basic(dataset_dir: Path | str, use_indexes: bool = True) -> SocialGraph:
    """Load a ``social_network/`` directory written by CsvBasic."""
    root = Path(dataset_dir)
    static = root / "static"
    dynamic = root / "dynamic"
    graph = SocialGraph(use_indexes=use_indexes)

    # -- static part -----------------------------------------------------
    part_of = {
        int(child): int(parent)
        for child, parent in _rows(static, "place_isPartOf_place")
    }
    for row in _rows(static, "place"):
        place_id = int(row[0])
        graph.add_place(
            Place(
                place_id, row[1], row[2], PlaceType(row[3]),
                part_of.get(place_id, -1),
            )
        )
    org_place = {
        int(org): int(place)
        for org, place in _rows(static, "organisation_isLocatedIn_place")
    }
    for row in _rows(static, "organisation"):
        org_id = int(row[0])
        graph.add_organisation(
            Organisation(
                org_id, OrganisationType(row[1]), row[2], row[3],
                org_place.get(org_id, -1),
            )
        )
    subclass = {
        int(child): int(parent)
        for child, parent in _rows(static, "tagclass_isSubclassOf_tagclass")
    }
    for row in _rows(static, "tagclass"):
        class_id = int(row[0])
        graph.add_tag_class(
            TagClass(class_id, row[1], row[2], subclass.get(class_id, -1))
        )
    tag_type = {
        int(tag): int(cls) for tag, cls in _rows(static, "tag_hasType_tagclass")
    }
    for row in _rows(static, "tag"):
        tag_id = int(row[0])
        graph.add_tag(Tag(tag_id, row[1], row[2], tag_type.get(tag_id, -1)))

    # -- persons -----------------------------------------------------------
    emails = defaultdict(list)
    for person_id, email in _rows(dynamic, "person_email_emailaddress"):
        emails[int(person_id)].append(email)
    speaks = defaultdict(list)
    for person_id, language in _rows(dynamic, "person_speaks_language"):
        speaks[int(person_id)].append(language)
    interests = defaultdict(list)
    for person_id, tag_id in _rows(dynamic, "person_hasInterest_tag"):
        interests[int(person_id)].append(int(tag_id))
    cities = {
        int(person): int(place)
        for person, place in _rows(dynamic, "person_isLocatedIn_place")
    }
    for row in _rows(dynamic, "person"):
        person_id = int(row[0])
        graph.add_person(
            Person(
                id=person_id,
                first_name=row[1],
                last_name=row[2],
                gender=row[3],
                birthday=parse_date(row[4]),
                creation_date=parse_datetime(row[5]),
                location_ip=row[6],
                browser_used=row[7],
                city_id=cities[person_id],
                emails=emails.get(person_id, []),
                speaks=speaks.get(person_id, []),
                interests=interests.get(person_id, []),
            )
        )
    for row in _rows(dynamic, "person_studyAt_organisation"):
        graph.add_study_at(StudyAt(int(row[0]), int(row[1]), int(row[2])))
    for row in _rows(dynamic, "person_workAt_organisation"):
        graph.add_work_at(WorkAt(int(row[0]), int(row[1]), int(row[2])))
    for row in _rows(dynamic, "person_knows_person"):
        graph.add_knows(Knows(int(row[0]), int(row[1]), parse_datetime(row[2])))

    # -- forums ------------------------------------------------------------
    moderators = {
        int(forum): int(person)
        for forum, person in _rows(dynamic, "forum_hasModerator_person")
    }
    forum_tags = defaultdict(list)
    for forum_id, tag_id in _rows(dynamic, "forum_hasTag_tag"):
        forum_tags[int(forum_id)].append(int(tag_id))
    for row in _rows(dynamic, "forum"):
        forum_id = int(row[0])
        graph.add_forum(
            Forum(
                id=forum_id,
                title=row[1],
                creation_date=parse_datetime(row[2]),
                moderator_id=moderators[forum_id],
                kind=_forum_kind(row[1]),
                tag_ids=forum_tags.get(forum_id, []),
            )
        )
    for row in _rows(dynamic, "forum_hasMember_person"):
        graph.add_membership(
            HasMember(int(row[0]), int(row[1]), parse_datetime(row[2]))
        )

    # -- messages ------------------------------------------------------------
    post_creator = {
        int(post): int(person)
        for post, person in _rows(dynamic, "post_hasCreator_person")
    }
    post_forum = {
        int(post): int(forum)
        for forum, post in _rows(dynamic, "forum_containerOf_post")
    }
    post_place = {
        int(post): int(place)
        for post, place in _rows(dynamic, "post_isLocatedIn_place")
    }
    post_tags = defaultdict(list)
    for post_id, tag_id in _rows(dynamic, "post_hasTag_tag"):
        post_tags[int(post_id)].append(int(tag_id))
    for row in _rows(dynamic, "post"):
        post_id = int(row[0])
        graph.add_post(
            Post(
                id=post_id,
                creation_date=parse_datetime(row[2]),
                location_ip=row[3],
                browser_used=row[4],
                content=row[6],
                length=int(row[7]),
                creator_id=post_creator[post_id],
                forum_id=post_forum[post_id],
                country_id=post_place[post_id],
                language=row[5],
                image_file=row[1],
                tag_ids=post_tags.get(post_id, []),
            )
        )

    comment_creator = {
        int(comment): int(person)
        for comment, person in _rows(dynamic, "comment_hasCreator_person")
    }
    comment_place = {
        int(comment): int(place)
        for comment, place in _rows(dynamic, "comment_isLocatedIn_place")
    }
    reply_of_post = {
        int(comment): int(post)
        for comment, post in _rows(dynamic, "comment_replyOf_post")
    }
    reply_of_comment = {
        int(comment): int(parent)
        for comment, parent in _rows(dynamic, "comment_replyOf_comment")
    }
    comment_tags = defaultdict(list)
    for comment_id, tag_id in _rows(dynamic, "comment_hasTag_tag"):
        comment_tags[int(comment_id)].append(int(tag_id))

    # Comments may reply to other comments; insertion requires parents to
    # exist only for index integrity, which add_comment does not enforce,
    # so a single pass in file order suffices (datagen emits causally
    # ordered ids).
    for row in _rows(dynamic, "comment"):
        comment_id = int(row[0])
        graph.add_comment(
            Comment(
                id=comment_id,
                creation_date=parse_datetime(row[1]),
                location_ip=row[2],
                browser_used=row[3],
                content=row[4],
                length=int(row[5]),
                creator_id=comment_creator[comment_id],
                country_id=comment_place[comment_id],
                reply_of_post=reply_of_post.get(comment_id, -1),
                reply_of_comment=reply_of_comment.get(comment_id, -1),
                tag_ids=comment_tags.get(comment_id, []),
            )
        )

    for row in _rows(dynamic, "person_likes_post"):
        graph.add_like(
            Likes(int(row[0]), int(row[1]), parse_datetime(row[2]), True)
        )
    for row in _rows(dynamic, "person_likes_comment"):
        graph.add_like(
            Likes(int(row[0]), int(row[1]), parse_datetime(row[2]), False)
        )
    return graph
