"""Delta overlay: reads that survive writes without a full refreeze.

The BI workload's defining trait is *concurrent refreshes*: reads
interleave with daily insert/delete microbatches.  Until this module,
any single mutator bumped ``SocialGraph.write_version`` and discarded
the whole :class:`~repro.graph.frozen.FrozenGraph`, so every microbatch
paid a full columnar rebuild.  The delta overlay is the standard
LSM-style answer: keep the immutable snapshot, record the writes since
freeze time as per-family *inserts* and *tombstones*, and merge them at
read time.

* :class:`DeltaOverlay` — the write-side record.  ``SocialGraph``
  mutators feed it through a registered write-hook
  (:meth:`SocialGraph.register_delta_hook`): one ``(family, op, key,
  entity)`` event per logical row touched, across the seven dynamic
  families (persons, knows, likes, memberships, posts, comments,
  forums).  Deletes always tombstone (a tombstone for a key the base
  snapshot never held is a harmless no-op in the merge); an insert
  after a delete of the same key keeps the tombstone, so the *base*
  row stays filtered while the fresh row merges in from the insert
  map.  Alongside the raw maps the overlay maintains the derived dirty
  sets the read side keys its fallbacks on (tags and forums with
  message churn, persons with knows churn).

* :class:`OverlaidGraph` — the read-side merge view.  A
  :class:`FrozenGraph` subclass that adopts the base snapshot's columns
  by reference (building one costs a dict copy, never a rebuild) and
  re-points the column-backed accessors at a per-key decision: keys
  untouched by the overlay serve from the frozen columns; dirty keys
  fall back to the live ``SocialGraph`` implementations — which are
  *always current*, because a snapshot shares the live store's entity
  tables and adjacency indexes by reference.  The engine's operator
  fast paths (``scan_messages`` date-bisect, ``expand`` CSR walks) do
  the same per-slab: filter base rows through the tombstone sets and
  merge the date-windowed overlay inserts, under the same operator
  counters as the clean frozen path.

Compaction — folding the overlay into a fresh snapshot — is the
:class:`~repro.graph.frozen.FreezeManager`'s job: it refreezes when the
overlay outgrows :func:`resolve_compact_fraction` of the base row
count (``REPRO_DELTA_COMPACT_FRACTION``, default 0.25; ``0.0``
degenerates to the old refreeze-per-batch behaviour).

Query code must not import this module (lint R2, slug
``frozen-import``) for the same reason it must not import
``repro.graph.frozen``: the overlay is an engine-level storage detail,
and queries stay representation-agnostic.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterator

from repro.graph.frozen import FrozenGraph
from repro.graph.store import SocialGraph
from repro.schema.entities import Message, Post
from repro.util.dates import DateTime

__all__ = [
    "FAMILIES",
    "DeltaOverlay",
    "OverlaidGraph",
    "resolve_compact_fraction",
]

#: The dynamic row families the overlay tracks, in gauge-label order.
FAMILIES = (
    "persons", "knows", "likes", "memberships",
    "posts", "comments", "forums",
)

#: The write-hook signature mutators call: (family, op, key, entity).
DeltaHook = Callable[[str, str, object, object], None]

_MESSAGE_FAMILY = {"post": "posts", "comment": "comments"}


class DeltaOverlay:
    """Per-family inserts and tombstones since the last freeze.

    ``record`` is the write-hook :class:`SocialGraph` mutators call; the
    read side (engine operators and :class:`OverlaidGraph`) consumes
    the maps and the derived dirty sets.  Keys are the stores' natural
    ones: entity ids for persons/posts/comments/forums, the canonical
    ``(min, max)`` endpoint pair for knows, ``(person, message)`` for
    likes and ``(forum, person)`` for memberships.
    """

    def __init__(self) -> None:
        self.inserts: dict[str, dict[object, object]] = {
            family: {} for family in FAMILIES
        }
        self.tombstones: dict[str, set[object]] = {
            family: set() for family in FAMILIES
        }
        #: Tags whose postings saw message churn — the tag-window
        #: accessor falls back to the (current) live postings index.
        self.dirty_tags: set[int] = set()
        #: Forums with post churn or themselves inserted/deleted.
        self.dirty_forums: set[int] = set()
        #: Persons whose knows adjacency changed — the CSR expand walks
        #: the live ``_friends`` row for exactly these sources.
        self.knows_dirty_persons: set[int] = set()
        #: Monotonic event count; 0 iff the overlay is empty.  Also the
        #: sorted-window cache's invalidation stamp.
        self.version = 0
        self._window_cache: dict[str, tuple[list[Message], list[DateTime]]] = {}

    # -- write side ----------------------------------------------------

    def record(
        self, family: str, op: str, key: object, entity: object = None
    ) -> None:
        """Record one mutator event (``op`` is ``insert`` or ``delete``).

        A delete always tombstones — even when it cancels an overlay
        insert — because the same key may also exist in the base
        snapshot (delete-then-reinsert keeps the base row filtered
        while the reinserted row rides the insert map).
        """
        self.version += 1
        if op == "insert":
            self.inserts[family][key] = entity
        else:
            self.inserts[family].pop(key, None)
            self.tombstones[family].add(key)
        if family == "knows":
            self.knows_dirty_persons.update(key)  # type: ignore[arg-type]
        elif family == "forums":
            self.dirty_forums.add(key)  # type: ignore[arg-type]
        elif family == "posts" or family == "comments":
            self._window_cache.pop(family, None)
            message = entity
            if isinstance(message, Message):
                self.dirty_tags.update(message.tag_ids)
                if isinstance(message, Post):
                    self.dirty_forums.add(message.forum_id)

    def replay_into(self, store: SocialGraph) -> None:
        """Re-apply the recorded writes to a rebuilt entity ``store``
        (the worker half of the self-contained ship path: the snapfile
        entity section reproduces freeze-time state; this reproduces
        the post-freeze writes the overlay carries).

        Deletes run first — a delete-then-reinsert must land the fresh
        row, and the insert maps never hold a row that a later event
        tombstoned (``record`` pops it).  Replaying a cascade's root
        alongside its already-cascaded children is safe because the
        store mutators individually recorded every cascaded key (the
        tombstone closure) and deletes are no-ops for absent rows.
        Inserts replay in foreign-key order (persons before knows and
        forums, containers before messages, messages before likes);
        within a family the insert map is chronological, so every
        ``add_*`` precondition holds by construction."""
        for person_id in self.tombstones["persons"]:
            store.delete_person(person_id)  # type: ignore[arg-type]
        for forum_id in self.tombstones["forums"]:
            store.delete_forum(forum_id)  # type: ignore[arg-type]
        for message_id in self.tombstones["posts"]:
            store.delete_post(message_id)  # type: ignore[arg-type]
        for message_id in self.tombstones["comments"]:
            store.delete_comment(message_id)  # type: ignore[arg-type]
        for pair in self.tombstones["knows"]:
            store.delete_knows(*pair)  # type: ignore[misc]
        for pair in self.tombstones["memberships"]:
            store.delete_membership(*pair)  # type: ignore[misc]
        for pair in self.tombstones["likes"]:
            store.delete_like(*pair)  # type: ignore[misc]
        for person in self.inserts["persons"].values():
            store.add_person(person)  # type: ignore[arg-type]
        for edge in self.inserts["knows"].values():
            store.add_knows(edge)  # type: ignore[arg-type]
        for forum in self.inserts["forums"].values():
            store.add_forum(forum)  # type: ignore[arg-type]
        for membership in self.inserts["memberships"].values():
            store.add_membership(membership)  # type: ignore[arg-type]
        for post in self.inserts["posts"].values():
            store.add_post(post)  # type: ignore[arg-type]
        for comment in self.inserts["comments"].values():
            store.add_comment(comment)  # type: ignore[arg-type]
        for like in self.inserts["likes"].values():
            store.add_like(like)  # type: ignore[arg-type]

    def clear(self) -> None:
        """Drop everything — the snapshot was just (re)built."""
        for family in FAMILIES:
            self.inserts[family].clear()
            self.tombstones[family].clear()
        self.dirty_tags.clear()
        self.dirty_forums.clear()
        self.knows_dirty_persons.clear()
        self.version = 0
        self._window_cache.clear()

    # -- read side -----------------------------------------------------

    def is_empty(self) -> bool:
        return self.version == 0

    def dirty(self, family: str) -> bool:
        return bool(self.inserts[family] or self.tombstones[family])

    def rows(self, family: str) -> int:
        return len(self.inserts[family])

    def tombstone_count(self, family: str) -> int:
        return len(self.tombstones[family])

    def total_rows(self) -> int:
        """Outstanding overlay size (insert rows plus tombstones) — the
        quantity the FreezeManager's compaction threshold bounds."""
        return sum(len(self.inserts[f]) for f in FAMILIES) + sum(
            len(self.tombstones[f]) for f in FAMILIES
        )

    def messages_dirty(self, kind: str | None) -> bool:
        """Whether a ``kind``-restricted message scan must merge."""
        if kind != "comment" and self.dirty("posts"):
            return True
        if kind != "post" and self.dirty("comments"):
            return True
        return False

    def message_gone(self, message_id: int) -> bool:
        return (
            message_id in self.tombstones["posts"]
            or message_id in self.tombstones["comments"]
        )

    def person_gone(self, person_id: int) -> bool:
        return person_id in self.tombstones["persons"]

    def message_tombstones(self, kind: str) -> set[object]:
        """The tombstone key set for one message slab kind."""
        return self.tombstones[_MESSAGE_FAMILY[kind]]

    def window_messages(
        self, kind: str, start: DateTime | None, end: DateTime | None
    ) -> list[Message]:
        """Overlay-inserted messages of ``kind`` with creationDate in
        ``[start, end)``, sorted by ``(creationDate, id)`` — the merge
        input for the engine's frozen window scan.  The sorted list is
        cached until the family next changes."""
        family = _MESSAGE_FAMILY[kind]
        cached = self._window_cache.get(family)
        if cached is None:
            objs = sorted(
                (
                    m
                    for m in self.inserts[family].values()
                    if isinstance(m, Message)
                ),
                key=lambda m: (m.creation_date, m.id),
            )
            dates = [m.creation_date for m in objs]
            cached = self._window_cache[family] = (objs, dates)
        objs, dates = cached
        lo = 0 if start is None else bisect_left(dates, start)
        hi = len(dates) if end is None else bisect_left(dates, end)
        return objs[lo:hi]


class OverlaidGraph(FrozenGraph):
    """A frozen snapshot merged with its delta overlay at read time.

    Construction adopts the base snapshot's ``__dict__`` (columns,
    shared live tables, everything) by reference — no column is
    rebuilt.  Every column-backed accessor then routes per key: clean
    keys serve from the frozen columns exactly like the base snapshot;
    keys the overlay dirtied fall back to the inherited live
    ``SocialGraph`` implementations, which read the shared (and
    therefore current) entity tables and adjacency indexes.  Row-level
    equivalence with the live store is the delta differential suite's
    acceptance bar (``tests/test_delta_overlay.py``).

    Mutators raise exactly like any :class:`FrozenGraph`; writes go to
    the live store and reach readers through the overlay.
    """

    def __init__(self, base: FrozenGraph, overlay: DeltaOverlay):
        if not isinstance(base, FrozenGraph):
            raise TypeError("OverlaidGraph wraps a FrozenGraph snapshot")
        # Deliberately skip FrozenGraph.__init__: adopt the built
        # columns by reference instead of rebuilding them.
        self.__dict__.update(base.__dict__)
        self.base_snapshot = base
        self.delta_overlay: DeltaOverlay = overlay

    # -- per-key merge/fallback accessors ------------------------------

    def messages_with_tag_in_window(
        self,
        tag_id: int,
        start: DateTime | None = None,
        end: DateTime | None = None,
    ) -> Iterator[Message]:
        if tag_id in self.delta_overlay.dirty_tags:
            # The live tag postings list is shared and maintained by
            # every message insert/delete — bisects just like the
            # frozen column, over current rows.
            return SocialGraph.messages_with_tag_in_window(
                self, tag_id, start, end
            )
        return FrozenGraph.messages_with_tag_in_window(
            self, tag_id, start, end
        )

    def posts_in_forum_window(
        self,
        forum_id: int,
        start: DateTime | None = None,
        end: DateTime | None = None,
    ) -> Iterator[Post]:
        if forum_id in self.delta_overlay.dirty_forums:
            return SocialGraph.posts_in_forum_window(
                self, forum_id, start, end
            )
        return FrozenGraph.posts_in_forum_window(self, forum_id, start, end)

    def root_post_of(self, message: Message) -> Post:
        ordinal = self._msg_ord.get(message.id)
        if ordinal is not None and not self.delta_overlay.message_gone(
            message.id
        ):
            # A surviving base message always has a surviving base
            # ancestry (deletes cascade whole subtrees), so the frozen
            # root column stays exact for it.
            return self._msg_objs[  # type: ignore[return-value]
                self._root_ord[ordinal]
            ]
        return SocialGraph.root_post_of(self, message)

    def language_of_message(self, message: Message) -> str:
        ordinal = self._msg_ord.get(message.id)
        if ordinal is not None and not self.delta_overlay.message_gone(
            message.id
        ):
            return self._post_language[self._root_ord[ordinal]]
        return SocialGraph.language_of_message(self, message)

    def thread_messages(self, post: Post) -> Iterator[Message]:
        overlay = self.delta_overlay
        if (
            overlay.dirty("comments")
            or overlay.dirty("posts")
            or post.id not in self._msg_ord
        ):
            # Any message churn can grow or shrink a thread; the live
            # walk over the shared ``_replies_of`` index is current.
            return SocialGraph.thread_messages(self, post)
        return FrozenGraph.thread_messages(self, post)

    def persons_in_country(self, country_id: int) -> Iterator[int]:
        if self.delta_overlay.dirty("persons"):
            return SocialGraph.persons_in_country(self, country_id)
        return FrozenGraph.persons_in_country(self, country_id)

    def country_of_person(self, person_id: int) -> int:
        ordinal = self._person_ord.get(person_id)
        if ordinal is not None and not self.delta_overlay.person_gone(
            person_id
        ):
            return self._person_country[ordinal]
        # New person (not in the columns) or deleted person — the live
        # path also preserves the KeyError a deleted id must raise.
        return SocialGraph.country_of_person(self, person_id)


def resolve_compact_fraction(fraction: float | None) -> float:
    """Resolve the compaction threshold: an explicit value wins, else
    the ``REPRO_DELTA_COMPACT_FRACTION`` environment variable, else
    0.25.  The FreezeManager compacts (refreezes) when the overlay's
    outstanding rows exceed ``fraction`` of the base snapshot's row
    count; ``0.0`` therefore compacts on any write — the old
    refreeze-per-microbatch behaviour, kept as the benchmark baseline.
    """
    from repro.exec.snapshot import SnapshotConfig

    resolved = SnapshotConfig(compact_fraction=fraction).resolved()
    assert resolved.compact_fraction is not None
    return resolved.compact_fraction
