"""The reference System Under Test: an in-memory social-network graph
store with per-relation adjacency indexes (spec sections 2.1, 6.1.3).
"""

from repro.graph.store import SocialGraph

__all__ = ["SocialGraph"]
