"""In-memory graph store — the reference SUT.

The LDBC SNB spec deliberately does not prescribe an internal data
representation (section 2.3.2): any store exposing the logical schema is
a valid System Under Test.  This store keeps each entity type in a
dictionary keyed by id and maintains forward/backward adjacency indexes
per relation type, which is what both workloads' traversals need
(choke points CP-2.3 index-based joins, CP-3.3 scattered index access).

``use_indexes=False`` disables all adjacency acceleration and degrades
every traversal to a full scan of the relation — the FABL ablation
benchmark quantifies what the indexes buy.

The store supports the benchmark's two load paths:

* :meth:`SocialGraph.from_data` — bulk load from a generated
  :class:`~repro.datagen.generator.SocialNetworkData`, optionally
  truncated at the update-stream cutoff;
* the ``insert_*`` methods — the Interactive workload's updates
  (IU 1-8), applied by the driver from the update streams, maintaining
  every index incrementally.
"""

from __future__ import annotations

import copy
from bisect import bisect_left, insort
from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.schema.entities import (
    Comment,
    Forum,
    ForumKind,
    Message,
    Organisation,
    Person,
    Place,
    PlaceType,
    Post,
    Tag,
    TagClass,
)
from repro.schema.relations import HasMember, Knows, Likes, StudyAt, WorkAt
from repro.util.dates import DateTime, month_bucket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datagen.generator import SocialNetworkData

__all__ = ["SocialGraph"]


def _like_key(like: Likes) -> tuple[int, int]:
    return (like.person_id, like.message_id)


def _member_key(membership: HasMember) -> tuple[int, int]:
    return (membership.forum_id, membership.person_id)


def _study_key(record: StudyAt) -> int:
    return record.person_id


def _work_key(record: WorkAt) -> int:
    return record.person_id


def _swap_remove(table, pos_map, key, key_of, item) -> None:
    """Remove one ``key``-keyed row from ``table`` in O(1) via its
    position map (the same pattern as ``delete_knows``'s ``_knows_pos``).

    ``pos_map`` maps a key to the list of positions its rows occupy —
    a list, not a scalar, because likes/memberships admit value-distinct
    duplicates under one key.  The popped slot is filled by the table's
    last row, whose own position entry is repointed.  Table order is not
    part of the public contract (accessors return adjacency); callers
    that remove by key always remove *every* row of that key, so which
    duplicate leaves first is immaterial.  A missing map entry falls
    back to ``list.remove`` (correct, just linear).
    """
    positions = pos_map.get(key)
    if not positions:
        table.remove(item)
        return
    position = positions.pop()
    if not positions:
        del pos_map[key]
    moved = table.pop()
    last = len(table)
    if position == last:
        return
    table[position] = moved
    moved_positions = pos_map[key_of(moved)]
    moved_positions[moved_positions.index(last)] = position


class SocialGraph:
    """The loaded social network plus its adjacency indexes.

    The public surface is the entity/relation tables and the accessor
    methods; everything ``_``-prefixed is a secondary index whose layout
    may change between PRs.  Query modules additionally may not *iterate*
    the raw tables in :attr:`RAW_TABLES` — they scan through
    :mod:`repro.engine` so the work is instrumented (enforced statically
    by rule R2 of ``repro.lint``; point lookups like
    ``graph.persons[pid]`` remain fine).
    """

    #: Raw entity/relation tables (plus the ``messages()`` full-scan
    #: accessor) that are public for point access but off-limits to
    #: iterate from query code.  Mirrored by
    #: ``repro.lint.spec.RAW_STORE_COLLECTIONS``.
    RAW_TABLES: frozenset[str] = frozenset(
        {
            "places", "organisations", "tag_classes", "tags",
            "persons", "forums", "posts", "comments",
            "knows_edges", "likes_edges", "memberships",
            "study_at", "work_at",
            "messages",
        }
    )

    #: ``True`` only on :class:`repro.graph.frozen.FrozenGraph` — lets
    #: the engine pick columnar fast paths with one attribute check.
    is_frozen: bool = False

    def __init__(
        self,
        use_indexes: bool = True,
        use_date_index: bool = True,
        use_tag_index: bool = True,
    ):
        self.use_indexes = use_indexes
        #: Secondary-index ablation flags (benchmarks/test_ablations.py).
        #: ``use_indexes=False`` master-disables both regardless.
        self.use_date_index = use_date_index
        self.use_tag_index = use_tag_index
        #: Monotonic write counter: every mutator bumps it (cascading
        #: deletes bump it once per cascaded step — only change-vs-equal
        #: matters).  ``repro.graph.frozen.FreezeManager`` compares it to
        #: decide whether a frozen snapshot is stale.
        self.write_version = 0

        # Entity tables.
        self.places: dict[int, Place] = {}
        self.organisations: dict[int, Organisation] = {}
        self.tag_classes: dict[int, TagClass] = {}
        self.tags: dict[int, Tag] = {}
        self.persons: dict[int, Person] = {}
        self.forums: dict[int, Forum] = {}
        self.posts: dict[int, Post] = {}
        self.comments: dict[int, Comment] = {}

        # Relation tables (kept also in index-free form for ablations).
        self.knows_edges: list[Knows] = []
        self.likes_edges: list[Likes] = []
        self.memberships: list[HasMember] = []
        self.study_at: list[StudyAt] = []
        self.work_at: list[WorkAt] = []

        # Adjacency indexes.
        self._friends: dict[int, dict[int, DateTime]] = defaultdict(dict)
        self._posts_by_creator: dict[int, list[Post]] = defaultdict(list)
        self._comments_by_creator: dict[int, list[Comment]] = defaultdict(list)
        self._replies_of: dict[int, list[Comment]] = defaultdict(list)
        #: Tag postings list: tag id -> [(creationDate, message id), ...]
        #: kept sorted, so tag+date predicates bisect instead of filtering.
        self._messages_with_tag: dict[int, list[tuple[DateTime, int]]] = (
            defaultdict(list)
        )
        #: Messages-by-month bucket index: month ordinal -> message ids.
        #: month bucket -> {message id: Message}, split by kind so a
        #: kind-restricted window scan touches only that kind; holding
        #: the objects keeps the bucket scan free of per-id lookups.
        self._posts_by_month: dict[int, dict[int, Message]] = (
            defaultdict(dict)
        )
        self._comments_by_month: dict[int, dict[int, Message]] = (
            defaultdict(dict)
        )
        #: Forum posts ordered by date: forum id -> [(creationDate, post id)].
        self._forum_posts_by_date: dict[int, list[tuple[DateTime, int]]] = (
            defaultdict(list)
        )
        self._likes_of_message: dict[int, list[Likes]] = defaultdict(list)
        self._likes_by_person: dict[int, list[Likes]] = defaultdict(list)
        self._forums_of_member: dict[int, list[HasMember]] = defaultdict(list)
        self._members_of_forum: dict[int, list[HasMember]] = defaultdict(list)
        self._posts_in_forum: dict[int, list[Post]] = defaultdict(list)
        self._moderated_forums: dict[int, list[Forum]] = defaultdict(list)
        self._persons_in_city: dict[int, list[int]] = defaultdict(list)
        self._cities_of_country: dict[int, list[int]] = defaultdict(list)
        self._persons_interested: dict[int, list[int]] = defaultdict(list)
        self._study_at_of: dict[int, list[StudyAt]] = defaultdict(list)
        self._work_at_of: dict[int, list[WorkAt]] = defaultdict(list)
        self._tagclass_children: dict[int, list[int]] = defaultdict(list)
        self._tags_of_class: dict[int, list[int]] = defaultdict(list)
        self._forums_with_tag: dict[int, list[int]] = defaultdict(list)
        #: (person1, person2) -> position in ``knows_edges``; lets
        #: ``delete_knows`` swap-remove in O(degree) instead of
        #: rebuilding the whole edge list (``knows_edges`` order is not
        #: part of the public contract — accessors return adjacency).
        self._knows_pos: dict[tuple[int, int], int] = {}
        #: Position maps for the remaining relation lists, so every
        #: delete path swap-removes instead of linear-scanning: key ->
        #: positions (a list — likes and memberships admit duplicate
        #: keys with distinct values; study/work key on the person).
        self._likes_pos: dict[tuple[int, int], list[int]] = {}
        self._member_pos: dict[tuple[int, int], list[int]] = {}
        self._study_pos: dict[int, list[int]] = {}
        self._work_pos: dict[int, list[int]] = {}
        #: Delta write-hooks (``repro.graph.delta``): each registered
        #: callable receives one ``(family, op, key, entity)`` event per
        #: logical row a mutator touches.  Empty (zero-cost) unless a
        #: FreezeManager is attached.
        self._delta_hooks: list = []

        # Name lookups (query parameters are names for places/tags/classes).
        self._place_by_name: dict[tuple[str, PlaceType], int] = {}
        self._tag_by_name: dict[str, int] = {}
        self._tagclass_by_name: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Delta write-hooks
    # ------------------------------------------------------------------

    def register_delta_hook(self, hook) -> None:
        """Attach a write-hook called as ``hook(family, op, key,
        entity)`` for every dynamic-family row a mutator touches (the
        :class:`repro.graph.delta.DeltaOverlay` record feed).  Static
        entities (places, organisations, tag classes, tags) and the
        study/work records emit no events: no frozen column depends on
        them — their accessors read the shared live tables."""
        self._delta_hooks.append(hook)

    def unregister_delta_hook(self, hook) -> None:
        """Detach a previously registered write-hook (no-op if absent)."""
        try:
            self._delta_hooks.remove(hook)
        except ValueError:
            pass

    def _record_delta(self, family: str, op: str, key, entity=None) -> None:
        for hook in self._delta_hooks:
            hook(family, op, key, entity)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    @classmethod
    def from_data(
        cls,
        net: "SocialNetworkData",
        until: DateTime | None = None,
        use_indexes: bool = True,
        use_date_index: bool = True,
        use_tag_index: bool = True,
    ) -> "SocialGraph":
        """Bulk load a generated network.

        ``until`` truncates the dynamic part at a timestamp: only events
        with ``creationDate < until`` are loaded.  Datagen's timestamps
        are causally ordered (an entity is always created after
        everything it references), so a time-prefix is referentially
        consistent — this realizes the spec's 90 % bulk-load dataset
        when ``until`` is the update cutoff.
        """
        graph = cls(
            use_indexes=use_indexes,
            use_date_index=use_date_index,
            use_tag_index=use_tag_index,
        )
        for place in net.places:
            graph.add_place(place)
        for organisation in net.organisations:
            graph.add_organisation(organisation)
        for tag_class in net.tag_classes:
            graph.add_tag_class(tag_class)
        for tag in net.tags:
            graph.add_tag(tag)

        def included(creation: DateTime) -> bool:
            return until is None or creation < until

        person_ok = set()
        for person in net.persons:
            if included(person.creation_date):
                graph.add_person(person)
                person_ok.add(person.id)
        for record in net.study_at:
            if record.person_id in person_ok:
                graph.add_study_at(record)
        for record in net.work_at:
            if record.person_id in person_ok:
                graph.add_work_at(record)
        for edge in net.knows:
            if included(edge.creation_date):
                graph.add_knows(edge)
        forum_ok = set()
        for forum in net.forums:
            if included(forum.creation_date):
                # Forums are the one entity the store mutates in place
                # (a group's moderator is detached when the moderator is
                # deleted), so each graph gets its own copy — deleting in
                # one graph must not alter the network or sibling graphs.
                graph.add_forum(copy.copy(forum))
                forum_ok.add(forum.id)
        for membership in net.memberships:
            if included(membership.join_date) and membership.forum_id in forum_ok:
                graph.add_membership(membership)
        message_ok = set()
        for post in net.posts:
            if included(post.creation_date):
                graph.add_post(post)
                message_ok.add(post.id)
        for comment in net.comments:
            parent = (
                comment.reply_of_post
                if comment.reply_of_post >= 0
                else comment.reply_of_comment
            )
            if included(comment.creation_date) and parent in message_ok:
                graph.add_comment(comment)
                message_ok.add(comment.id)
        for like in net.likes:
            if included(like.creation_date) and like.message_id in message_ok:
                graph.add_like(like)
        return graph

    # ------------------------------------------------------------------
    # Static entity inserts
    # ------------------------------------------------------------------

    def add_place(self, place: Place) -> None:
        self.write_version += 1
        self.places[place.id] = place
        self._place_by_name[(place.name, place.type)] = place.id
        if place.type is PlaceType.CITY and place.part_of >= 0:
            self._cities_of_country[place.part_of].append(place.id)

    def add_organisation(self, organisation: Organisation) -> None:
        self.write_version += 1
        self.organisations[organisation.id] = organisation

    def add_tag_class(self, tag_class: TagClass) -> None:
        self.write_version += 1
        self.tag_classes[tag_class.id] = tag_class
        self._tagclass_by_name[tag_class.name] = tag_class.id
        if tag_class.subclass_of >= 0:
            self._tagclass_children[tag_class.subclass_of].append(tag_class.id)

    def add_tag(self, tag: Tag) -> None:
        self.write_version += 1
        self.tags[tag.id] = tag
        self._tag_by_name[tag.name] = tag.id
        self._tags_of_class[tag.type_id].append(tag.id)

    # ------------------------------------------------------------------
    # Dynamic inserts (the IU operations route through these)
    # ------------------------------------------------------------------

    def add_person(self, person: Person) -> None:
        if person.id in self.persons:
            raise ValueError(f"duplicate person id {person.id}")
        self.write_version += 1
        self.persons[person.id] = person
        self._persons_in_city[person.city_id].append(person.id)
        for tag_id in person.interests:
            self._persons_interested[tag_id].append(person.id)
        if self._delta_hooks:
            self._record_delta("persons", "insert", person.id, person)

    def add_study_at(self, record: StudyAt) -> None:
        self.write_version += 1
        self._study_pos.setdefault(record.person_id, []).append(
            len(self.study_at)
        )
        self.study_at.append(record)
        self._study_at_of[record.person_id].append(record)

    def add_work_at(self, record: WorkAt) -> None:
        self.write_version += 1
        self._work_pos.setdefault(record.person_id, []).append(
            len(self.work_at)
        )
        self.work_at.append(record)
        self._work_at_of[record.person_id].append(record)

    def add_knows(self, edge: Knows) -> None:
        self.write_version += 1
        self._knows_pos[(edge.person1, edge.person2)] = len(self.knows_edges)
        self.knows_edges.append(edge)
        self._friends[edge.person1][edge.person2] = edge.creation_date
        self._friends[edge.person2][edge.person1] = edge.creation_date
        if self._delta_hooks:
            self._record_delta(
                "knows", "insert",
                (min(edge.person1, edge.person2),
                 max(edge.person1, edge.person2)),
                edge,
            )

    def add_forum(self, forum: Forum) -> None:
        if forum.id in self.forums:
            raise ValueError(f"duplicate forum id {forum.id}")
        self.write_version += 1
        self.forums[forum.id] = forum
        self._moderated_forums[forum.moderator_id].append(forum)
        for tag_id in forum.tag_ids:
            self._forums_with_tag[tag_id].append(forum.id)
        if self._delta_hooks:
            self._record_delta("forums", "insert", forum.id, forum)

    def add_membership(self, membership: HasMember) -> None:
        self.write_version += 1
        self._member_pos.setdefault(
            (membership.forum_id, membership.person_id), []
        ).append(len(self.memberships))
        self.memberships.append(membership)
        self._forums_of_member[membership.person_id].append(membership)
        self._members_of_forum[membership.forum_id].append(membership)
        if self._delta_hooks:
            self._record_delta(
                "memberships", "insert",
                (membership.forum_id, membership.person_id), membership,
            )

    def _index_message(self, message: Message) -> None:
        """Maintain the secondary indexes for a new Post or Comment."""
        entry = (message.creation_date, message.id)
        for tag_id in message.tag_ids:
            insort(self._messages_with_tag[tag_id], entry)
        by_month = (
            self._comments_by_month
            if message.is_comment
            else self._posts_by_month
        )
        by_month[month_bucket(message.creation_date)][message.id] = message

    def _unindex_message(self, message: Message) -> None:
        """Evict a deleted Post or Comment from the secondary indexes."""
        entry = (message.creation_date, message.id)
        for tag_id in message.tag_ids:
            postings = self._messages_with_tag[tag_id]
            index = bisect_left(postings, entry)
            if index < len(postings) and postings[index] == entry:
                del postings[index]
        by_month = (
            self._comments_by_month
            if message.is_comment
            else self._posts_by_month
        )
        bucket = by_month.get(month_bucket(message.creation_date))
        if bucket is not None:
            bucket.pop(message.id, None)

    def add_post(self, post: Post) -> None:
        if post.id in self.posts or post.id in self.comments:
            raise ValueError(f"duplicate message id {post.id}")
        self.write_version += 1
        self.posts[post.id] = post
        self._posts_by_creator[post.creator_id].append(post)
        self._posts_in_forum[post.forum_id].append(post)
        insort(self._forum_posts_by_date[post.forum_id],
               (post.creation_date, post.id))
        self._index_message(post)
        if self._delta_hooks:
            self._record_delta("posts", "insert", post.id, post)

    def add_comment(self, comment: Comment) -> None:
        if comment.id in self.posts or comment.id in self.comments:
            raise ValueError(f"duplicate message id {comment.id}")
        self.write_version += 1
        self.comments[comment.id] = comment
        self._comments_by_creator[comment.creator_id].append(comment)
        parent = (
            comment.reply_of_post
            if comment.reply_of_post >= 0
            else comment.reply_of_comment
        )
        self._replies_of[parent].append(comment)
        self._index_message(comment)
        if self._delta_hooks:
            self._record_delta("comments", "insert", comment.id, comment)

    def add_like(self, like: Likes) -> None:
        self.write_version += 1
        self._likes_pos.setdefault(
            (like.person_id, like.message_id), []
        ).append(len(self.likes_edges))
        self.likes_edges.append(like)
        self._likes_of_message[like.message_id].append(like)
        self._likes_by_person[like.person_id].append(like)
        if self._delta_hooks:
            self._record_delta(
                "likes", "insert", (like.person_id, like.message_id), like
            )

    # ------------------------------------------------------------------
    # Dynamic deletes (the DEL operations route through these).
    #
    # Cascade semantics follow the benchmark's delete design (the VLDB
    # 2022 BI paper; the supplied spec flags deletes as in design,
    # section 5.2): deleting an entity removes everything that cannot
    # exist without it — a Message's likes and reply tree, a Forum's
    # posts and memberships, a Person's personal forums, messages,
    # likes, memberships and knows edges.  Group forums survive their
    # moderator's deletion with the moderator detached.
    # ------------------------------------------------------------------

    def delete_like(self, person_id: int, message_id: int) -> None:
        """Remove one likes edge (no-op if absent).

        O(likes-of-message): the edge leaves ``likes_edges`` by
        swap-remove through ``_likes_pos`` — no O(E) list scan.
        """
        self.write_version += 1
        existing = [
            l
            for l in self._likes_of_message.get(message_id, [])
            if l.person_id == person_id
        ]
        for like in existing:
            _swap_remove(
                self.likes_edges, self._likes_pos,
                (person_id, message_id), _like_key, like,
            )
            self._likes_of_message[message_id].remove(like)
            self._likes_by_person[person_id].remove(like)
            if self._delta_hooks:
                self._record_delta(
                    "likes", "delete", (person_id, message_id), like
                )

    def delete_knows(self, person1: int, person2: int) -> None:
        """Remove a friendship edge (no-op if absent).

        O(degree-of-caller) overall: the ``_friends`` pops are dict
        deletes and the edge leaves ``knows_edges`` by swap-remove via
        the ``_knows_pos`` position map — no O(E) list rebuild.
        """
        self.write_version += 1
        a, b = min(person1, person2), max(person1, person2)
        self._friends.get(a, {}).pop(b, None)
        self._friends.get(b, {}).pop(a, None)
        position = self._knows_pos.pop((a, b), None)
        if position is None:
            return
        edges = self.knows_edges
        moved = edges.pop()
        if position < len(edges):
            edges[position] = moved
            self._knows_pos[(moved.person1, moved.person2)] = position
        if self._delta_hooks:
            self._record_delta("knows", "delete", (a, b))

    def delete_membership(self, forum_id: int, person_id: int) -> None:
        """Remove a hasMember edge (no-op if absent).

        O(members-of-forum): the edge leaves ``memberships`` by
        swap-remove through ``_member_pos`` — no O(E) list scan.
        """
        self.write_version += 1
        existing = [
            m
            for m in self._members_of_forum.get(forum_id, [])
            if m.person_id == person_id
        ]
        for membership in existing:
            _swap_remove(
                self.memberships, self._member_pos,
                (forum_id, person_id), _member_key, membership,
            )
            self._members_of_forum[forum_id].remove(membership)
            self._forums_of_member[person_id].remove(membership)
            if self._delta_hooks:
                self._record_delta(
                    "memberships", "delete", (forum_id, person_id), membership
                )

    def _delete_message_likes(self, message_id: int) -> None:
        for like in self._likes_of_message.pop(message_id, []):
            _swap_remove(
                self.likes_edges, self._likes_pos,
                (like.person_id, like.message_id), _like_key, like,
            )
            bucket = self._likes_by_person.get(like.person_id)
            if bucket and like in bucket:
                bucket.remove(like)
            if self._delta_hooks:
                self._record_delta(
                    "likes", "delete",
                    (like.person_id, like.message_id), like,
                )

    def delete_comment(self, comment_id: int) -> None:
        """Delete a Comment, its likes, and its reply subtree.

        The subtree cascade runs over an explicit stack: reply chains
        grow with thread depth and routinely exceed the interpreter's
        recursion limit at scale, so recursion is not an option here.
        """
        comment = self.comments.get(comment_id)
        if comment is None:
            return
        parent = (
            comment.reply_of_post
            if comment.reply_of_post >= 0
            else comment.reply_of_comment
        )
        parent_replies = self._replies_of.get(parent)
        if parent_replies and comment in parent_replies:
            parent_replies.remove(comment)
        stack: list[Comment] = [comment]
        while stack:
            node = stack.pop()
            self.write_version += 1
            stack.extend(self._replies_of.pop(node.id, ()))
            self._delete_message_likes(node.id)
            self._comments_by_creator[node.creator_id].remove(node)
            self._unindex_message(node)
            del self.comments[node.id]
            if self._delta_hooks:
                self._record_delta("comments", "delete", node.id, node)

    def delete_post(self, post_id: int) -> None:
        """Delete a Post, its likes, and its whole thread."""
        post = self.posts.get(post_id)
        if post is None:
            return
        self.write_version += 1
        for reply in list(self._replies_of.get(post_id, [])):
            self.delete_comment(reply.id)
        self._replies_of.pop(post_id, None)
        self._delete_message_likes(post_id)
        self._posts_by_creator[post.creator_id].remove(post)
        self._posts_in_forum[post.forum_id].remove(post)
        dated = self._forum_posts_by_date[post.forum_id]
        index = bisect_left(dated, (post.creation_date, post.id))
        if index < len(dated) and dated[index] == (post.creation_date, post.id):
            del dated[index]
        self._unindex_message(post)
        del self.posts[post_id]
        if self._delta_hooks:
            self._record_delta("posts", "delete", post_id, post)

    def delete_forum(self, forum_id: int) -> None:
        """Delete a Forum with its posts (cascading) and memberships."""
        forum = self.forums.get(forum_id)
        if forum is None:
            return
        self.write_version += 1
        for post in list(self._posts_in_forum.get(forum_id, [])):
            self.delete_post(post.id)
        self._posts_in_forum.pop(forum_id, None)
        self._forum_posts_by_date.pop(forum_id, None)
        for membership in self._members_of_forum.pop(forum_id, []):
            _swap_remove(
                self.memberships, self._member_pos,
                (forum_id, membership.person_id), _member_key, membership,
            )
            self._forums_of_member[membership.person_id].remove(membership)
            if self._delta_hooks:
                self._record_delta(
                    "memberships", "delete",
                    (forum_id, membership.person_id), membership,
                )
        moderated = self._moderated_forums.get(forum.moderator_id)
        if moderated and forum in moderated:
            moderated.remove(forum)
        for tag_id in forum.tag_ids:
            self._forums_with_tag[tag_id].remove(forum_id)
        del self.forums[forum_id]
        if self._delta_hooks:
            self._record_delta("forums", "delete", forum_id, forum)

    def delete_person(self, person_id: int) -> None:
        """Delete a Person and everything anchored on them.

        Cascades: their knows edges, likes given, memberships, created
        messages (with reply trees), and their personal forums (walls
        and albums).  Moderated group forums survive with the moderator
        detached (set to -1).
        """
        person = self.persons.get(person_id)
        if person is None:
            return
        self.write_version += 1
        for friend in list(self._friends.get(person_id, {})):
            self.delete_knows(person_id, friend)
        self._friends.pop(person_id, None)
        for like in list(self._likes_by_person.get(person_id, [])):
            self.delete_like(person_id, like.message_id)
        self._likes_by_person.pop(person_id, None)
        for membership in list(self._forums_of_member.get(person_id, [])):
            self.delete_membership(membership.forum_id, person_id)
        self._forums_of_member.pop(person_id, None)
        for forum in list(self._moderated_forums.get(person_id, [])):
            if forum.kind is ForumKind.GROUP:
                forum.moderator_id = -1
            else:
                self.delete_forum(forum.id)
        self._moderated_forums.pop(person_id, None)
        for comment in list(self._comments_by_creator.get(person_id, [])):
            self.delete_comment(comment.id)
        for post in list(self._posts_by_creator.get(person_id, [])):
            self.delete_post(post.id)
        self._posts_by_creator.pop(person_id, None)
        self._comments_by_creator.pop(person_id, None)
        # Study/work records leave their lists in place by swap-remove
        # (never a rebound rebuilt list: frozen snapshots share these
        # tables by reference, and a rebind would silently fork them).
        for record in self._study_at_of.pop(person_id, []):
            _swap_remove(
                self.study_at, self._study_pos, person_id, _study_key, record
            )
        for record in self._work_at_of.pop(person_id, []):
            _swap_remove(
                self.work_at, self._work_pos, person_id, _work_key, record
            )
        self._persons_in_city[person.city_id].remove(person_id)
        for tag_id in person.interests:
            self._persons_interested[tag_id].remove(person_id)
        del self.persons[person_id]
        if self._delta_hooks:
            self._record_delta("persons", "delete", person_id, person)

    # ------------------------------------------------------------------
    # Lookups — entity access
    # ------------------------------------------------------------------

    def message(self, message_id: int) -> Message:
        """A Post or a Comment (Messages share one id space)."""
        post = self.posts.get(message_id)
        if post is not None:
            return post
        return self.comments[message_id]

    def has_message(self, message_id: int) -> bool:
        return message_id in self.posts or message_id in self.comments

    def messages(self) -> Iterator[Message]:
        """All Messages (Posts then Comments)."""
        yield from self.posts.values()
        yield from self.comments.values()

    # ------------------------------------------------------------------
    # Lookups — adjacency (all honour ``use_indexes``)
    # ------------------------------------------------------------------

    def friends_of(self, person_id: int) -> dict[int, DateTime]:
        """Friend id -> knows.creationDate."""
        if self.use_indexes:
            return self._friends.get(person_id, {})
        result: dict[int, DateTime] = {}
        for edge in self.knows_edges:
            if edge.person1 == person_id:
                result[edge.person2] = edge.creation_date
            elif edge.person2 == person_id:
                result[edge.person1] = edge.creation_date
        return result

    def posts_by(self, person_id: int) -> list[Post]:
        if self.use_indexes:
            return self._posts_by_creator.get(person_id, [])
        return [p for p in self.posts.values() if p.creator_id == person_id]

    def comments_by(self, person_id: int) -> list[Comment]:
        if self.use_indexes:
            return self._comments_by_creator.get(person_id, [])
        return [c for c in self.comments.values() if c.creator_id == person_id]

    def messages_by(self, person_id: int) -> Iterable[Message]:
        yield from self.posts_by(person_id)
        yield from self.comments_by(person_id)

    def replies_of(self, message_id: int) -> list[Comment]:
        if self.use_indexes:
            return self._replies_of.get(message_id, [])
        return [
            c
            for c in self.comments.values()
            if c.reply_of_post == message_id or c.reply_of_comment == message_id
        ]

    def parent_of(self, comment: Comment) -> Message:
        parent = (
            comment.reply_of_post
            if comment.reply_of_post >= 0
            else comment.reply_of_comment
        )
        return self.message(parent)

    def root_post_of(self, message: Message) -> Post:
        """The Post at the root of a Message's thread (replyOf*)."""
        current = message
        while isinstance(current, Comment):
            current = self.parent_of(current)
        return current

    def language_of_message(self, message: Message) -> str:
        """The language of a Message per BI 18: a Post's own language; a
        Comment's is the language of the Post initiating its thread."""
        if not message.is_comment:
            return message.language  # type: ignore[union-attr]
        return self.root_post_of(message).language

    def thread_messages(self, post: Post) -> Iterator[Message]:
        """The Post and every Comment transitively replying to it."""
        stack: list[Message] = [post]
        while stack:
            message = stack.pop()
            yield message
            stack.extend(self.replies_of(message.id))

    def messages_with_tag(self, tag_id: int) -> Iterator[Message]:
        if self.use_indexes and self.use_tag_index:
            for _, mid in self._messages_with_tag.get(tag_id, []):
                yield self.message(mid)
            return
        for message in self.messages():
            if tag_id in message.tag_ids:
                yield message

    def messages_with_tag_in_window(
        self,
        tag_id: int,
        start: DateTime | None = None,
        end: DateTime | None = None,
    ) -> Iterator[Message]:
        """Messages carrying a Tag with creationDate in [start, end).

        With the tag postings index the date bounds bisect into the
        date-ordered postings list; without it this degrades to a
        filtered full scan.
        """
        if self.use_indexes and self.use_tag_index:
            postings = self._messages_with_tag.get(tag_id, [])
            lo = 0 if start is None else bisect_left(postings, (start, -1))
            hi = len(postings) if end is None else bisect_left(
                postings, (end, -1)
            )
            for index in range(lo, hi):
                yield self.message(postings[index][1])
            return
        for message in self.messages():
            if tag_id not in message.tag_ids:
                continue
            ts = message.creation_date
            if (start is None or ts >= start) and (end is None or ts < end):
                yield message

    def messages_in_window(
        self,
        start: DateTime | None = None,
        end: DateTime | None = None,
        kind: str | None = None,
    ) -> Iterator[Message]:
        """Messages with creationDate in [start, end), optionally only
        ``"post"`` or ``"comment"`` rows.

        The messages-by-month bucket index prunes the scan to the
        buckets overlapping the window (and to the requested kind);
        only boundary buckets re-check the timestamp (dimensional
        clustering, CP-3.2).
        """
        if not (self.use_indexes and self.use_date_index):
            if kind == "post":
                source: Iterable[Message] = self.posts.values()
            elif kind == "comment":
                source = self.comments.values()
            else:
                source = self.messages()
            for message in source:
                ts = message.creation_date
                if (start is None or ts >= start) and (
                    end is None or ts < end
                ):
                    yield message
            return
        indexes = []
        if kind != "comment":
            indexes.append(self._posts_by_month)
        if kind != "post":
            indexes.append(self._comments_by_month)
        lo_bucket = None if start is None else month_bucket(start)
        hi_bucket = None if end is None else month_bucket(end - 1)
        for by_month in indexes:
            for bucket_key in sorted(by_month):
                if lo_bucket is not None and bucket_key < lo_bucket:
                    continue
                if hi_bucket is not None and bucket_key > hi_bucket:
                    continue
                bucket = by_month[bucket_key]
                if (lo_bucket is None or bucket_key > lo_bucket) and (
                    hi_bucket is None or bucket_key < hi_bucket
                ):
                    yield from bucket.values()
                    continue
                for message in bucket.values():
                    ts = message.creation_date
                    if (start is None or ts >= start) and (
                        end is None or ts < end
                    ):
                        yield message

    def posts_in_forum_window(
        self,
        forum_id: int,
        start: DateTime | None = None,
        end: DateTime | None = None,
    ) -> Iterator[Post]:
        """A Forum's Posts with creationDate in [start, end), date order."""
        if self.use_indexes and self.use_date_index:
            dated = self._forum_posts_by_date.get(forum_id, [])
            lo = 0 if start is None else bisect_left(dated, (start, -1))
            hi = len(dated) if end is None else bisect_left(dated, (end, -1))
            for index in range(lo, hi):
                yield self.posts[dated[index][1]]
            return
        for post in self.posts_in_forum(forum_id):
            ts = post.creation_date
            if (start is None or ts >= start) and (end is None or ts < end):
                yield post

    def forums_with_tag(self, tag_id: int) -> list[int]:
        if self.use_indexes:
            return self._forums_with_tag.get(tag_id, [])
        return [f.id for f in self.forums.values() if tag_id in f.tag_ids]

    def likes_of_message(self, message_id: int) -> list[Likes]:
        if self.use_indexes:
            return self._likes_of_message.get(message_id, [])
        return [l for l in self.likes_edges if l.message_id == message_id]

    def likes_by_person(self, person_id: int) -> list[Likes]:
        if self.use_indexes:
            return self._likes_by_person.get(person_id, [])
        return [l for l in self.likes_edges if l.person_id == person_id]

    def forums_of_member(self, person_id: int) -> list[HasMember]:
        if self.use_indexes:
            return self._forums_of_member.get(person_id, [])
        return [m for m in self.memberships if m.person_id == person_id]

    def members_of_forum(self, forum_id: int) -> list[HasMember]:
        if self.use_indexes:
            return self._members_of_forum.get(forum_id, [])
        return [m for m in self.memberships if m.forum_id == forum_id]

    def posts_in_forum(self, forum_id: int) -> list[Post]:
        if self.use_indexes:
            return self._posts_in_forum.get(forum_id, [])
        return [p for p in self.posts.values() if p.forum_id == forum_id]

    def moderated_forums(self, person_id: int) -> list[Forum]:
        if self.use_indexes:
            return self._moderated_forums.get(person_id, [])
        return [f for f in self.forums.values() if f.moderator_id == person_id]

    def persons_in_city(self, city_id: int) -> list[int]:
        if self.use_indexes:
            return self._persons_in_city.get(city_id, [])
        return [p.id for p in self.persons.values() if p.city_id == city_id]

    def cities_of_country(self, country_id: int) -> list[int]:
        return self._cities_of_country.get(country_id, [])

    def persons_in_country(self, country_id: int) -> Iterator[int]:
        for city_id in self.cities_of_country(country_id):
            yield from self.persons_in_city(city_id)

    def country_of_person(self, person_id: int) -> int:
        """The Country Place id of a Person's home City."""
        city = self.places[self.persons[person_id].city_id]
        return city.part_of

    def persons_interested_in(self, tag_id: int) -> list[int]:
        if self.use_indexes:
            return self._persons_interested.get(tag_id, [])
        return [p.id for p in self.persons.values() if tag_id in p.interests]

    def study_at_of(self, person_id: int) -> list[StudyAt]:
        return self._study_at_of.get(person_id, [])

    def work_at_of(self, person_id: int) -> list[WorkAt]:
        return self._work_at_of.get(person_id, [])

    # ------------------------------------------------------------------
    # Tag-class hierarchy
    # ------------------------------------------------------------------

    def tagclass_descendants(self, tagclass_id: int) -> set[int]:
        """isSubclassOf* — the class and all transitive subclasses."""
        result: set[int] = set()
        stack = [tagclass_id]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self._tagclass_children.get(current, []))
        return result

    def tags_of_class(self, tagclass_id: int) -> list[int]:
        """Tags whose *direct* type (hasType) is the class."""
        return self._tags_of_class.get(tagclass_id, [])

    def tags_in_class_tree(self, tagclass_id: int) -> set[int]:
        """Tags whose type is the class or any descendant."""
        tags: set[int] = set()
        for cls in self.tagclass_descendants(tagclass_id):
            tags.update(self._tags_of_class.get(cls, []))
        return tags

    # ------------------------------------------------------------------
    # Name resolution (query parameters)
    # ------------------------------------------------------------------

    def country_id(self, name: str) -> int:
        return self._place_by_name[(name, PlaceType.COUNTRY)]

    def city_id(self, name: str) -> int:
        return self._place_by_name[(name, PlaceType.CITY)]

    def tag_id(self, name: str) -> int:
        return self._tag_by_name[name]

    def tagclass_id(self, name: str) -> int:
        return self._tagclass_by_name[name]

    def copy(self) -> "SocialGraph":
        """A deep, independent copy of the store (entities, relations
        and every index).  Useful for measured runs that must not
        disturb a shared loaded snapshot."""
        import pickle

        return pickle.loads(pickle.dumps(self))

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        return (
            len(self.places)
            + len(self.organisations)
            + len(self.tag_classes)
            + len(self.tags)
            + len(self.persons)
            + len(self.forums)
            + len(self.posts)
            + len(self.comments)
        )
