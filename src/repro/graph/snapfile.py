"""Versioned on-disk binary snapshot of a :class:`FrozenGraph`'s columns.

The frozen columnar layout (:mod:`repro.graph.frozen`) is a set of flat
``array('q')``/``array('i')`` slabs plus dictionary-encoded string
columns — exactly the shapes that serialize to raw bytes and attach
back as zero-copy ``memoryview`` casts over an ``mmap`` or a
``multiprocessing.shared_memory`` buffer.  This module defines that
byte layout (format v2) and the write/attach halves:

* :func:`write_snapshot` / :func:`snapshot_bytes` — serialize every
  column family of a frozen graph into one self-describing blob;
* :func:`attach` — validate the header and hand back per-attribute
  zero-copy columns over any readable buffer;
* :func:`open_snapshot` — ``mmap`` a snapshot file read-only and
  attach it (:class:`MappedSnapshot` owns the mapping).

File layout (all header integers little-endian except the byte-order
probe, which is written native on purpose)::

    offset  size  field
    0       4     magic  b"RSNB"
    4       2     format version (currently 2)
    6       2     flags (reserved, 0)
    8       8     byte-order probe: native int64 0x0102030405060708
    16      8     TOC offset
    24      8     TOC length
    32      ...   8-byte-aligned column sections (raw array bytes)
    toc     ...   JSON table of contents

The TOC records every section's ``(name, typecode, itemsize, offset,
nbytes, count)`` plus the five string-column dictionaries and snapshot
metadata (``frozen_at_version``).  Column bytes are written in the
machine's native byte order — a snapshot is an IPC artifact between
processes of one host, not an interchange format — and the probe makes
a cross-endian open fail loudly instead of returning garbage rows.

Format v2 makes the file *self-contained*: besides the column sections
it carries one required ``__entities__`` section (typecode ``B``) — a
compact JSON encoding of every entity and relation row, written in
replayable order (dimension tables first, then entities before the
relations that reference them, each family in the live store's own
insertion order — see :func:`_entity_payload`).  :func:`rebuild_store`
replays that payload through the ordinary ``SocialGraph`` mutators,
and ``FrozenGraph._rebuilt`` re-derives the object-side columns
(``_post_objs``, ordinal maps, postings lists) from the rebuilt store
plus the mapped columns — so a ``spawn`` worker cold-starts from the
mapped bytes alone, with no object-state pickle crossing the ship
boundary.  :func:`object_state` remains for the in-process parent
attach (which shares the live tables by reference) and as the
differential baseline the tests compare the rebuild against.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Any, BinaryIO, Iterator

from repro.graph.frozen import FrozenGraph, StringColumn
from repro.graph.store import SocialGraph
from repro.schema.entities import (
    Comment,
    Forum,
    ForumKind,
    Organisation,
    OrganisationType,
    Person,
    Place,
    PlaceType,
    Post,
    Tag,
    TagClass,
)
from repro.schema.relations import HasMember, Knows, Likes, StudyAt, WorkAt

__all__ = [
    "MAGIC",
    "VERSION",
    "ENTITY_SECTION",
    "MAPPED_ATTRS",
    "SnapshotFormatError",
    "AttachedColumns",
    "MappedSnapshot",
    "attach",
    "object_state",
    "open_snapshot",
    "rebuild_store",
    "snapshot_bytes",
    "write_snapshot",
]

MAGIC = b"RSNB"
VERSION = 2

#: Name of the required v2 entity section: the canonical JSON encoding
#: of every entity/relation row, replayed by :func:`rebuild_store`.
ENTITY_SECTION = "__entities__"

#: Native int64 written at offset 8; reads as 0x0807060504030201 when
#: the snapshot was produced on an opposite-endian host.
_PROBE = 0x0102030405060708
#: What the probe reads as when the file was written on a host of the
#: opposite byte order.
_PROBE_SWAPPED = 0x0807060504030201

_HEADER = struct.Struct("<4sHH")  # magic, version, flags
_PROBE_STRUCT = struct.Struct("=q")  # native on purpose — see module doc
_TOC_POINTER = struct.Struct("<QQ")  # toc offset, toc length
HEADER_SIZE = 32

#: Flat array-valued column attributes of :class:`FrozenGraph`, in file
#: order.  Everything here is ``array('q')`` except the root-language
#: code column, which shares the ``array('i')`` width of the string
#: dictionaries' code columns.
FLAT_COLUMNS: tuple[str, ...] = (
    "_person_ids", "_person_country",
    "_knows_offsets", "_knows_targets", "_knows_dates",
    "_post_dates", "_comment_dates",
    "_root_ord", "_reply_offsets", "_reply_targets",
    "_thread_offsets", "_thread_members",
    "_likes_offsets", "_likes_person", "_likes_dates",
    "_forum_ids",
    "_member_offsets", "_member_person", "_member_dates",
    "_forum_post_offsets", "_forum_post_targets",
    "_comment_root_lang",
)

#: Dictionary-encoded string columns: codes are mapped, dictionaries
#: ride in the TOC (small, interned on attach).
STRING_COLUMNS: tuple[str, ...] = (
    "_post_language", "_post_browser", "_comment_browser",
    "_person_gender", "_person_browser",
)

#: ``dict[int, array('q')]`` column families, serialized as three
#: parallel sections: sorted keys, CSR offsets, concatenated values.
KEYED_COLUMNS: tuple[str, ...] = ("_tag_dates", "_forum_post_date_cols")

#: Every ``FrozenGraph`` attribute the snapshot file carries — the
#: complement of what :func:`object_state` pickles.
MAPPED_ATTRS: frozenset[str] = frozenset(
    FLAT_COLUMNS + STRING_COLUMNS + KEYED_COLUMNS
)

#: Instance attributes that must never cross a ship boundary: the
#: overlay travels explicitly beside the file, and ``base_snapshot``
#: would drag a second copy of the column arrays into the pickle.
_EXCLUDED_STATE: frozenset[str] = frozenset(
    {"delta_overlay", "base_snapshot"}
)


class SnapshotFormatError(ValueError):
    """A snapshot buffer failed header or layout validation."""


def object_state(graph: FrozenGraph) -> dict[str, Any]:
    """The picklable remainder of a frozen graph: its ``__dict__``
    minus the mapped column families, with the live store's write-hook
    list replaced by a fresh empty one (hooks reference the parent's
    overlay recorder and must not fire — or travel — in a worker)."""
    state = {
        key: value
        for key, value in graph.__dict__.items()
        if key not in MAPPED_ATTRS and key not in _EXCLUDED_STATE
    }
    state["_delta_hooks"] = []
    return state


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _keyed_sections(
    name: str, mapping: dict[int, array]
) -> Iterator[tuple[str, array]]:
    keys = sorted(mapping)
    offsets = array("q", [0])
    values = array("q")
    for key in keys:
        values.extend(mapping[key])
        offsets.append(len(values))
    yield f"{name}.keys", array("q", keys)
    yield f"{name}.offsets", offsets
    yield f"{name}.values", values


def _sections(graph: FrozenGraph) -> Iterator[tuple[str, array]]:
    for attr in FLAT_COLUMNS:
        yield attr, getattr(graph, attr)
    for attr in STRING_COLUMNS:
        yield f"{attr}.codes", getattr(graph, attr).codes
    for attr in KEYED_COLUMNS:
        yield from _keyed_sections(attr, getattr(graph, attr))


def _entity_payload(graph: FrozenGraph, overlay: Any = None) -> bytes:
    """The ``__entities__`` section: every entity/relation row as a
    compact JSON document, listed in :func:`rebuild_store`'s replay
    order.  Rows are written in the live store's own insertion order
    (dict/list iteration order), so replaying them through the ordinary
    mutators reproduces every secondary index — including adjacency-list
    orders, which queries observe through group-insertion tie-breaks —
    byte-for-byte.  The file fixes the order once; every worker that
    attaches it rebuilds the identical store.

    The frozen view shares the live store's tables by reference, so
    under a dirty :class:`~repro.graph.frozen.FreezeManager` they hold
    *current* state, not freeze-time state.  Passing the manager's
    ``overlay`` restores the freeze-time section: rows the overlay
    recorded as post-freeze inserts are skipped here (they replay from
    the shipped overlay instead), and rows deleted since the freeze are
    naturally absent — their tombstones make the absence unobservable
    through the worker's merge view."""
    if overlay is None:
        skip: dict[str, Any] = {}
    else:
        skip = {
            family: keys
            for family, keys in overlay.inserts.items()
            if keys
        }
    skip_persons = skip.get("persons", ())
    skip_forums = skip.get("forums", ())
    skip_posts = skip.get("posts", ())
    skip_comments = skip.get("comments", ())
    skip_knows = skip.get("knows", ())
    skip_memberships = skip.get("memberships", ())
    skip_likes = skip.get("likes", ())
    payload = {
        "places": [
            [p.id, p.name, p.url, p.type.value, p.part_of]
            for p in graph.places.values()
        ],
        "organisations": [
            [o.id, o.type.value, o.name, o.url, o.place_id]
            for o in graph.organisations.values()
        ],
        "tag_classes": [
            [t.id, t.name, t.url, t.subclass_of]
            for t in graph.tag_classes.values()
        ],
        "tags": [
            [t.id, t.name, t.url, t.type_id] for t in graph.tags.values()
        ],
        "persons": [
            [p.id, p.first_name, p.last_name, p.gender, p.birthday,
             p.creation_date, p.location_ip, p.browser_used, p.city_id,
             p.emails, p.speaks, p.interests]
            for p in graph.persons.values()
            if p.id not in skip_persons
        ],
        "study_at": [
            [r.person_id, r.university_id, r.class_year]
            for r in graph.study_at
        ],
        "work_at": [
            [r.person_id, r.company_id, r.work_from]
            for r in graph.work_at
        ],
        "knows": [
            [e.person1, e.person2, e.creation_date]
            for e in graph.knows_edges
            if (min(e.person1, e.person2), max(e.person1, e.person2))
            not in skip_knows
        ],
        "forums": [
            [f.id, f.title, f.creation_date, f.moderator_id,
             f.kind.value, f.tag_ids]
            for f in graph.forums.values()
            if f.id not in skip_forums
        ],
        "memberships": [
            [m.forum_id, m.person_id, m.join_date]
            for m in graph.memberships
            if (m.forum_id, m.person_id) not in skip_memberships
        ],
        "posts": [
            [p.id, p.creation_date, p.location_ip, p.browser_used,
             p.content, p.length, p.creator_id, p.forum_id, p.country_id,
             p.language, p.image_file, p.tag_ids]
            for p in graph.posts.values()
            if p.id not in skip_posts
        ],
        "comments": [
            [c.id, c.creation_date, c.location_ip, c.browser_used,
             c.content, c.length, c.creator_id, c.country_id,
             c.reply_of_post, c.reply_of_comment, c.tag_ids]
            for c in graph.comments.values()
            if c.id not in skip_comments
        ],
        "likes": [
            [e.person_id, e.message_id, e.creation_date, e.is_post]
            for e in graph.likes_edges
            if (e.person_id, e.message_id) not in skip_likes
        ],
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def rebuild_store(data: Any) -> SocialGraph:
    """Replay an ``__entities__`` payload into a fresh
    :class:`SocialGraph` through the ordinary mutators, in
    ``SocialGraph.from_data`` order (dimension tables, persons,
    person relations, forums, memberships, messages, likes) — so every
    secondary index is rebuilt by the same code path that built the
    parent's, and a shipped overlay can keep replaying writes on top."""
    payload = json.loads(bytes(data))
    graph = SocialGraph()
    for row in payload["places"]:
        graph.add_place(
            Place(row[0], row[1], row[2], PlaceType(row[3]), row[4])
        )
    for row in payload["organisations"]:
        graph.add_organisation(
            Organisation(
                row[0], OrganisationType(row[1]), row[2], row[3], row[4]
            )
        )
    for row in payload["tag_classes"]:
        graph.add_tag_class(TagClass(*row))
    for row in payload["tags"]:
        graph.add_tag(Tag(*row))
    for row in payload["persons"]:
        graph.add_person(Person(*row))
    for row in payload["study_at"]:
        graph.add_study_at(StudyAt(*row))
    for row in payload["work_at"]:
        graph.add_work_at(WorkAt(*row))
    for row in payload["knows"]:
        graph.add_knows(Knows(*row))
    for row in payload["forums"]:
        graph.add_forum(
            Forum(row[0], row[1], row[2], row[3], ForumKind(row[4]), row[5])
        )
    for row in payload["memberships"]:
        graph.add_membership(HasMember(*row))
    for row in payload["posts"]:
        graph.add_post(Post(*row))
    for row in payload["comments"]:
        graph.add_comment(Comment(*row))
    for row in payload["likes"]:
        graph.add_like(Likes(*row))
    return graph


def write_snapshot(
    graph: FrozenGraph, stream: BinaryIO, *, overlay: Any = None
) -> int:
    """Serialize ``graph``'s column families plus the entity section
    into ``stream`` (format v2); returns the number of section bytes
    written (the size a reader will map, excluding header and TOC).
    ``overlay`` (the owning manager's delta overlay, when the base is
    serialized under a dirty manager) keeps post-freeze inserts out of
    the entity section — see :func:`_entity_payload`."""
    if graph.delta_overlay is not None:
        raise ValueError(
            "cannot serialize an overlaid view; write its base_snapshot "
            "and carry the overlay beside the file"
        )
    sections: list[dict[str, Any]] = []
    offset = HEADER_SIZE
    stream.write(b"\0" * HEADER_SIZE)  # back-patched below
    entity_data = _entity_payload(graph, overlay)
    payloads: Iterator[tuple[str, str, int, int, bytes]] = iter(
        [
            *(
                (name, col.typecode, col.itemsize, len(col), col.tobytes())
                for name, col in _sections(graph)
            ),
            (ENTITY_SECTION, "B", 1, len(entity_data), entity_data),
        ]
    )
    for name, typecode, itemsize, count, data in payloads:
        pad = (-offset) % 8
        if pad:
            stream.write(b"\0" * pad)
            offset += pad
        stream.write(data)
        sections.append(
            {
                "name": name,
                "typecode": typecode,
                "itemsize": itemsize,
                "offset": offset,
                "nbytes": len(data),
                "count": count,
            }
        )
        offset += len(data)
    toc = json.dumps(
        {
            "sections": sections,
            "dictionaries": {
                attr: list(getattr(graph, attr).dictionary)
                for attr in STRING_COLUMNS
            },
            "meta": {"frozen_at_version": graph.frozen_at_version},
        },
        separators=(",", ":"),
    ).encode("utf-8")
    stream.write(toc)
    stream.seek(0)
    stream.write(_HEADER.pack(MAGIC, VERSION, 0))
    stream.write(_PROBE_STRUCT.pack(_PROBE))
    stream.write(_TOC_POINTER.pack(offset, len(toc)))
    stream.seek(offset + len(toc))
    return sum(section["nbytes"] for section in sections)


def snapshot_bytes(graph: FrozenGraph, *, overlay: Any = None) -> bytes:
    """The snapshot serialized into one in-memory blob (the
    shared-memory provider copies this into its segment)."""
    import io

    buffer = io.BytesIO()
    write_snapshot(graph, buffer, overlay=overlay)
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Attaching
# ---------------------------------------------------------------------------


@dataclass
class AttachedColumns:
    """Zero-copy column families decoded from a snapshot buffer:
    ``columns`` maps every attribute in :data:`MAPPED_ATTRS` to its
    memoryview-backed value, ready for ``FrozenGraph._attached``;
    ``entities`` is the raw (unparsed) ``__entities__`` section for
    :func:`rebuild_store` — parsing is deferred because the in-process
    parent attach never needs it."""

    columns: dict[str, Any]
    bytes_mapped: int
    frozen_at_version: int
    entities: Any


def _validate_header(view: memoryview) -> tuple[int, int]:
    if len(view) < HEADER_SIZE:
        raise SnapshotFormatError(
            f"snapshot truncated: {len(view)} bytes is smaller than the "
            f"{HEADER_SIZE}-byte header"
        )
    magic, version, _flags = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise SnapshotFormatError(
            f"not a snapshot file: bad magic {bytes(magic)!r} "
            f"(expected {MAGIC!r})"
        )
    if version != VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot format version {version} "
            f"(this reader understands version {VERSION})"
        )
    (probe,) = _PROBE_STRUCT.unpack_from(view, 8)
    if probe != _PROBE:
        if probe == _PROBE_SWAPPED:
            raise SnapshotFormatError(
                "snapshot byte order does not match this host "
                "(cross-endian snapshots are not supported)"
            )
        raise SnapshotFormatError(
            f"corrupt snapshot: byte-order probe reads 0x{probe:x}"
        )
    toc_offset, toc_length = _TOC_POINTER.unpack_from(view, 16)
    if toc_offset + toc_length > len(view):
        raise SnapshotFormatError(
            f"snapshot truncated: TOC [{toc_offset}, "
            f"{toc_offset + toc_length}) extends past the "
            f"{len(view)}-byte buffer"
        )
    return toc_offset, toc_length


def _section_views(
    view: memoryview, toc: dict[str, Any], toc_offset: int
) -> dict[str, memoryview]:
    views: dict[str, memoryview] = {}
    for section in toc["sections"]:
        offset, nbytes = section["offset"], section["nbytes"]
        typecode = section["typecode"]
        itemsize = array(typecode).itemsize
        if itemsize != section["itemsize"]:
            raise SnapshotFormatError(
                f"section {section['name']!r}: itemsize "
                f"{section['itemsize']} does not match this host's "
                f"'{typecode}' width {itemsize}"
            )
        if offset < HEADER_SIZE or offset + nbytes > toc_offset:
            raise SnapshotFormatError(
                f"corrupt snapshot: section {section['name']!r} "
                f"[{offset}, {offset + nbytes}) falls outside the data "
                f"region [{HEADER_SIZE}, {toc_offset})"
            )
        if nbytes % itemsize:
            raise SnapshotFormatError(
                f"corrupt snapshot: section {section['name']!r} length "
                f"{nbytes} is not a multiple of itemsize {itemsize}"
            )
        views[section["name"]] = view[offset : offset + nbytes].cast(typecode)
    return views


def attach(buffer: Any) -> AttachedColumns:
    """Decode a snapshot buffer (bytes, ``mmap``, or shared-memory
    ``.buf``) into zero-copy column families.

    Raises :class:`SnapshotFormatError` on bad magic, an unsupported
    version, an endianness mismatch, or a truncated/corrupt layout.
    """
    view = memoryview(buffer)
    toc_offset, toc_length = _validate_header(view)
    try:
        toc = json.loads(bytes(view[toc_offset : toc_offset + toc_length]))
    except ValueError as error:
        raise SnapshotFormatError(
            f"corrupt snapshot: TOC is not valid JSON ({error})"
        ) from error
    sections = _section_views(view, toc, toc_offset)
    columns: dict[str, Any] = {}
    try:
        for attr in FLAT_COLUMNS:
            columns[attr] = sections[attr]
        dictionaries = toc["dictionaries"]
        for attr in STRING_COLUMNS:
            column = StringColumn.__new__(StringColumn)
            column.codes = sections[f"{attr}.codes"]
            column.dictionary = [
                sys.intern(value) for value in dictionaries[attr]
            ]
            columns[attr] = column
        for attr in KEYED_COLUMNS:
            keys = sections[f"{attr}.keys"]
            offsets = sections[f"{attr}.offsets"]
            values = sections[f"{attr}.values"]
            columns[attr] = {
                keys[index]: values[offsets[index] : offsets[index + 1]]
                for index in range(len(keys))
            }
        entities = sections[ENTITY_SECTION]
    except KeyError as error:
        raise SnapshotFormatError(
            f"corrupt snapshot: missing section {error}"
        ) from error
    return AttachedColumns(
        columns=columns,
        bytes_mapped=sum(s["nbytes"] for s in toc["sections"]),
        frozen_at_version=int(toc["meta"]["frozen_at_version"]),
        entities=entities,
    )


class MappedSnapshot:
    """A snapshot file mapped read-only: owns the ``mmap`` and exposes
    the attached columns.  ``close()`` is best-effort — exported
    memoryviews (an attached graph still holding columns) keep the
    mapping alive until they are dropped, which is exactly the safety
    the buffer protocol guarantees."""

    def __init__(self, path: str):
        self.path = path
        with open(path, "rb") as handle:
            if handle.seek(0, 2) == 0:
                raise SnapshotFormatError(f"snapshot file {path!r} is empty")
            self._mmap = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        try:
            self.attached = attach(self._mmap)
        except Exception:
            try:
                self._mmap.close()
            except BufferError:
                # attach() failed after exporting some views; the
                # in-flight exception's traceback still references
                # them, so the mapping closes when it is collected.
                pass
            raise

    @property
    def columns(self) -> dict[str, Any]:
        return self.attached.columns

    @property
    def bytes_mapped(self) -> int:
        return self.attached.bytes_mapped

    def close(self) -> None:
        self.attached.columns.clear()
        try:
            self._mmap.close()
        except BufferError:  # views still exported; GC will finish it
            pass


def open_snapshot(path: str) -> MappedSnapshot:
    """``mmap`` a snapshot file read-only and attach its columns."""
    return MappedSnapshot(path)
