"""Inter-query result cache (choke point CP-6.1).

The spec motivates result caching: "with a high number of streams a
significant amount of identical queries emerge in the resulting
workload.  The reason is that certain parameters ... have only a limited
amount of parameter bindings.  This weakness opens up the possibility of
using a query result cache."  Curated parameter lists are finite and the
driver cycles through them, so repeated (query, params) pairs are
common.

:class:`CachedQueryExecutor` wraps a graph with a bounded LRU keyed by
``(query name, params)``.  Any write — insert or delete — invalidates
the whole cache: the workload interleaves writes frequently enough that
fine-grained invalidation would cost more than it saves, and coarse
invalidation is trivially correct.

Cache activity is double-booked: the per-instance attributes feed the
driver's results log as before, and every event also lands in the
process-global :mod:`repro.obs.metrics` registry
(``repro_cache_*_total``).  The registry is never reset around queries,
so the CP-6.1 counts survive the executor's per-task counter resets —
the accounting the per-query operator-counter record could not provide.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.graph.store import SocialGraph
from repro.obs.metrics import registry


def _freeze(value: Any) -> Any:
    """A hashable cache-key form of a parameter (lists become tuples —
    some curated bindings carry list parameters)."""
    if isinstance(value, (list, tuple, set)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


class CachedQueryExecutor:
    """Memoizes read-query results until the next write."""

    def __init__(self, graph: SocialGraph, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.graph = graph
        self.capacity = capacity
        self._cache: OrderedDict[tuple, list] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Entries dropped by the LRU capacity bound (not by writes).
        self.evictions = 0

    def run(self, name: str, query: Callable, *params: Any) -> list:
        """Execute ``query(graph, *params)`` through the cache."""
        key = (name, _freeze(params))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            registry().counter("repro_cache_hits_total").inc()
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        registry().counter("repro_cache_misses_total").inc()
        result = query(self.graph, *params)
        self._cache[key] = result
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
            registry().counter("repro_cache_evictions_total").inc()
        return result

    def write(self, operation: Callable, *args: Any) -> None:
        """Apply a write through the executor, invalidating the cache."""
        self.invalidate()
        operation(self.graph, *args)

    def invalidate(self) -> None:
        if self._cache:
            self.invalidations += 1
            registry().counter("repro_cache_invalidations_total").inc()
            self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counter snapshot for the driver's results log (CP-6.1)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self._cache),
            "hit_rate": self.hit_rate,
        }
