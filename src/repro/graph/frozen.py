"""Read-optimized frozen snapshots of a :class:`SocialGraph`.

Graph systems audited under LDBC SNB win the BI workload's choke points
(CP-1 aggregation, CP-2 join/expand, CP-3 data locality) with
compressed-sparse-row adjacency and columnar storage.  This module
brings that layout to the reproduction without leaving pure Python:

* :class:`FrozenGraph` — an immutable snapshot built once from a live
  store.  It *shares* the live store's entity tables and adjacency
  indexes by reference (freezing copies nothing heavy) and adds
  columnar read structures on top:

  - dense id -> ordinal remapping for persons, forums and messages
    (posts occupy ordinals ``[0, P)``, comments ``[P, P+C)``);
  - ``array('q')``-backed CSR adjacency for the knows, likes,
    membership, reply and forum-post edge sets;
  - int64 epoch-millisecond date columns parallel to the
    ``(creationDate, id)``-sorted message lists, so window predicates
    bisect a flat array instead of probing month buckets;
  - a precomputed root-post column (``replyOf*`` transitive closure),
    making :meth:`FrozenGraph.root_post_of` O(1) and
    :meth:`FrozenGraph.thread_messages` a contiguous slice;
  - dictionary-encoded, ``sys.intern``-ed string columns
    (:class:`StringColumn`) for the low-cardinality text attributes.

* :func:`freeze` — build a snapshot and publish per-column-family
  footprint gauges (``repro_frozen_bytes``) to the metrics registry;
* :class:`FreezeManager` — the merge-on-read lifecycle the drivers use
  around write batches: the live store remains the write path, a
  registered write-hook records every mutation into a
  :class:`~repro.graph.delta.DeltaOverlay`, and ``frozen()`` returns
  the cached snapshot (overlay empty), an
  :class:`~repro.graph.delta.OverlaidGraph` merge view (small
  overlay), or a freshly compacted snapshot (overlay past the
  threshold fraction of the base row count) — never a per-write
  refreeze.  (The ``freeze`` knob default — ``REPRO_FROZEN`` — is
  resolved by :meth:`repro.exec.snapshot.SnapshotConfig.resolved`, the
  single environment-parse point.)

Because the snapshot shares the live store's tables, a bare
:class:`FrozenGraph`'s validity contract is strict: **any write to the
source store invalidates every snapshot built from it** — its columnar
structures go stale even though the shared tables stay current.  All
mutators raise on the snapshot itself.  :class:`FreezeManager` is what
makes reads survive writes: the delta overlay records exactly which
keys went stale, and the overlaid view serves those from the live
indexes while everything else stays columnar.  Code holding a bare
snapshot past a write without the manager is outside the contract
(exactly like holding an iterator over a dict across a mutation).

Query code must not import this module (lint R2, slug ``frozen-import``)
— queries receive whichever graph the driver passes and stay
representation-agnostic; the engine picks the columnar fast paths off
``graph.is_frozen``.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.graph.store import SocialGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.delta import DeltaOverlay
from repro.obs.metrics import registry
from repro.schema.entities import Comment, Message, Post
from repro.util.dates import DateTime

__all__ = [
    "FrozenGraph",
    "FreezeManager",
    "StringColumn",
    "freeze",
]


def _array_bytes(values: "array | memoryview") -> int:
    # Columns are ``array`` objects on a freshly frozen graph and
    # ``memoryview`` casts on one attached from a mapped snapshot
    # (:mod:`repro.graph.snapfile`); both carry len and itemsize.
    return len(values) * values.itemsize


class StringColumn:
    """A dictionary-encoded string column: ``array('i')`` codes over an
    interned dictionary.  Low-cardinality attributes (language, browser,
    gender) compress to 4 bytes per row, and ``sys.intern`` makes every
    repeated value one shared object, so downstream equality checks are
    pointer comparisons."""

    __slots__ = ("codes", "dictionary")

    def __init__(self, values: Iterable[str]):
        code_of: dict[str, int] = {}
        dictionary: list[str] = []
        codes = array("i")
        for value in values:
            code = code_of.get(value)
            if code is None:
                code = code_of[value] = len(dictionary)
                dictionary.append(sys.intern(value))
            codes.append(code)
        self.codes = codes
        self.dictionary = dictionary

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index: int) -> str:
        return self.dictionary[self.codes[index]]

    def nbytes(self) -> int:
        return _array_bytes(self.codes)


class FrozenGraph(SocialGraph):
    """An immutable, column-augmented view of a loaded store.

    Entity tables and adjacency indexes are the *same objects* as the
    source store's (see the module docstring for the validity
    contract); everything below is built at freeze time.  The hot-path
    accessors the engine and the queries hit per row —
    ``messages_with_tag_in_window``, ``posts_in_forum_window``,
    ``root_post_of``, ``thread_messages``, ``persons_in_country`` — are
    overridden to serve from the columns; everything else inherits the
    live implementations over the shared indexes.
    """

    is_frozen = True

    #: The outstanding write overlay, set only on
    #: :class:`~repro.graph.delta.OverlaidGraph` instances; ``None``
    #: means the columns are exact and the engine takes the clean
    #: frozen fast paths unconditionally.
    delta_overlay: "DeltaOverlay | None" = None

    # -- columns (annotated for the engine's strict-typed fast paths) ----
    _person_ids: array
    _person_ord: dict[int, int]
    _person_country: array
    _knows_offsets: array
    _knows_targets: array
    _knows_dates: array
    _post_objs: list[Post]
    _post_dates: array
    _comment_objs: list[Comment]
    _comment_dates: array
    _msg_objs: list[Message]
    _msg_ord: dict[int, int]
    _root_ord: array
    _reply_offsets: array
    _reply_targets: array
    _thread_offsets: array
    _thread_members: array
    _likes_offsets: array
    _likes_person: array
    _likes_dates: array
    _forum_ids: array
    _forum_ord: dict[int, int]
    _member_offsets: array
    _member_person: array
    _member_dates: array
    _forum_post_offsets: array
    _forum_post_targets: array
    _forum_post_objs: dict[int, list[Post]]
    _forum_post_date_cols: dict[int, array]
    _tag_objs: dict[int, list[Message]]
    _tag_dates: dict[int, array]
    _comment_root_lang: array
    _lang_code_of: dict[str, int]
    _country_persons: dict[int, list[int]]
    _post_language: StringColumn
    _post_browser: StringColumn
    _comment_browser: StringColumn
    _person_gender: StringColumn
    _person_browser: StringColumn

    def __init__(self, source: SocialGraph):
        if isinstance(source, FrozenGraph):
            raise TypeError("cannot freeze a FrozenGraph; freeze the live store")
        # Adopt the live tables and indexes by reference — freezing must
        # not copy the object graph (that is what it exists to avoid).
        self.__dict__.update(source.__dict__)
        # A snapshot always has its columns; the ablation flags describe
        # the live store's secondary indexes, which the shared index
        # structures maintain regardless of the flags.
        self.use_indexes = True
        self.use_date_index = True
        self.use_tag_index = True
        #: The source's write_version at freeze time; FreezeManager
        #: rebuilds when the live store has moved past it.
        self.frozen_at_version = source.write_version
        self._build_columns()

    @classmethod
    def _attached(
        cls,
        state: "dict[str, object]",
        columns: "dict[str, object]",
    ) -> "FrozenGraph":
        """Rebuild a snapshot from a ship payload: ``state`` is the
        picklable remainder (:func:`repro.graph.snapfile.object_state`)
        and ``columns`` the zero-copy families attached from a mapped
        buffer.  No column construction happens — the instance adopts
        both dicts by reference, exactly as ``__init__`` adopts the
        live store's."""
        graph = cls.__new__(cls)
        graph.__dict__.update(state)
        graph.__dict__.update(columns)
        return graph

    @classmethod
    def _rebuilt(
        cls,
        store: SocialGraph,
        columns: "dict[str, object]",
        frozen_at_version: int,
    ) -> "FrozenGraph":
        """Rebuild a snapshot worker-side from a replayed entity store
        (:func:`repro.graph.snapfile.rebuild_store`) plus the mapped
        column families — the self-contained snapfile path, where no
        object-state pickle crosses the ship boundary.

        The mapped columns are adopted as-is; only the object-side
        derivatives (entity-ordered lists, ordinal maps, postings
        lists) are re-derived from the store's tables.  They come out
        identical to the parent's because the mapped orders are
        canonical: ``_person_ids``/``_forum_ids`` are sorted ids and
        message slabs are ``(creation_date, id)``-sorted, none of which
        depend on original insertion order.  Must run *before* any
        overlay replay mutates ``store`` — these lists capture
        freeze-time state."""
        graph = cls.__new__(cls)
        graph.__dict__.update(store.__dict__)
        graph.use_indexes = True
        graph.use_date_index = True
        graph.use_tag_index = True
        graph.frozen_at_version = frozen_at_version
        graph.__dict__.update(columns)
        by_date = lambda m: (m.creation_date, m.id)  # noqa: E731
        post_objs = sorted(store.posts.values(), key=by_date)
        comment_objs = sorted(store.comments.values(), key=by_date)
        graph._post_objs = post_objs
        graph._comment_objs = comment_objs
        msg_objs: list[Message] = [*post_objs, *comment_objs]
        graph._msg_objs = msg_objs
        graph._msg_ord = {m.id: i for i, m in enumerate(msg_objs)}
        graph._person_ord = {
            pid: i for i, pid in enumerate(graph._person_ids)
        }
        graph._forum_ord = {
            fid: i for i, fid in enumerate(graph._forum_ids)
        }
        posts = store.posts
        graph._forum_post_objs = {
            fid: [posts[mid] for _, mid in dated]
            for fid, dated in store._forum_posts_by_date.items()
            if dated
        }
        message = store.message
        graph._tag_objs = {
            tag_id: [message(mid) for _, mid in postings]
            for tag_id, postings in store._messages_with_tag.items()
            if postings
        }
        graph._lang_code_of = {
            value: code
            for code, value in enumerate(graph._post_language.dictionary)
        }
        country_persons: dict[int, list[int]] = {}
        for country_id in set(graph._person_country):
            country_persons[country_id] = list(
                SocialGraph.persons_in_country(graph, country_id)
            )
        graph._country_persons = country_persons
        return graph

    # ------------------------------------------------------------------
    # Column construction
    # ------------------------------------------------------------------

    def _build_columns(self) -> None:
        self._build_person_columns()
        self._build_message_columns()
        self._build_reply_columns()
        self._build_likes_columns()
        self._build_forum_columns()
        self._build_tag_columns()

    def _build_person_columns(self) -> None:
        person_ids = array("q", sorted(self.persons))
        person_ord = {pid: i for i, pid in enumerate(person_ids)}
        offsets = array("q", [0])
        targets = array("q")
        dates = array("q")
        country = array("q")
        persons = self.persons
        places = self.places
        for pid in person_ids:
            row = self._friends.get(pid)
            if row:
                targets.extend(row.keys())
                dates.extend(row.values())
            offsets.append(len(targets))
            country.append(places[persons[pid].city_id].part_of)
        self._person_ids = person_ids
        self._person_ord = person_ord
        self._knows_offsets = offsets
        self._knows_targets = targets
        self._knows_dates = dates
        self._person_country = country
        ordered = [persons[pid] for pid in person_ids]
        self._person_gender = StringColumn(p.gender for p in ordered)
        self._person_browser = StringColumn(p.browser_used for p in ordered)
        country_persons: dict[int, list[int]] = {}
        for country_id in {c for c in country}:
            country_persons[country_id] = list(
                SocialGraph.persons_in_country(self, country_id)
            )
        self._country_persons = country_persons

    def _build_message_columns(self) -> None:
        by_date = lambda m: (m.creation_date, m.id)  # noqa: E731
        post_objs = sorted(self.posts.values(), key=by_date)
        comment_objs = sorted(self.comments.values(), key=by_date)
        self._post_objs = post_objs
        self._comment_objs = comment_objs
        self._post_dates = array("q", (p.creation_date for p in post_objs))
        self._comment_dates = array(
            "q", (c.creation_date for c in comment_objs)
        )
        msg_objs: list[Message] = [*post_objs, *comment_objs]
        self._msg_objs = msg_objs
        self._msg_ord = {m.id: i for i, m in enumerate(msg_objs)}
        self._post_language = StringColumn(p.language for p in post_objs)
        self._post_browser = StringColumn(p.browser_used for p in post_objs)
        self._comment_browser = StringColumn(
            c.browser_used for c in comment_objs
        )

    def _build_reply_columns(self) -> None:
        msg_ord = self._msg_ord
        msg_objs = self._msg_objs
        posts = len(self._post_objs)
        # Direct reply CSR over combined message ordinals.
        offsets = array("q", [0])
        targets = array("q")
        for message in msg_objs:
            for reply in self._replies_of.get(message.id, ()):
                targets.append(msg_ord[reply.id])
            offsets.append(len(targets))
        self._reply_offsets = offsets
        self._reply_targets = targets
        # Root-post column: replyOf* resolved bottom-up with memoization.
        root_of_id: dict[int, int] = {}
        comments = self.comments
        root_ord = array("q", range(posts))
        for ordinal in range(posts, len(msg_objs)):
            chain: list[int] = []
            current = msg_objs[ordinal].id
            while current in comments:
                known = root_of_id.get(current)
                if known is not None:
                    current = known
                    break
                chain.append(current)
                reply = comments[current]
                current = (
                    reply.reply_of_post
                    if reply.reply_of_post >= 0
                    else reply.reply_of_comment
                )
            for mid in chain:
                root_of_id[mid] = current
            root_ord.append(msg_ord[current])
        self._root_ord = root_ord
        # Root-language code column for the comment slab: a comment's
        # BI-18 language is its root Post's, so its code indexes the
        # post language dictionary (the post slab reuses the post
        # language codes directly).
        post_codes = self._post_language.codes
        self._comment_root_lang = array(
            "i",
            (
                post_codes[root_ord[ordinal]]
                for ordinal in range(posts, len(msg_objs))
            ),
        )
        self._lang_code_of = {
            value: code
            for code, value in enumerate(self._post_language.dictionary)
        }
        # Thread closure CSR: post ordinal -> [post, *comment ordinals].
        members: list[list[int]] = [[p] for p in range(posts)]
        for ordinal in range(posts, len(msg_objs)):
            members[root_ord[ordinal]].append(ordinal)
        thread_offsets = array("q", [0])
        thread_members = array("q")
        for row in members:
            thread_members.extend(row)
            thread_offsets.append(len(thread_members))
        self._thread_offsets = thread_offsets
        self._thread_members = thread_members

    def _build_likes_columns(self) -> None:
        offsets = array("q", [0])
        person = array("q")
        dates = array("q")
        likes_of = self._likes_of_message
        for message in self._msg_objs:
            for like in likes_of.get(message.id, ()):
                person.append(like.person_id)
                dates.append(like.creation_date)
            offsets.append(len(person))
        self._likes_offsets = offsets
        self._likes_person = person
        self._likes_dates = dates

    def _build_forum_columns(self) -> None:
        forum_ids = array("q", sorted(self.forums))
        self._forum_ids = forum_ids
        self._forum_ord = {fid: i for i, fid in enumerate(forum_ids)}
        member_offsets = array("q", [0])
        member_person = array("q")
        member_dates = array("q")
        post_offsets = array("q", [0])
        post_targets = array("q")
        forum_post_objs: dict[int, list[Post]] = {}
        forum_post_dates: dict[int, array] = {}
        msg_ord = self._msg_ord
        posts = self.posts
        for fid in forum_ids:
            for membership in self._members_of_forum.get(fid, ()):
                member_person.append(membership.person_id)
                member_dates.append(membership.join_date)
            member_offsets.append(len(member_person))
            dated = self._forum_posts_by_date.get(fid, ())
            if dated:
                forum_post_objs[fid] = [posts[mid] for _, mid in dated]
                forum_post_dates[fid] = array("q", (d for d, _ in dated))
                post_targets.extend(msg_ord[mid] for _, mid in dated)
            post_offsets.append(len(post_targets))
        self._member_offsets = member_offsets
        self._member_person = member_person
        self._member_dates = member_dates
        self._forum_post_offsets = post_offsets
        self._forum_post_targets = post_targets
        self._forum_post_objs = forum_post_objs
        self._forum_post_date_cols = forum_post_dates

    def _build_tag_columns(self) -> None:
        tag_objs: dict[int, list[Message]] = {}
        tag_dates: dict[int, array] = {}
        message = self.message
        for tag_id, postings in self._messages_with_tag.items():
            if not postings:
                continue
            tag_objs[tag_id] = [message(mid) for _, mid in postings]
            tag_dates[tag_id] = array("q", (d for d, _ in postings))
        self._tag_objs = tag_objs
        self._tag_dates = tag_dates

    # ------------------------------------------------------------------
    # Columnar accessor overrides (identical rows, slice-backed)
    # ------------------------------------------------------------------

    def date_slabs(
        self, kind: str | None
    ) -> "tuple[tuple[list[Message], array], ...]":
        """The ``(creationDate, id)``-sorted message lists with their
        parallel date columns, restricted to ``kind`` — the engine's
        frozen window-scan slabs."""
        if kind == "post":
            return ((self._post_objs, self._post_dates),)
        if kind == "comment":
            return ((self._comment_objs, self._comment_dates),)
        return (
            (self._post_objs, self._post_dates),
            (self._comment_objs, self._comment_dates),
        )

    def language_slabs(
        self, kind: str | None
    ) -> "tuple[tuple[list[Message], array, array], ...]":
        """:meth:`date_slabs` plus the parallel root-language code
        column per slab — the engine's language-pushdown fast path.
        Codes index the post language dictionary (a Comment's language
        is its root Post's, per BI 18)."""
        post_slab = (
            self._post_objs, self._post_dates, self._post_language.codes
        )
        comment_slab = (
            self._comment_objs, self._comment_dates, self._comment_root_lang
        )
        if kind == "post":
            return (post_slab,)
        if kind == "comment":
            return (comment_slab,)
        return (post_slab, comment_slab)

    def language_codes(self, languages: Iterable[str]) -> set[int]:
        """The language-dictionary codes of ``languages`` (values the
        dictionary never saw drop out — no message can match them)."""
        code_of = self._lang_code_of
        return {code_of[v] for v in languages if v in code_of}

    def messages_with_tag_in_window(
        self,
        tag_id: int,
        start: DateTime | None = None,
        end: DateTime | None = None,
    ) -> Iterator[Message]:
        objs = self._tag_objs.get(tag_id)
        if objs is None:
            return
        dates = self._tag_dates[tag_id]
        lo = 0 if start is None else bisect_left(dates, start)
        hi = len(dates) if end is None else bisect_left(dates, end)
        yield from objs[lo:hi]

    def posts_in_forum_window(
        self,
        forum_id: int,
        start: DateTime | None = None,
        end: DateTime | None = None,
    ) -> Iterator[Post]:
        objs = self._forum_post_objs.get(forum_id)
        if objs is None:
            return
        dates = self._forum_post_date_cols[forum_id]
        lo = 0 if start is None else bisect_left(dates, start)
        hi = len(dates) if end is None else bisect_left(dates, end)
        yield from objs[lo:hi]

    def root_post_of(self, message: Message) -> Post:
        # Root ordinals are < len(_post_objs) by construction, so the
        # combined-list lookup always lands on a Post.
        return self._msg_objs[  # type: ignore[return-value]
            self._root_ord[self._msg_ord[message.id]]
        ]

    def language_of_message(self, message: Message) -> str:
        # The root ordinal indexes the post language column directly
        # (a Post is its own root), skipping the root object entirely.
        return self._post_language[self._root_ord[self._msg_ord[message.id]]]

    def thread_messages(self, post: Post) -> Iterator[Message]:
        ordinal = self._msg_ord[post.id]
        lo = self._thread_offsets[ordinal]
        hi = self._thread_offsets[ordinal + 1]
        objs = self._msg_objs
        for member in self._thread_members[lo:hi]:
            yield objs[member]

    def persons_in_country(self, country_id: int) -> Iterator[int]:
        yield from self._country_persons.get(country_id, ())

    def country_of_person(self, person_id: int) -> int:
        return self._person_country[self._person_ord[person_id]]

    # ------------------------------------------------------------------
    # Footprint
    # ------------------------------------------------------------------

    def footprint(self) -> dict[str, int]:
        """Bytes per column family (array buffers and code columns; the
        shared live tables are deliberately excluded — they exist with
        or without the snapshot)."""
        return {
            "person_columns": _array_bytes(self._person_ids)
            + _array_bytes(self._person_country),
            "knows_csr": _array_bytes(self._knows_offsets)
            + _array_bytes(self._knows_targets)
            + _array_bytes(self._knows_dates),
            "likes_csr": _array_bytes(self._likes_offsets)
            + _array_bytes(self._likes_person)
            + _array_bytes(self._likes_dates),
            "membership_csr": _array_bytes(self._member_offsets)
            + _array_bytes(self._member_person)
            + _array_bytes(self._member_dates),
            "reply_csr": _array_bytes(self._reply_offsets)
            + _array_bytes(self._reply_targets)
            + _array_bytes(self._root_ord)
            + _array_bytes(self._thread_offsets)
            + _array_bytes(self._thread_members),
            "forum_post_csr": _array_bytes(self._forum_post_offsets)
            + _array_bytes(self._forum_post_targets)
            + _array_bytes(self._forum_ids),
            "date_columns": _array_bytes(self._post_dates)
            + _array_bytes(self._comment_dates)
            + sum(_array_bytes(a) for a in self._tag_dates.values())
            + sum(
                _array_bytes(a)
                for a in self._forum_post_date_cols.values()
            ),
            "string_columns": self._post_language.nbytes()
            + self._post_browser.nbytes()
            + self._comment_browser.nbytes()
            + self._person_gender.nbytes()
            + self._person_browser.nbytes()
            + _array_bytes(self._comment_root_lang),
        }


def _immutable(name: str):
    def method(self: FrozenGraph, *args: object, **kwargs: object) -> None:
        raise TypeError(
            f"FrozenGraph is immutable: {name}() is not allowed; apply "
            "writes to the live SocialGraph and refreeze"
        )

    method.__name__ = name
    return method


#: Every SocialGraph mutator, overridden to raise on the snapshot.
_MUTATORS = (
    "add_place", "add_organisation", "add_tag_class", "add_tag",
    "add_person", "add_study_at", "add_work_at", "add_knows",
    "add_forum", "add_membership", "add_post", "add_comment", "add_like",
    "delete_like", "delete_knows", "delete_membership", "delete_comment",
    "delete_post", "delete_forum", "delete_person",
)
for _name in _MUTATORS:
    setattr(FrozenGraph, _name, _immutable(_name))
del _name


def freeze(graph: SocialGraph) -> FrozenGraph:
    """Build a :class:`FrozenGraph` snapshot of ``graph`` and publish
    its per-column-family footprint to the metrics registry
    (``repro_frozen_bytes{family=...}`` gauges and the
    ``repro_frozen_freezes_total`` counter)."""
    if isinstance(graph, FrozenGraph):
        return graph
    snapshot = FrozenGraph(graph)
    metrics = registry()
    for family, nbytes in snapshot.footprint().items():
        metrics.gauge("repro_frozen_bytes", family=family).set(float(nbytes))
    metrics.counter("repro_frozen_freezes_total").inc()
    return snapshot


class FreezeManager:
    """The merge-on-read snapshot lifecycle around write batches.

    Construction registers a write-hook on the live store that records
    every mutation into a :class:`~repro.graph.delta.DeltaOverlay`.
    ``frozen()`` then serves reads without per-write refreezes:

    * no snapshot yet (or after ``invalidate()``) — freeze, clear the
      overlay (``freezes`` += 1);
    * overlay empty — the cached snapshot, unchanged.  Static-world
      inserts (places, tags, organisations, study/work records) land
      here even though ``write_version`` moved: no frozen column
      depends on them;
    * overlay outstanding rows above ``compact_fraction`` of the base
      snapshot's row count — :meth:`compact` folds the overlay into a
      fresh snapshot (``compactions`` += 1 and the
      ``repro_delta_compactions_total`` counter);
    * otherwise — a cached :class:`~repro.graph.delta.OverlaidGraph`
      merge view over the snapshot and the (live, still-recording)
      overlay.

    Every ``frozen()`` call republishes the per-family
    ``repro_delta_rows`` / ``repro_delta_tombstones`` gauges.
    ``compact_fraction`` defaults through
    :func:`repro.graph.delta.resolve_compact_fraction`
    (``REPRO_DELTA_COMPACT_FRACTION``, 0.25); ``0.0`` restores the old
    refreeze-on-any-write behaviour, which the delta-overlay benchmark
    uses as its baseline.  ``detach()`` unregisters the write-hook —
    drivers call it when their run ends so abandoned managers stop
    recording.
    """

    def __init__(
        self, graph: SocialGraph, compact_fraction: float | None = None
    ):
        if isinstance(graph, FrozenGraph):
            raise TypeError("FreezeManager wraps the live store")
        from repro.graph.delta import DeltaOverlay, resolve_compact_fraction

        self.graph = graph
        self.compact_fraction = resolve_compact_fraction(compact_fraction)
        self.overlay = DeltaOverlay()
        graph.register_delta_hook(self.overlay.record)
        self._snapshot: FrozenGraph | None = None
        self._overlaid: FrozenGraph | None = None
        self._base_rows = 0
        self.freezes = 0
        self.compactions = 0

    def frozen(self) -> FrozenGraph:
        snapshot = self._snapshot
        if snapshot is None:
            return self._refreeze()
        overlay = self.overlay
        if overlay.is_empty():
            return snapshot
        self._publish_overlay_gauges()
        if overlay.total_rows() > self.compact_fraction * max(
            self._base_rows, 1
        ):
            return self.compact()
        overlaid = self._overlaid
        if overlaid is None:
            from repro.graph.delta import OverlaidGraph

            overlaid = self._overlaid = OverlaidGraph(snapshot, overlay)
        return overlaid

    def compact(self) -> FrozenGraph:
        """Fold the outstanding overlay into a fresh snapshot."""
        registry().counter("repro_delta_compactions_total").inc()
        self.compactions += 1
        return self._refreeze()

    def _refreeze(self) -> FrozenGraph:
        graph = self.graph
        snapshot = self._snapshot = freeze(graph)
        self._overlaid = None
        self._base_rows = (
            len(graph.persons) + len(graph.knows_edges)
            + len(graph.likes_edges) + len(graph.memberships)
            + len(graph.posts) + len(graph.comments) + len(graph.forums)
        )
        self.overlay.clear()
        self.freezes += 1
        self._publish_overlay_gauges()
        return snapshot

    def _publish_overlay_gauges(self) -> None:
        from repro.graph.delta import FAMILIES

        metrics = registry()
        overlay = self.overlay
        for family in FAMILIES:
            metrics.gauge("repro_delta_rows", family=family).set(
                float(overlay.rows(family))
            )
            metrics.gauge("repro_delta_tombstones", family=family).set(
                float(overlay.tombstone_count(family))
            )

    def invalidate(self) -> None:
        """Drop the cached snapshot unconditionally; the next
        ``frozen()`` rebuilds (a freeze, not a compaction)."""
        self._snapshot = None
        self._overlaid = None

    def detach(self) -> None:
        """Stop recording: unregister this manager's write-hook."""
        self.graph.unregister_delta_hook(self.overlay.record)
