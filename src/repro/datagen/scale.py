"""Scale factors (spec section 2.3.4.1, Table 2.12).

The spec defines SFs by the CSV size of the output and scales them by
the number of Persons over a fixed 3-year window.  ``SCALE_FACTORS``
reproduces Table 2.12's person counts; :func:`persons_for_scale_factor`
interpolates the table for fractional "micro" SFs, which this pure-
Python reproduction uses in its benchmarks (see DESIGN.md substitution
table — large SFs are runtime-gated, the scaling *law* is what the
benchmarks check).
"""

from __future__ import annotations

import math

#: Table 2.12 — scale factor -> (#persons, #nodes, #edges).
SCALE_FACTORS: dict[float, tuple[int, int, int]] = {
    0.1: (1_500, 327_600, 1_500_000),
    0.3: (3_500, 908_000, 4_600_000),
    1.0: (11_000, 3_200_000, 17_300_000),
    3.0: (27_000, 9_300_000, 52_700_000),
    10.0: (73_000, 30_000_000, 176_600_000),
    30.0: (182_000, 88_800_000, 540_900_000),
    100.0: (499_000, 282_600_000, 1_800_000_000),
    300.0: (1_250_000, 817_300_000, 5_300_000_000),
    1000.0: (3_600_000, 2_700_000_000, 17_000_000_000),
}


def persons_for_scale_factor(scale_factor: float) -> int:
    """Number of Persons for a scale factor, per Table 2.12.

    Exact for the table's SFs; log-log linear interpolation/extrapolation
    for intermediate and micro SFs.  The table is very close to a power
    law ``persons = 11000 * sf^0.83``.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    if scale_factor in SCALE_FACTORS:
        return SCALE_FACTORS[scale_factor][0]
    known = sorted(SCALE_FACTORS)
    log_sf = math.log10(scale_factor)
    xs = [math.log10(sf) for sf in known]
    ys = [math.log10(SCALE_FACTORS[sf][0]) for sf in known]
    if log_sf <= xs[0]:
        lo, hi = 0, 1
    elif log_sf >= xs[-1]:
        lo, hi = len(xs) - 2, len(xs) - 1
    else:
        hi = next(i for i, x in enumerate(xs) if x >= log_sf)
        lo = hi - 1
    slope = (ys[hi] - ys[lo]) / (xs[hi] - xs[lo])
    log_persons = ys[lo] + slope * (log_sf - xs[lo])
    return max(10, round(10 ** log_persons))


def approximate_scale_factor(num_persons: int) -> float:
    """Inverse of :func:`persons_for_scale_factor` (bisection on the fit)."""
    if num_persons <= 0:
        raise ValueError("num_persons must be positive")
    lo, hi = 1e-6, 1e5
    for _ in range(80):
        mid = math.sqrt(lo * hi)
        if persons_for_scale_factor(mid) < num_persons:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)
