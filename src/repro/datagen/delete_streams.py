"""Delete streams — the insert/delete mix the spec's section 5.2
announces and the VLDB 2022 BI workload ships.

Datagen marks a deterministic fraction of dynamic entities and edges for
deletion and assigns each a deletion timestamp inside the update window
(at or after the insert cutoff, strictly after the entity's creation).
Restricting deletions to the update window keeps the bulk-load dataset a
clean snapshot; entities created *inside* the window can still be
deleted there (insert followed by delete), like the official streams.

Only group forums receive explicit DEL 4 events — walls and albums
leave the graph through their owner's DEL 1 cascade.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.datagen.generator import SocialNetworkData
from repro.queries.interactive.deletes import (
    DeleteForumParams,
    DeleteFriendshipParams,
    DeleteLikeParams,
    DeleteMembershipParams,
    DeleteMessageParams,
    DeletePersonParams,
)
from repro.schema.entities import ForumKind
from repro.util.dates import DateTime
from repro.util.rng import DeterministicRng

DeleteParams = Union[
    DeletePersonParams,
    DeleteLikeParams,
    DeleteForumParams,
    DeleteMembershipParams,
    DeleteMessageParams,
    DeleteFriendshipParams,
]

#: Default per-type deletion probabilities (fractions of all entities).
DELETE_PROBABILITIES: dict[str, float] = {
    "person": 0.01,
    "like": 0.05,
    "forum": 0.02,
    "membership": 0.03,
    "post": 0.04,
    "comment": 0.04,
    "knows": 0.03,
}


@dataclass(slots=True, frozen=True)
class DeleteOperation:
    """One line of the delete stream."""

    timestamp: DateTime
    operation_id: int
    params: DeleteParams


def _deletion_time(
    rng: DeterministicRng, net: SocialNetworkData, created: DateTime
) -> DateTime | None:
    """A timestamp in [max(created, cutoff), end), None if degenerate."""
    earliest = max(created + 1, net.cutoff)
    latest = net.config.end_millis
    if earliest >= latest:
        return None
    return earliest + int(rng.random() * (latest - earliest))


def build_delete_streams(
    net: SocialNetworkData,
    probabilities: dict[str, float] | None = None,
) -> list[DeleteOperation]:
    """Select deletion victims deterministically and order their events."""
    p = dict(DELETE_PROBABILITIES)
    if probabilities:
        p.update(probabilities)
    seed = net.config.seed
    operations: list[DeleteOperation] = []

    def consider(kind: str, label: object, created: DateTime) -> DateTime | None:
        rng = DeterministicRng(seed, "delete", kind, label)
        if rng.random() >= p[kind]:
            return None
        return _deletion_time(rng, net, created)

    for person in net.persons:
        ts = consider("person", person.id, person.creation_date)
        if ts is not None:
            operations.append(
                DeleteOperation(ts, 1, DeletePersonParams(person.id))
            )
    for like in net.likes:
        ts = consider(
            "like", f"{like.person_id}-{like.message_id}", like.creation_date
        )
        if ts is not None:
            operations.append(
                DeleteOperation(
                    ts,
                    2 if like.is_post else 3,
                    DeleteLikeParams(like.person_id, like.message_id),
                )
            )
    for forum in net.forums:
        if forum.kind is not ForumKind.GROUP:
            continue
        ts = consider("forum", forum.id, forum.creation_date)
        if ts is not None:
            operations.append(
                DeleteOperation(ts, 4, DeleteForumParams(forum.id))
            )
    for membership in net.memberships:
        ts = consider(
            "membership",
            f"{membership.forum_id}-{membership.person_id}",
            membership.join_date,
        )
        if ts is not None:
            operations.append(
                DeleteOperation(
                    ts,
                    5,
                    DeleteMembershipParams(
                        membership.forum_id, membership.person_id
                    ),
                )
            )
    for post in net.posts:
        ts = consider("post", post.id, post.creation_date)
        if ts is not None:
            operations.append(
                DeleteOperation(ts, 6, DeleteMessageParams(post.id))
            )
    for comment in net.comments:
        ts = consider("comment", comment.id, comment.creation_date)
        if ts is not None:
            operations.append(
                DeleteOperation(ts, 7, DeleteMessageParams(comment.id))
            )
    for edge in net.knows:
        ts = consider(
            "knows", f"{edge.person1}-{edge.person2}", edge.creation_date
        )
        if ts is not None:
            operations.append(
                DeleteOperation(
                    ts, 8, DeleteFriendshipParams(edge.person1, edge.person2)
                )
            )

    operations.sort(key=lambda op: (op.timestamp, op.operation_id))
    return operations


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _payload(params: DeleteParams) -> list:
    if isinstance(params, DeletePersonParams):
        return [params.person_id]
    if isinstance(params, DeleteLikeParams):
        return [params.person_id, params.message_id]
    if isinstance(params, DeleteForumParams):
        return [params.forum_id]
    if isinstance(params, DeleteMembershipParams):
        return [params.forum_id, params.person_id]
    if isinstance(params, DeleteMessageParams):
        return [params.message_id]
    if isinstance(params, DeleteFriendshipParams):
        return [params.person1_id, params.person2_id]
    raise TypeError(f"unknown params type {type(params)!r}")


def _parse_payload(operation_id: int, fields: list[str]) -> DeleteParams:
    values = [int(f) for f in fields]
    if operation_id == 1:
        return DeletePersonParams(values[0])
    if operation_id in (2, 3):
        return DeleteLikeParams(values[0], values[1])
    if operation_id == 4:
        return DeleteForumParams(values[0])
    if operation_id == 5:
        return DeleteMembershipParams(values[0], values[1])
    if operation_id in (6, 7):
        return DeleteMessageParams(values[0])
    if operation_id == 8:
        return DeleteFriendshipParams(values[0], values[1])
    raise ValueError(f"unknown delete operation id {operation_id}")


def write_delete_stream(
    operations: list[DeleteOperation], output_dir: Path | str
) -> Path:
    """Write ``deleteStream_0_0.csv`` next to the dataset."""
    root = Path(output_dir) / "social_network"
    root.mkdir(parents=True, exist_ok=True)
    path = root / "deleteStream_0_0.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter="|")
        for op in operations:
            writer.writerow(
                [op.timestamp, op.operation_id] + _payload(op.params)
            )
    return path


def read_delete_stream(dataset_dir: Path | str) -> list[DeleteOperation]:
    """Read a delete stream written by :func:`write_delete_stream`."""
    path = Path(dataset_dir) / "deleteStream_0_0.csv"
    if not path.exists():
        return []
    operations = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle, delimiter="|"):
            operation_id = int(row[1])
            operations.append(
                DeleteOperation(
                    int(row[0]), operation_id, _parse_payload(operation_id, row[2:])
                )
            )
    operations.sort(key=lambda op: (op.timestamp, op.operation_id))
    return operations
