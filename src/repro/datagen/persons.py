"""Person generation — first Datagen stage (spec section 2.3.3.2).

Generates all Persons "and the minimum necessary information to
operate": correlated attributes (country -> city, names, languages, IP),
interests, study/work relations, and each person's *target degree* for
the knows-generation stage, drawn from the Facebook-like distribution.

Attribute correlations implemented with the property-dictionary model:

* country drawn by population weight; city by rank within country;
* first/last names from the country-parameterised ranked dictionaries;
* languages = country languages plus English with probability 0.4;
* IP address inside the country's IP zone;
* interests from the country's ranked tag dictionary via a Zipf-like
  probability function (popular tags of the country are most likely).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.config import DatagenConfig
from repro.datagen.dictionaries import (
    BROWSERS,
    Dictionaries,
    EMAIL_PROVIDERS,
    first_names_for,
    surnames_for,
)
from repro.datagen.distributions import sample_degree
from repro.schema.entities import Person
from repro.schema.relations import StudyAt, WorkAt
from repro.util.dates import MILLIS_PER_DAY, make_date
from repro.util.rng import DeterministicRng

_BIRTH_YEARS = (1980, 1995)
_MIN_INTERESTS, _MAX_INTERESTS = 3, 8
_STUDY_PROBABILITY = 0.8
_SECOND_LANGUAGE_PROBABILITY = 0.4


@dataclass(slots=True)
class PersonBundle:
    """Everything the person stage produces for later stages."""

    persons: list[Person]
    study_at: list[StudyAt]
    work_at: list[WorkAt]
    #: person index -> target number of knows edges.
    target_degree: list[int]
    #: person index -> country index (cached; city lookup is per person).
    country_of: list[int]
    #: person index -> university index (-1 when the person did not study).
    university_of: list[int]


def _browser(rng: DeterministicRng) -> str:
    names = [name for name, _ in BROWSERS]
    weights = [w for _, w in BROWSERS]
    return names[rng.weighted_index(weights)]


def _ip_address(rng: DeterministicRng, prefix: str) -> str:
    return f"{prefix}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"


def generate_persons(config: DatagenConfig, dicts: Dictionaries) -> PersonBundle:
    """Generate ``config.num_persons`` Persons with correlated attributes."""
    persons: list[Person] = []
    study_at: list[StudyAt] = []
    work_at: list[WorkAt] = []
    target_degree: list[int] = []
    country_of: list[int] = []
    university_of: list[int] = []

    weights = list(dicts.country_weights)
    span_millis = config.end_millis - config.start_millis
    # Keep one simulated month of headroom so persons can act after joining.
    join_span = span_millis - 30 * MILLIS_PER_DAY

    for pid in range(config.num_persons):
        rng = DeterministicRng(config.seed, "person", pid)

        country = rng.weighted_index(weights)
        country_name = dicts.country_names[country]
        # Cities ranked by population: rank 0 (the capital) most likely.
        cities = dicts.cities_of_country[country]
        city = cities[rng.zipf_rank(len(cities), exponent=1.2)]

        gender = "male" if rng.random() < 0.5 else "female"
        first_pool = first_names_for(country, country_name, gender)
        last_pool = surnames_for(country, country_name)
        first_name = first_pool[rng.zipf_rank(len(first_pool))]
        last_name = last_pool[rng.zipf_rank(len(last_pool))]

        birth_year = rng.randint(*_BIRTH_YEARS)
        birthday = make_date(birth_year, rng.randint(1, 12), rng.randint(1, 28))

        # Early-biased join dates: sqrt transform front-loads sign-ups,
        # mimicking a network growing fastest after launch.
        creation = config.start_millis + int((rng.random() ** 2) * join_span)

        speaks = list(dicts.country_languages[country])
        if "en" not in speaks and rng.random() < _SECOND_LANGUAGE_PROBABILITY:
            speaks.append("en")

        emails = [
            f"{first_name}.{last_name}{pid}@{rng.choice(EMAIL_PROVIDERS)}".lower()
            for _ in range(rng.randint(1, 3))
        ]

        # Interests: Zipf over the country's ranked tag dictionary.
        ranked_tags = dicts.tags_by_country[country]
        interests: list[int] = []
        seen: set[int] = set()
        for _ in range(rng.randint(_MIN_INTERESTS, _MAX_INTERESTS)):
            tag = ranked_tags[rng.zipf_rank(len(ranked_tags), exponent=1.3)]
            if tag not in seen:
                seen.add(tag)
                interests.append(tag)

        person = Person(
            id=pid,
            first_name=first_name,
            last_name=last_name,
            gender=gender,
            birthday=birthday,
            creation_date=creation,
            location_ip=_ip_address(rng, dicts.country_ip_prefix[country]),
            browser_used=_browser(rng),
            city_id=city,
            emails=emails,
            speaks=speaks,
            interests=interests,
        )
        persons.append(person)
        country_of.append(country)
        target_degree.append(sample_degree(rng, config.num_persons))

        university = -1
        if rng.random() < _STUDY_PROBABILITY:
            # Universities correlate with the home country (people mostly
            # study where they live) with a small chance of going abroad.
            uni_country = country
            if rng.random() < 0.1:
                uni_country = rng.randint(0, dicts.num_countries - 1)
            unis = dicts.universities_of_country[uni_country]
            if unis:
                university = unis[rng.zipf_rank(len(unis), exponent=1.2)]
                class_year = birth_year + rng.randint(21, 26)
                study_at.append(StudyAt(pid, university, class_year))
        university_of.append(university)

        for _ in range(rng.weighted_index([0.35, 0.45, 0.2])):
            companies = dicts.companies_of_country[country]
            company = companies[rng.zipf_rank(len(companies))]
            work_from = birth_year + rng.randint(20, 30)
            work_at.append(WorkAt(pid, company, work_from))

    return PersonBundle(
        persons=persons,
        study_at=study_at,
        work_at=work_at,
        target_degree=target_degree,
        country_of=country_of,
        university_of=university_of,
    )
