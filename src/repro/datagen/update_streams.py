"""Update streams (spec section 2.3.4.3, Tables 2.17 - 2.18).

Events with a creation date at or after the update cutoff — roughly the
last 10 % of the generated network — become insert operations IU 1-8.
Each operation carries the generic header of Table 2.17:

* ``timestamp`` (t) — when the event happened in the simulation;
* ``dependant timestamp`` (t_d) — the creation time of the newest
  entity the operation depends on (the driver may not schedule the
  operation before its dependency exists);
* ``operation id`` — 1-8 per Table 2.18.

The streams are partitioned as the spec prescribes:
``updateStream_0_0_person.csv`` carries IU 1 and
``updateStream_0_0_forum.csv`` carries IU 2-8.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.datagen.generator import SocialNetworkData
from repro.queries.interactive.updates import (
    AddCommentParams,
    AddForumParams,
    AddFriendshipParams,
    AddLikeParams,
    AddMembershipParams,
    AddPersonParams,
    AddPostParams,
)
from repro.util.dates import DateTime

UpdateParams = Union[
    AddPersonParams,
    AddLikeParams,
    AddForumParams,
    AddMembershipParams,
    AddPostParams,
    AddCommentParams,
    AddFriendshipParams,
]


@dataclass(slots=True, frozen=True)
class UpdateOperation:
    """One line of an update stream (Table 2.17 header + payload)."""

    timestamp: DateTime
    dependant_timestamp: DateTime
    operation_id: int
    params: UpdateParams


def build_update_streams(net: SocialNetworkData) -> list[UpdateOperation]:
    """Extract the post-cutoff events as IU operations, ordered by time."""
    cutoff = net.cutoff
    operations: list[UpdateOperation] = []
    person_created = {p.id: p.creation_date for p in net.persons}
    forum_created = {f.id: f.creation_date for f in net.forums}
    message_created = {m.id: m.creation_date for m in net.posts}
    message_created.update({m.id: m.creation_date for m in net.comments})
    message_is_post = {m.id: True for m in net.posts}
    message_is_post.update({m.id: False for m in net.comments})

    study_by_person: dict[int, list] = {}
    for record in net.study_at:
        study_by_person.setdefault(record.person_id, []).append(record)
    work_by_person: dict[int, list] = {}
    for record in net.work_at:
        work_by_person.setdefault(record.person_id, []).append(record)

    for person in net.persons:
        if person.creation_date < cutoff:
            continue
        operations.append(
            UpdateOperation(
                person.creation_date,
                0,
                1,
                AddPersonParams(
                    person_id=person.id,
                    first_name=person.first_name,
                    last_name=person.last_name,
                    gender=person.gender,
                    birthday=person.birthday,
                    creation_date=person.creation_date,
                    location_ip=person.location_ip,
                    browser_used=person.browser_used,
                    city_id=person.city_id,
                    languages=tuple(person.speaks),
                    emails=tuple(person.emails),
                    tag_ids=tuple(person.interests),
                    study_at=tuple(
                        (s.university_id, s.class_year)
                        for s in study_by_person.get(person.id, [])
                    ),
                    work_at=tuple(
                        (w.company_id, w.work_from)
                        for w in work_by_person.get(person.id, [])
                    ),
                ),
            )
        )

    for like in net.likes:
        if like.creation_date < cutoff:
            continue
        dependant = max(
            person_created[like.person_id], message_created[like.message_id]
        )
        operations.append(
            UpdateOperation(
                like.creation_date,
                dependant,
                2 if like.is_post else 3,
                AddLikeParams(like.person_id, like.message_id, like.creation_date),
            )
        )

    for forum in net.forums:
        if forum.creation_date < cutoff:
            continue
        operations.append(
            UpdateOperation(
                forum.creation_date,
                person_created[forum.moderator_id],
                4,
                AddForumParams(
                    forum.id,
                    forum.title,
                    forum.creation_date,
                    forum.moderator_id,
                    tuple(forum.tag_ids),
                ),
            )
        )

    for membership in net.memberships:
        if membership.join_date < cutoff:
            continue
        dependant = max(
            person_created[membership.person_id],
            forum_created[membership.forum_id],
        )
        operations.append(
            UpdateOperation(
                membership.join_date,
                dependant,
                5,
                AddMembershipParams(
                    membership.person_id, membership.forum_id, membership.join_date
                ),
            )
        )

    for post in net.posts:
        if post.creation_date < cutoff:
            continue
        dependant = max(
            person_created[post.creator_id], forum_created[post.forum_id]
        )
        operations.append(
            UpdateOperation(
                post.creation_date,
                dependant,
                6,
                AddPostParams(
                    post_id=post.id,
                    image_file=post.image_file,
                    creation_date=post.creation_date,
                    location_ip=post.location_ip,
                    browser_used=post.browser_used,
                    language=post.language,
                    content=post.content,
                    length=post.length,
                    author_person_id=post.creator_id,
                    forum_id=post.forum_id,
                    country_id=post.country_id,
                    tag_ids=tuple(post.tag_ids),
                ),
            )
        )

    for comment in net.comments:
        if comment.creation_date < cutoff:
            continue
        parent = (
            comment.reply_of_post
            if comment.reply_of_post >= 0
            else comment.reply_of_comment
        )
        dependant = max(
            person_created[comment.creator_id], message_created[parent]
        )
        operations.append(
            UpdateOperation(
                comment.creation_date,
                dependant,
                7,
                AddCommentParams(
                    comment_id=comment.id,
                    creation_date=comment.creation_date,
                    location_ip=comment.location_ip,
                    browser_used=comment.browser_used,
                    content=comment.content,
                    length=comment.length,
                    author_person_id=comment.creator_id,
                    country_id=comment.country_id,
                    reply_to_post_id=comment.reply_of_post,
                    reply_to_comment_id=comment.reply_of_comment,
                    tag_ids=tuple(comment.tag_ids),
                ),
            )
        )

    for edge in net.knows:
        if edge.creation_date < cutoff:
            continue
        dependant = max(
            person_created[edge.person1], person_created[edge.person2]
        )
        operations.append(
            UpdateOperation(
                edge.creation_date,
                dependant,
                8,
                AddFriendshipParams(edge.person1, edge.person2, edge.creation_date),
            )
        )

    operations.sort(key=lambda op: (op.timestamp, op.operation_id))
    return operations


# ---------------------------------------------------------------------------
# Serialization (Table 2.18 line formats)
# ---------------------------------------------------------------------------


def _join_ids(ids: tuple[int, ...]) -> str:
    return ";".join(str(i) for i in ids)


def _join_pairs(pairs: tuple[tuple[int, int], ...]) -> str:
    return ";".join(f"{a},{b}" for a, b in pairs)


def _payload(params: UpdateParams) -> list:
    if isinstance(params, AddPersonParams):
        return [
            params.person_id, params.first_name, params.last_name,
            params.gender, params.birthday, params.creation_date,
            params.location_ip, params.browser_used, params.city_id,
            ";".join(params.languages), ";".join(params.emails),
            _join_ids(params.tag_ids), _join_pairs(params.study_at),
            _join_pairs(params.work_at),
        ]
    if isinstance(params, AddLikeParams):
        return [params.person_id, params.message_id, params.creation_date]
    if isinstance(params, AddForumParams):
        return [
            params.forum_id, params.forum_title, params.creation_date,
            params.moderator_person_id, _join_ids(params.tag_ids),
        ]
    if isinstance(params, AddMembershipParams):
        return [params.person_id, params.forum_id, params.join_date]
    if isinstance(params, AddPostParams):
        return [
            params.post_id, params.image_file, params.creation_date,
            params.location_ip, params.browser_used, params.language,
            params.content, params.length, params.author_person_id,
            params.forum_id, params.country_id, _join_ids(params.tag_ids),
        ]
    if isinstance(params, AddCommentParams):
        return [
            params.comment_id, params.creation_date, params.location_ip,
            params.browser_used, params.content, params.length,
            params.author_person_id, params.country_id,
            params.reply_to_post_id, params.reply_to_comment_id,
            _join_ids(params.tag_ids),
        ]
    if isinstance(params, AddFriendshipParams):
        return [params.person1_id, params.person2_id, params.creation_date]
    raise TypeError(f"unknown params type {type(params)!r}")


def write_update_streams(
    operations: list[UpdateOperation],
    output_dir: Path | str,
    parts: int = 1,
) -> tuple[Path, Path]:
    """Write the person and forum stream files next to the dataset.

    ``parts`` shards each stream into ``updateStream_0_<part>_person.csv``
    / ``..._forum.csv`` round-robin — the spec's per-driver-thread stream
    files (the ``*`` of section 2.3.4.3).  Returns the first part paths.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    root = Path(output_dir) / "social_network"
    root.mkdir(parents=True, exist_ok=True)
    person_files = [
        open(root / f"updateStream_0_{part}_person.csv", "w", newline="")
        for part in range(parts)
    ]
    forum_files = [
        open(root / f"updateStream_0_{part}_forum.csv", "w", newline="")
        for part in range(parts)
    ]
    try:
        person_writers = [csv.writer(f, delimiter="|") for f in person_files]
        forum_writers = [csv.writer(f, delimiter="|") for f in forum_files]
        person_index = forum_index = 0
        for op in operations:
            if op.operation_id == 1:
                writer = person_writers[person_index % parts]
                person_index += 1
            else:
                writer = forum_writers[forum_index % parts]
                forum_index += 1
            writer.writerow(
                [op.timestamp, op.dependant_timestamp, op.operation_id]
                + _payload(op.params)
            )
    finally:
        for handle in person_files + forum_files:
            handle.close()
    return (
        root / "updateStream_0_0_person.csv",
        root / "updateStream_0_0_forum.csv",
    )


def _split_ids(text: str) -> tuple[int, ...]:
    return tuple(int(x) for x in text.split(";") if x)


def _split_pairs(text: str) -> tuple[tuple[int, int], ...]:
    pairs = []
    for item in text.split(";"):
        if item:
            a, b = item.split(",")
            pairs.append((int(a), int(b)))
    return tuple(pairs)


def _parse_payload(operation_id: int, fields: list[str]) -> UpdateParams:
    if operation_id == 1:
        return AddPersonParams(
            person_id=int(fields[0]), first_name=fields[1],
            last_name=fields[2], gender=fields[3], birthday=int(fields[4]),
            creation_date=int(fields[5]), location_ip=fields[6],
            browser_used=fields[7], city_id=int(fields[8]),
            languages=tuple(x for x in fields[9].split(";") if x),
            emails=tuple(x for x in fields[10].split(";") if x),
            tag_ids=_split_ids(fields[11]),
            study_at=_split_pairs(fields[12]),
            work_at=_split_pairs(fields[13]),
        )
    if operation_id in (2, 3):
        return AddLikeParams(int(fields[0]), int(fields[1]), int(fields[2]))
    if operation_id == 4:
        return AddForumParams(
            int(fields[0]), fields[1], int(fields[2]), int(fields[3]),
            _split_ids(fields[4]),
        )
    if operation_id == 5:
        return AddMembershipParams(int(fields[0]), int(fields[1]), int(fields[2]))
    if operation_id == 6:
        return AddPostParams(
            post_id=int(fields[0]), image_file=fields[1],
            creation_date=int(fields[2]), location_ip=fields[3],
            browser_used=fields[4], language=fields[5], content=fields[6],
            length=int(fields[7]), author_person_id=int(fields[8]),
            forum_id=int(fields[9]), country_id=int(fields[10]),
            tag_ids=_split_ids(fields[11]),
        )
    if operation_id == 7:
        return AddCommentParams(
            comment_id=int(fields[0]), creation_date=int(fields[1]),
            location_ip=fields[2], browser_used=fields[3], content=fields[4],
            length=int(fields[5]), author_person_id=int(fields[6]),
            country_id=int(fields[7]), reply_to_post_id=int(fields[8]),
            reply_to_comment_id=int(fields[9]), tag_ids=_split_ids(fields[10]),
        )
    if operation_id == 8:
        return AddFriendshipParams(int(fields[0]), int(fields[1]), int(fields[2]))
    raise ValueError(f"unknown operation id {operation_id}")


def read_update_streams(dataset_dir: Path | str) -> list[UpdateOperation]:
    """Read every stream part back into globally ordered operations."""
    root = Path(dataset_dir)
    operations: list[UpdateOperation] = []
    for path in sorted(root.glob("updateStream_0_*_person.csv")) + sorted(
        root.glob("updateStream_0_*_forum.csv")
    ):
        with open(path, newline="") as handle:
            for row in csv.reader(handle, delimiter="|"):
                timestamp, dependant, operation_id = (
                    int(row[0]), int(row[1]), int(row[2])
                )
                operations.append(
                    UpdateOperation(
                        timestamp,
                        dependant,
                        operation_id,
                        _parse_payload(operation_id, row[3:]),
                    )
                )
    operations.sort(key=lambda op: (op.timestamp, op.operation_id))
    return operations
