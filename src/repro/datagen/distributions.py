"""Statistical distributions used by Datagen (spec section 2.3.3.2).

* The number of friends of a person follows a *Facebook-like* degree
  distribution [31].  The original Datagen targets a mean degree of
  ``n ** (0.512 - 0.028 * log10(n))`` — the empirical fit from Ugander
  et al.'s "Anatomy of the Facebook social graph" — and draws individual
  degrees from a heavy-tailed distribution around that mean.  We keep
  the same mean-degree law and draw degrees from a discrete power law
  with exponential cutoff, which reproduces both the long tail and the
  bounded maximum degree of the Facebook data.

* Edge endpoints in the sorted similarity ranking are picked at
  geometrically distributed distances (``DeterministicRng.geometric``),
  implemented in :mod:`repro.datagen.knows`.

* Flashmob post volume around an event follows a symmetric exponential
  decay in time, the shape of the post-volume spikes of [17].
"""

from __future__ import annotations

import math

from repro.util.rng import DeterministicRng


def mean_degree(num_persons: int) -> float:
    """Facebook-like mean degree for a network of ``num_persons``.

    Clamped to ``num_persons - 1`` so micro networks stay simple graphs.
    """
    if num_persons <= 1:
        return 0.0
    exponent = 0.512 - 0.028 * math.log10(num_persons)
    return min(num_persons ** exponent, float(num_persons - 1))


def max_degree(num_persons: int) -> int:
    """Degree cap — Facebook caps at 5000; micro networks scale it down."""
    return max(1, min(5000, num_persons - 1, int(10 * mean_degree(num_persons)) + 1))


#: Shape of the degree distribution.  With sigma = 0.9 the lognormal has
#: median ~= 0.67 * mean and a long right tail — the qualitative shape of
#: the Facebook degree data (median 100 vs mean 190 in [31]).
_DEGREE_SIGMA = 0.9


def sample_degree(rng: DeterministicRng, num_persons: int) -> int:
    """Draw one person's target friend count.

    A lognormal multiplier around :func:`mean_degree`, normalized to
    unit mean (``mu = -sigma^2 / 2``) and capped at :func:`max_degree`,
    so the realized mean tracks the Facebook-like law within a few
    percent (checked by tests) while keeping the heavy tail.
    """
    target = mean_degree(num_persons)
    if target <= 0:
        return 0
    cap = max_degree(num_persons)
    mu = -0.5 * _DEGREE_SIGMA ** 2
    multiplier = math.exp(rng.gauss(mu, _DEGREE_SIGMA))
    return max(1, min(cap, round(target * multiplier)))


def flashmob_volume(offset_millis: int, intensity: float, width_millis: int) -> float:
    """Relative post volume at a time offset from a flashmob event peak.

    Symmetric exponential decay: volume halves every ``width_millis``.
    """
    if width_millis <= 0:
        raise ValueError("width_millis must be positive")
    return intensity * math.exp(-abs(offset_millis) / width_millis * math.log(2))
