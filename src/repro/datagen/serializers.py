"""Dataset serializers (spec section 2.3.4.2, Tables 2.13 - 2.16).

Implements the five output formats of Datagen:

* **CsvBasic** — one file per entity, relation, and multi-valued
  attribute (33 files, Table 2.13);
* **CsvMergeForeign** — 1-to-1 / N-to-1 relations merged into the entity
  files as foreign keys (20 files, Table 2.14);
* **CsvComposite** — CsvBasic with multi-valued attributes stored as
  composite (";"-separated) values (31 files, Table 2.15);
* **CsvCompositeMergeForeign** — both traits combined (18 files,
  Table 2.16);
* **Turtle** — two RDF files, static and dynamic.

CSV conventions per spec: pipe ("|") primary separator, semicolon (";")
for multi-valued attributes, files split into ``static/`` and
``dynamic/`` under ``social_network/``.  Per the spec, "depending on the
number of threads used for generating the dataset, the number of files
varies, since there is a file generated per thread" — the ``parts``
option reproduces that sharding: each logical file is written as
``<entity>_0_<part>.csv`` with rows distributed round-robin.  The
default is one part (``<entity>_0_0.csv``).

Only the bulk-load part of the network is serialized (events before the
update cutoff); the remaining 10 % goes to the update streams
(:mod:`repro.datagen.update_streams`).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.datagen.generator import SocialNetworkData
from repro.util.dates import format_date, format_datetime

#: File sets per serializer, as specified by Tables 2.13-2.16.
CSV_BASIC_FILES = (
    "organisation", "organisation_isLocatedIn_place", "place",
    "place_isPartOf_place", "tag", "tag_hasType_tagclass", "tagclass",
    "tagclass_isSubclassOf_tagclass", "comment", "comment_hasCreator_person",
    "comment_hasTag_tag", "comment_isLocatedIn_place",
    "comment_replyOf_comment", "comment_replyOf_post", "forum",
    "forum_containerOf_post", "forum_hasMember_person",
    "forum_hasModerator_person", "forum_hasTag_tag", "person",
    "person_email_emailaddress", "person_hasInterest_tag",
    "person_isLocatedIn_place", "person_knows_person",
    "person_likes_comment", "person_likes_post", "person_speaks_language",
    "person_studyAt_organisation", "person_workAt_organisation", "post",
    "post_hasCreator_person", "post_hasTag_tag", "post_isLocatedIn_place",
)

CSV_MERGE_FOREIGN_FILES = (
    "organisation", "place", "tag", "tagclass", "comment",
    "comment_hasTag_tag", "forum", "forum_hasMember_person",
    "forum_hasTag_tag", "person", "person_email_emailaddress",
    "person_hasInterest_tag", "person_knows_person", "person_likes_comment",
    "person_likes_post", "person_speaks_language",
    "person_studyAt_organisation", "person_workAt_organisation", "post",
    "post_hasTag_tag",
)

CSV_COMPOSITE_FILES = tuple(
    name
    for name in CSV_BASIC_FILES
    if name not in ("person_email_emailaddress", "person_speaks_language")
)

CSV_COMPOSITE_MERGE_FOREIGN_FILES = tuple(
    name
    for name in CSV_MERGE_FOREIGN_FILES
    if name not in ("person_email_emailaddress", "person_speaks_language")
)

_STATIC_FILES = frozenset(
    {
        "organisation", "organisation_isLocatedIn_place", "place",
        "place_isPartOf_place", "tag", "tag_hasType_tagclass", "tagclass",
        "tagclass_isSubclassOf_tagclass",
    }
)


class _CsvSerializer:
    """Shared machinery of the four CSV variants."""

    merge_foreign = False
    composite = False

    def __init__(
        self, net: SocialNetworkData, output_dir: Path | str, parts: int = 1
    ):
        if parts <= 0:
            raise ValueError("parts must be positive")
        self.net = net
        self.root = Path(output_dir) / "social_network"
        self.cutoff = net.cutoff
        self.parts = parts

    def _dir_for(self, name: str) -> Path:
        return self.root / ("static" if name in _STATIC_FILES else "dynamic")

    def _write(self, name: str, header: list[str], rows: Iterable[list]) -> None:
        directory = self._dir_for(name)
        directory.mkdir(parents=True, exist_ok=True)
        handles = [
            open(directory / f"{name}_0_{part}.csv", "w", newline="")
            for part in range(self.parts)
        ]
        try:
            writers = [csv.writer(h, delimiter="|") for h in handles]
            for writer in writers:
                writer.writerow(header)
            for index, row in enumerate(rows):
                writers[index % self.parts].writerow(row)
        finally:
            for handle in handles:
                handle.close()

    def _included(self, creation: int) -> bool:
        return creation < self.cutoff

    # -- static part ---------------------------------------------------

    def _write_static(self) -> None:
        net = self.net
        if self.merge_foreign:
            self._write(
                "organisation",
                ["id", "type", "name", "url", "place"],
                (
                    [o.id, o.type.value, o.name, o.url, o.place_id]
                    for o in net.organisations
                ),
            )
            self._write(
                "place",
                ["id", "name", "url", "type", "isPartOf"],
                (
                    [p.id, p.name, p.url, p.type.value,
                     p.part_of if p.part_of >= 0 else ""]
                    for p in net.places
                ),
            )
            self._write(
                "tag",
                ["id", "name", "url", "hasType"],
                ([t.id, t.name, t.url, t.type_id] for t in net.tags),
            )
            self._write(
                "tagclass",
                ["id", "name", "url", "isSubclassOf"],
                (
                    [c.id, c.name, c.url,
                     c.subclass_of if c.subclass_of >= 0 else ""]
                    for c in net.tag_classes
                ),
            )
        else:
            self._write(
                "organisation",
                ["id", "type", "name", "url"],
                ([o.id, o.type.value, o.name, o.url] for o in net.organisations),
            )
            self._write(
                "organisation_isLocatedIn_place",
                ["Organisation.id", "Place.id"],
                ([o.id, o.place_id] for o in net.organisations),
            )
            self._write(
                "place",
                ["id", "name", "url", "type"],
                ([p.id, p.name, p.url, p.type.value] for p in net.places),
            )
            self._write(
                "place_isPartOf_place",
                ["Place.id", "Place.id"],
                ([p.id, p.part_of] for p in net.places if p.part_of >= 0),
            )
            self._write(
                "tag",
                ["id", "name", "url"],
                ([t.id, t.name, t.url] for t in net.tags),
            )
            self._write(
                "tag_hasType_tagclass",
                ["Tag.id", "TagClass.id"],
                ([t.id, t.type_id] for t in net.tags),
            )
            self._write(
                "tagclass",
                ["id", "name", "url"],
                ([c.id, c.name, c.url] for c in net.tag_classes),
            )
            self._write(
                "tagclass_isSubclassOf_tagclass",
                ["TagClass.id", "TagClass.id"],
                (
                    [c.id, c.subclass_of]
                    for c in net.tag_classes
                    if c.subclass_of >= 0
                ),
            )

    # -- dynamic part ----------------------------------------------------

    def _persons(self) -> list:
        return [p for p in self.net.persons if self._included(p.creation_date)]

    def _forums(self) -> list:
        return [f for f in self.net.forums if self._included(f.creation_date)]

    def _posts(self) -> list:
        return [p for p in self.net.posts if self._included(p.creation_date)]

    def _comments(self) -> list:
        return [c for c in self.net.comments if self._included(c.creation_date)]

    def _write_person(self) -> None:
        persons = self._persons()
        header = [
            "id", "firstName", "lastName", "gender", "birthday",
            "creationDate", "locationIP", "browserUsed",
        ]

        def base(p) -> list:
            return [
                p.id, p.first_name, p.last_name, p.gender,
                format_date(p.birthday), format_datetime(p.creation_date),
                p.location_ip, p.browser_used,
            ]

        if self.merge_foreign and self.composite:
            self._write(
                "person",
                header + ["place", "language", "emails"],
                (
                    base(p) + [p.city_id, ";".join(p.speaks), ";".join(p.emails)]
                    for p in persons
                ),
            )
        elif self.merge_foreign:
            self._write(
                "person",
                header + ["place"],
                (base(p) + [p.city_id] for p in persons),
            )
        elif self.composite:
            self._write(
                "person",
                header + ["language", "emails"],
                (
                    base(p) + [";".join(p.speaks), ";".join(p.emails)]
                    for p in persons
                ),
            )
        else:
            self._write("person", header, (base(p) for p in persons))

        if not self.composite:
            self._write(
                "person_email_emailaddress",
                ["Person.id", "email"],
                ([p.id, e] for p in persons for e in p.emails),
            )
            self._write(
                "person_speaks_language",
                ["Person.id", "language"],
                ([p.id, lang] for p in persons for lang in p.speaks),
            )
        if not self.merge_foreign:
            self._write(
                "person_isLocatedIn_place",
                ["Person.id", "Place.id"],
                ([p.id, p.city_id] for p in persons),
            )
        self._write(
            "person_hasInterest_tag",
            ["Person.id", "Tag.id"],
            ([p.id, t] for p in persons for t in p.interests),
        )
        self._write(
            "person_studyAt_organisation",
            ["Person.id", "Organisation.id", "classYear"],
            (
                [s.person_id, s.university_id, s.class_year]
                for s in self.net.study_at
                if self._included(self.net.persons[s.person_id].creation_date)
            ),
        )
        self._write(
            "person_workAt_organisation",
            ["Person.id", "Organisation.id", "workFrom"],
            (
                [w.person_id, w.company_id, w.work_from]
                for w in self.net.work_at
                if self._included(self.net.persons[w.person_id].creation_date)
            ),
        )
        self._write(
            "person_knows_person",
            ["Person.id", "Person.id", "creationDate"],
            (
                [k.person1, k.person2, format_datetime(k.creation_date)]
                for k in self.net.knows
                if self._included(k.creation_date)
            ),
        )
        self._write(
            "person_likes_post",
            ["Person.id", "Post.id", "creationDate"],
            (
                [l.person_id, l.message_id, format_datetime(l.creation_date)]
                for l in self.net.likes
                if l.is_post and self._included(l.creation_date)
            ),
        )
        self._write(
            "person_likes_comment",
            ["Person.id", "Comment.id", "creationDate"],
            (
                [l.person_id, l.message_id, format_datetime(l.creation_date)]
                for l in self.net.likes
                if not l.is_post and self._included(l.creation_date)
            ),
        )

    def _write_forum(self) -> None:
        forums = self._forums()
        if self.merge_foreign:
            self._write(
                "forum",
                ["id", "title", "creationDate", "moderator"],
                (
                    [f.id, f.title, format_datetime(f.creation_date),
                     f.moderator_id]
                    for f in forums
                ),
            )
        else:
            self._write(
                "forum",
                ["id", "title", "creationDate"],
                (
                    [f.id, f.title, format_datetime(f.creation_date)]
                    for f in forums
                ),
            )
            self._write(
                "forum_hasModerator_person",
                ["Forum.id", "Person.id"],
                ([f.id, f.moderator_id] for f in forums),
            )
            self._write(
                "forum_containerOf_post",
                ["Forum.id", "Post.id"],
                ([p.forum_id, p.id] for p in self._posts()),
            )
        self._write(
            "forum_hasTag_tag",
            ["Forum.id", "Tag.id"],
            ([f.id, t] for f in forums for t in f.tag_ids),
        )
        self._write(
            "forum_hasMember_person",
            ["Forum.id", "Person.id", "joinDate"],
            (
                [m.forum_id, m.person_id, format_datetime(m.join_date)]
                for m in self.net.memberships
                if self._included(m.join_date)
            ),
        )

    def _write_messages(self) -> None:
        posts = self._posts()
        comments = self._comments()
        post_header = [
            "id", "imageFile", "creationDate", "locationIP", "browserUsed",
            "language", "content", "length",
        ]

        def post_base(p) -> list:
            return [
                p.id, p.image_file, format_datetime(p.creation_date),
                p.location_ip, p.browser_used, p.language, p.content, p.length,
            ]

        if self.merge_foreign:
            self._write(
                "post",
                post_header + ["creator", "Forum.id", "place"],
                (
                    post_base(p) + [p.creator_id, p.forum_id, p.country_id]
                    for p in posts
                ),
            )
        else:
            self._write("post", post_header, (post_base(p) for p in posts))
            self._write(
                "post_hasCreator_person",
                ["Post.id", "Person.id"],
                ([p.id, p.creator_id] for p in posts),
            )
            self._write(
                "post_isLocatedIn_place",
                ["Post.id", "Place.id"],
                ([p.id, p.country_id] for p in posts),
            )
        self._write(
            "post_hasTag_tag",
            ["Post.id", "Tag.id"],
            ([p.id, t] for p in posts for t in p.tag_ids),
        )

        comment_header = [
            "id", "creationDate", "locationIP", "browserUsed", "content",
            "length",
        ]

        def comment_base(c) -> list:
            return [
                c.id, format_datetime(c.creation_date), c.location_ip,
                c.browser_used, c.content, c.length,
            ]

        if self.merge_foreign:
            self._write(
                "comment",
                comment_header
                + ["creator", "place", "replyOfPost", "replyOfComment"],
                (
                    comment_base(c)
                    + [
                        c.creator_id,
                        c.country_id,
                        c.reply_of_post if c.reply_of_post >= 0 else "",
                        c.reply_of_comment if c.reply_of_comment >= 0 else "",
                    ]
                    for c in comments
                ),
            )
        else:
            self._write(
                "comment", comment_header, (comment_base(c) for c in comments)
            )
            self._write(
                "comment_hasCreator_person",
                ["Comment.id", "Person.id"],
                ([c.id, c.creator_id] for c in comments),
            )
            self._write(
                "comment_isLocatedIn_place",
                ["Comment.id", "Place.id"],
                ([c.id, c.country_id] for c in comments),
            )
            self._write(
                "comment_replyOf_post",
                ["Comment.id", "Post.id"],
                (
                    [c.id, c.reply_of_post]
                    for c in comments
                    if c.reply_of_post >= 0
                ),
            )
            self._write(
                "comment_replyOf_comment",
                ["Comment.id", "Comment.id"],
                (
                    [c.id, c.reply_of_comment]
                    for c in comments
                    if c.reply_of_comment >= 0
                ),
            )
        self._write(
            "comment_hasTag_tag",
            ["Comment.id", "Tag.id"],
            ([c.id, t] for c in comments for t in c.tag_ids),
        )

    def serialize(self) -> Path:
        """Write all files; returns the ``social_network/`` directory."""
        self._write_static()
        self._write_person()
        self._write_forum()
        self._write_messages()
        return self.root


class CsvBasicSerializer(_CsvSerializer):
    """Table 2.13 — 33 files."""

    expected_files = CSV_BASIC_FILES


class CsvMergeForeignSerializer(_CsvSerializer):
    """Table 2.14 — 20 files."""

    merge_foreign = True
    expected_files = CSV_MERGE_FOREIGN_FILES


class CsvCompositeSerializer(_CsvSerializer):
    """Table 2.15 — 31 files."""

    composite = True
    expected_files = CSV_COMPOSITE_FILES


class CsvCompositeMergeForeignSerializer(_CsvSerializer):
    """Table 2.16 — 18 files."""

    merge_foreign = True
    composite = True
    expected_files = CSV_COMPOSITE_MERGE_FOREIGN_FILES


SERIALIZERS: dict[str, type[_CsvSerializer]] = {
    "CsvBasic": CsvBasicSerializer,
    "CsvMergeForeign": CsvMergeForeignSerializer,
    "CsvComposite": CsvCompositeSerializer,
    "CsvCompositeMergeForeign": CsvCompositeMergeForeignSerializer,
}


def serialize_csv(
    net: SocialNetworkData,
    output_dir: Path | str,
    variant: str = "CsvBasic",
    parts: int = 1,
) -> Path:
    """Serialize the bulk-load dataset with the chosen CSV variant,
    sharded into ``parts`` files per logical file."""
    try:
        serializer_cls = SERIALIZERS[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {sorted(SERIALIZERS)}"
        ) from None
    return serializer_cls(net, output_dir, parts=parts).serialize()


# ---------------------------------------------------------------------------
# Turtle
# ---------------------------------------------------------------------------

_PREFIX = "@prefix snvoc: <http://www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/> .\n"


def serialize_turtle(net: SocialNetworkData, output_dir: Path | str) -> Path:
    """Write the two Turtle files (static + dynamic) of spec 2.3.4.2."""
    root = Path(output_dir) / "social_network"
    root.mkdir(parents=True, exist_ok=True)

    def uri(kind: str, entity_id: int) -> str:
        return f"<http://www.ldbc.eu/ldbc_socialnet/1.0/data/{kind}{entity_id}>"

    def literal(value: str) -> str:
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'

    static_path = root / "0_ldbc_socialnet_static_dbp.ttl"
    with open(static_path, "w") as out:
        out.write(_PREFIX)
        for place in net.places:
            out.write(
                f"{uri('place', place.id)} a snvoc:{place.type.value.capitalize()} ;"
                f" snvoc:name {literal(place.name)} .\n"
            )
            if place.part_of >= 0:
                out.write(
                    f"{uri('place', place.id)} snvoc:isPartOf"
                    f" {uri('place', place.part_of)} .\n"
                )
        for org in net.organisations:
            out.write(
                f"{uri('organisation', org.id)} a snvoc:{org.type.value.capitalize()} ;"
                f" snvoc:name {literal(org.name)} ;"
                f" snvoc:isLocatedIn {uri('place', org.place_id)} .\n"
            )
        for tag_class in net.tag_classes:
            out.write(
                f"{uri('tagclass', tag_class.id)} a snvoc:TagClass ;"
                f" snvoc:name {literal(tag_class.name)} .\n"
            )
            if tag_class.subclass_of >= 0:
                out.write(
                    f"{uri('tagclass', tag_class.id)} snvoc:isSubclassOf"
                    f" {uri('tagclass', tag_class.subclass_of)} .\n"
                )
        for tag in net.tags:
            out.write(
                f"{uri('tag', tag.id)} a snvoc:Tag ;"
                f" snvoc:name {literal(tag.name)} ;"
                f" snvoc:hasType {uri('tagclass', tag.type_id)} .\n"
            )

    dynamic_path = root / "0_ldbc_socialnet.ttl"
    cutoff = net.cutoff
    with open(dynamic_path, "w") as out:
        out.write(_PREFIX)
        for person in net.persons:
            if person.creation_date >= cutoff:
                continue
            out.write(
                f"{uri('pers', person.id)} a snvoc:Person ;"
                f" snvoc:firstName {literal(person.first_name)} ;"
                f" snvoc:lastName {literal(person.last_name)} ;"
                f" snvoc:isLocatedIn {uri('place', person.city_id)} .\n"
            )
        for edge in net.knows:
            if edge.creation_date >= cutoff:
                continue
            out.write(
                f"{uri('pers', edge.person1)} snvoc:knows"
                f" {uri('pers', edge.person2)} .\n"
            )
        for forum in net.forums:
            if forum.creation_date >= cutoff:
                continue
            out.write(
                f"{uri('forum', forum.id)} a snvoc:Forum ;"
                f" snvoc:title {literal(forum.title)} ;"
                f" snvoc:hasModerator {uri('pers', forum.moderator_id)} .\n"
            )
        for post in net.posts:
            if post.creation_date >= cutoff:
                continue
            out.write(
                f"{uri('post', post.id)} a snvoc:Post ;"
                f" snvoc:hasCreator {uri('pers', post.creator_id)} ;"
                f" snvoc:containerOf {uri('forum', post.forum_id)} .\n"
            )
        for comment in net.comments:
            if comment.creation_date >= cutoff:
                continue
            parent = (
                comment.reply_of_post
                if comment.reply_of_post >= 0
                else comment.reply_of_comment
            )
            out.write(
                f"{uri('comment', comment.id)} a snvoc:Comment ;"
                f" snvoc:hasCreator {uri('pers', comment.creator_id)} ;"
                f" snvoc:replyOf {uri('post', parent)} .\n"
            )
    return root
