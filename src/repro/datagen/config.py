"""Datagen configuration (spec section 2.3.3).

Three parameters determine the generated data: the number of persons,
the number of years simulated, and the starting year of the simulation.
Defaults follow the spec: a period of three years starting from 2010.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.dates import DateTime, make_date, make_datetime


@dataclass(frozen=True)
class DatagenConfig:
    """Parameters of one generation run."""

    num_persons: int = 1000
    start_year: int = 2010
    num_years: int = 3
    seed: int = 42
    #: Fraction of the simulated period whose events form the bulk-load
    #: dataset; the remainder becomes the update streams (spec 2.3.4:
    #: "roughly the 90% of the total generated network").
    bulk_load_fraction: float = 0.9
    #: Number of flashmob events per simulated year (section 2.3.3.2).
    flashmob_events_per_year: int = 12
    #: Multiplier on per-person activity volume (posts, albums, group
    #: posts, comments, likes).  1.0 keeps the fast defaults used by the
    #: micro-scale benchmarks; ~2.8 calibrates SF 0.1 to Table 2.12's
    #: node/edge counts (see benchmarks/test_sf01_official.py).
    activity_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_persons <= 0:
            raise ValueError("num_persons must be positive")
        if self.num_years <= 0:
            raise ValueError("num_years must be positive")
        if not 0.0 < self.bulk_load_fraction <= 1.0:
            raise ValueError("bulk_load_fraction must be in (0, 1]")
        if self.activity_scale <= 0:
            raise ValueError("activity_scale must be positive")

    @property
    def start_date(self) -> int:
        """First simulated day (Date ordinal)."""
        return make_date(self.start_year, 1, 1)

    @property
    def end_date(self) -> int:
        """Day after the last simulated day (exclusive)."""
        return make_date(self.start_year + self.num_years, 1, 1)

    @property
    def start_millis(self) -> DateTime:
        return make_datetime(self.start_year, 1, 1)

    @property
    def end_millis(self) -> DateTime:
        return make_datetime(self.start_year + self.num_years, 1, 1)

    @property
    def update_cutoff_millis(self) -> DateTime:
        """Events at or after this instant go to the update streams."""
        span = self.end_millis - self.start_millis
        return self.start_millis + int(span * self.bulk_load_fraction)
