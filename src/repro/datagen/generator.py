"""Datagen orchestration (spec Figure 2.2).

Runs the pipeline end to end:

1. initialize dictionaries and parameters;
2. generate persons (+ interests, target degrees);
3. three knows passes over the correlation dimensions;
4. person activity (forums, posts, comments, likes, flashmob events);
5. package everything into a :class:`SocialNetworkData` with *global*
   entity id spaces (places, organisations, tags, tag classes).

The output holds the **whole** generated network.  The 90/10 split into
bulk-load dataset and update streams (spec 2.3.4) is realized by
:meth:`SocialNetworkData.is_before_cutoff` plus
:mod:`repro.datagen.update_streams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.activity import ActivityBundle, FlashmobEvent, generate_activity
from repro.datagen.config import DatagenConfig
from repro.datagen.dictionaries import Dictionaries, build_dictionaries
from repro.datagen.knows import generate_knows
from repro.datagen.persons import PersonBundle, generate_persons
from repro.schema.entities import (
    Comment,
    Forum,
    Organisation,
    OrganisationType,
    Person,
    Place,
    PlaceType,
    Post,
    Tag,
    TagClass,
)
from repro.schema.relations import HasMember, Knows, Likes, StudyAt, WorkAt
from repro.util.dates import DateTime


@dataclass(slots=True)
class SocialNetworkData:
    """The full generated network, global id spaces, ready to load."""

    config: DatagenConfig
    dicts: Dictionaries
    places: list[Place] = field(default_factory=list)
    organisations: list[Organisation] = field(default_factory=list)
    tag_classes: list[TagClass] = field(default_factory=list)
    tags: list[Tag] = field(default_factory=list)
    persons: list[Person] = field(default_factory=list)
    study_at: list[StudyAt] = field(default_factory=list)
    work_at: list[WorkAt] = field(default_factory=list)
    knows: list[Knows] = field(default_factory=list)
    forums: list[Forum] = field(default_factory=list)
    memberships: list[HasMember] = field(default_factory=list)
    posts: list[Post] = field(default_factory=list)
    comments: list[Comment] = field(default_factory=list)
    likes: list[Likes] = field(default_factory=list)
    flashmob_events: list[FlashmobEvent] = field(default_factory=list)

    # Global-id offsets for the place table (continents, countries, cities).
    country_offset: int = 0
    city_offset: int = 0
    company_offset: int = 0

    _cutoff_cache: DateTime | None = None

    def _event_timestamps(self) -> list[DateTime]:
        """Timestamps of every dynamic event (node or edge creation)."""
        timestamps = [p.creation_date for p in self.persons]
        timestamps.extend(k.creation_date for k in self.knows)
        timestamps.extend(f.creation_date for f in self.forums)
        timestamps.extend(m.join_date for m in self.memberships)
        timestamps.extend(p.creation_date for p in self.posts)
        timestamps.extend(c.creation_date for c in self.comments)
        timestamps.extend(l.creation_date for l in self.likes)
        return timestamps

    @property
    def cutoff(self) -> DateTime:
        """The update-stream cutoff instant.

        The spec splits by *volume*: the bulk-load dataset "corresponds
        to roughly the 90 % of the total generated network" and the
        streams to the remaining 10 %.  The cutoff is therefore the
        ``bulk_load_fraction`` quantile of all dynamic event timestamps.
        """
        if self._cutoff_cache is None:
            timestamps = sorted(self._event_timestamps())
            if not timestamps:
                self._cutoff_cache = self.config.end_millis
            else:
                index = int(len(timestamps) * self.config.bulk_load_fraction)
                index = min(index, len(timestamps) - 1)
                self._cutoff_cache = timestamps[index]
        return self._cutoff_cache

    def is_before_cutoff(self, creation: DateTime) -> bool:
        """True when an event belongs to the bulk-load dataset."""
        return creation < self.cutoff

    def node_count(self) -> int:
        """Total node count (Table 2.12 metric)."""
        return (
            len(self.places)
            + len(self.organisations)
            + len(self.tag_classes)
            + len(self.tags)
            + len(self.persons)
            + len(self.forums)
            + len(self.posts)
            + len(self.comments)
        )

    def edge_count(self) -> int:
        """Total edge count across all 20 relation types (Table 2.12)."""
        static_edges = (
            len(self.organisations)                   # isLocatedIn
            + sum(1 for p in self.places if p.part_of >= 0)
            + len(self.tags)                          # hasType
            + sum(1 for c in self.tag_classes if c.subclass_of >= 0)
        )
        message_edges = 0
        for post in self.posts:
            # hasCreator, containerOf, isLocatedIn + hasTag fanout.
            message_edges += 3 + len(post.tag_ids)
        for comment in self.comments:
            # hasCreator, replyOf, isLocatedIn + hasTag fanout.
            message_edges += 3 + len(comment.tag_ids)
        person_edges = (
            len(self.knows)
            + len(self.study_at)
            + len(self.work_at)
            + sum(len(p.interests) for p in self.persons)
            + len(self.persons)                       # person isLocatedIn
        )
        forum_edges = (
            len(self.memberships)
            + len(self.forums)                        # hasModerator
            + sum(len(f.tag_ids) for f in self.forums)
        )
        return static_edges + message_edges + person_edges + forum_edges + len(self.likes)


def _build_places(dicts: Dictionaries) -> tuple[list[Place], int, int]:
    """Global place table: continents, then countries, then cities."""
    places: list[Place] = []
    for i, name in enumerate(dicts.continent_names):
        places.append(Place(i, name, f"http://dbpedia.org/resource/{name}", PlaceType.CONTINENT))
    country_offset = len(places)
    for j, name in enumerate(dicts.country_names):
        places.append(
            Place(
                country_offset + j,
                name,
                f"http://dbpedia.org/resource/{name}",
                PlaceType.COUNTRY,
                part_of=dicts.country_continent[j],
            )
        )
    city_offset = len(places)
    for k, name in enumerate(dicts.city_names):
        places.append(
            Place(
                city_offset + k,
                name,
                f"http://dbpedia.org/resource/{name}",
                PlaceType.CITY,
                part_of=country_offset + dicts.city_country[k],
            )
        )
    return places, country_offset, city_offset


def _build_organisations(
    dicts: Dictionaries, country_offset: int, city_offset: int
) -> tuple[list[Organisation], int]:
    organisations: list[Organisation] = []
    for u, name in enumerate(dicts.university_names):
        organisations.append(
            Organisation(
                u,
                OrganisationType.UNIVERSITY,
                name,
                f"http://dbpedia.org/resource/{name}",
                place_id=city_offset + dicts.university_city[u],
            )
        )
    company_offset = len(organisations)
    for c, name in enumerate(dicts.company_names):
        organisations.append(
            Organisation(
                company_offset + c,
                OrganisationType.COMPANY,
                name,
                f"http://dbpedia.org/resource/{name}",
                place_id=country_offset + dicts.company_country[c],
            )
        )
    return organisations, company_offset


def _build_tags(dicts: Dictionaries) -> tuple[list[TagClass], list[Tag]]:
    tag_classes = [
        TagClass(
            i,
            name,
            f"http://dbpedia.org/ontology/{name}",
            subclass_of=dicts.tag_class_parent[i],
        )
        for i, name in enumerate(dicts.tag_class_names)
    ]
    tags = [
        Tag(
            t,
            name,
            f"http://dbpedia.org/resource/{name}",
            type_id=dicts.tag_class_of_tag[t],
        )
        for t, name in enumerate(dicts.tag_names)
    ]
    return tag_classes, tags


def generate(config: DatagenConfig) -> SocialNetworkData:
    """Run the full Datagen pipeline for ``config``."""
    dicts = build_dictionaries()
    places, country_offset, city_offset = _build_places(dicts)
    organisations, company_offset = _build_organisations(
        dicts, country_offset, city_offset
    )
    tag_classes, tags = _build_tags(dicts)

    bundle: PersonBundle = generate_persons(config, dicts)
    knows = generate_knows(config, bundle)
    activity: ActivityBundle = generate_activity(config, dicts, bundle, knows)

    # Rebase dictionary-index references onto the global id spaces.
    for person in bundle.persons:
        person.city_id += city_offset
    for post in activity.posts:
        post.country_id += country_offset
    for comment in activity.comments:
        comment.country_id += country_offset
    study_at = bundle.study_at  # university index == organisation id
    work_at = [
        WorkAt(w.person_id, company_offset + w.company_id, w.work_from)
        for w in bundle.work_at
    ]

    return SocialNetworkData(
        config=config,
        dicts=dicts,
        places=places,
        organisations=organisations,
        tag_classes=tag_classes,
        tags=tags,
        persons=bundle.persons,
        study_at=study_at,
        work_at=work_at,
        knows=knows,
        forums=activity.forums,
        memberships=activity.memberships,
        posts=activity.posts,
        comments=activity.comments,
        likes=activity.likes,
        flashmob_events=activity.flashmob_events,
        country_offset=country_offset,
        city_offset=city_offset,
        company_offset=company_offset,
    )
