"""Person-activity generation: forums, posts, comments and likes
(spec section 2.3.3.2, "person's activity" stage).

Reproduces the properties the spec calls out:

* **Three forum flavours** distinguished by title: personal walls, image
  albums and topical groups.
* **Activity correlates with degree**: "people with a larger number of
  friends have a higher activity, and hence post more photos and
  comments to a larger number of posts."
* **Time correlation via flashmob events**: events are generated up
  front with a tag, a peak time, and an intensity; a fraction of posts
  is classified as flashmob posts, clustered around the event's peak and
  carrying its tag, volume decaying as in [17].  The remaining posts are
  uniformly distributed over the simulation window, reproducing everyday
  activity.
* **Tag enrichment via the tag matrix**: message tags are seeded from
  the forum/person interest and enriched with correlated tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.config import DatagenConfig
from repro.datagen.dictionaries import Dictionaries, POPULAR_PLACES
from repro.datagen.persons import PersonBundle
from repro.schema.entities import Comment, Forum, ForumKind, Post
from repro.schema.relations import HasMember, Knows, Likes
from repro.util.dates import MILLIS_PER_DAY, DateTime
from repro.util.rng import DeterministicRng

#: Probability that a post is attached to a flashmob event.
FLASHMOB_POST_FRACTION = 0.25
#: Half-life of the flashmob volume decay (spec [17]-style spike).
FLASHMOB_WIDTH_MILLIS = 2 * MILLIS_PER_DAY
#: Content-length bands of BI 1: short / one liner / tweet / long.
_LENGTH_BANDS = ((0, 39), (40, 79), (80, 159), (160, 350))
_LENGTH_BAND_WEIGHTS = (0.40, 0.25, 0.20, 0.15)
#: Groups created per person (spec leaves the constant free).
GROUPS_PER_PERSON = 0.3
#: Base number of wall posts per person per simulated year.
WALL_POSTS_PER_YEAR = 3.0
#: Mean number of comments spawned per post (scaled by author degree).
COMMENTS_PER_POST = 1.3
#: Mean number of likes per message.
LIKES_PER_MESSAGE = 1.1


@dataclass(slots=True, frozen=True)
class FlashmobEvent:
    """A simulated real-world event driving a post-volume spike."""

    tag_id: int
    peak: DateTime
    intensity: float


@dataclass(slots=True)
class ActivityBundle:
    """Everything the activity stage produces."""

    forums: list[Forum] = field(default_factory=list)
    memberships: list[HasMember] = field(default_factory=list)
    posts: list[Post] = field(default_factory=list)
    comments: list[Comment] = field(default_factory=list)
    likes: list[Likes] = field(default_factory=list)
    flashmob_events: list[FlashmobEvent] = field(default_factory=list)


class _ActivityGenerator:
    def __init__(
        self,
        config: DatagenConfig,
        dicts: Dictionaries,
        bundle: PersonBundle,
        knows: list[Knows],
    ):
        self.config = config
        self.dicts = dicts
        self.bundle = bundle
        self.out = ActivityBundle()
        self._forum_id = 0
        self._message_id = 0
        self.friends: list[list[tuple[int, DateTime]]] = [
            [] for _ in bundle.persons
        ]
        for edge in knows:
            self.friends[edge.person1].append((edge.person2, edge.creation_date))
            self.friends[edge.person2].append((edge.person1, edge.creation_date))
        degrees = [len(f) for f in self.friends]
        self._mean_degree = max(1.0, sum(degrees) / max(1, len(degrees)))

    # -- helpers ----------------------------------------------------------

    def _next_forum_id(self) -> int:
        fid = self._forum_id
        self._forum_id += 1
        return fid

    def _next_message_id(self) -> int:
        mid = self._message_id
        self._message_id += 1
        return mid

    def _activity_factor(self, person_id: int) -> float:
        """Degree-proportional activity multiplier (spec property)."""
        return 0.5 + len(self.friends[person_id]) / self._mean_degree

    def _message_country(self, rng: DeterministicRng, person_id: int) -> int:
        """Country a message is issued from: usually home, sometimes travel."""
        if rng.random() < 0.92:
            return self.bundle.country_of[person_id]
        return rng.randint(0, self.dicts.num_countries - 1)

    def _content_for(self, rng: DeterministicRng, tag_ids: list[int]) -> tuple[str, int]:
        band = _LENGTH_BANDS[rng.weighted_index(_LENGTH_BAND_WEIGHTS)]
        length = rng.randint(band[0] + 1, band[1])
        base = " ".join(self.dicts.tag_text[t] for t in tag_ids) or "about nothing"
        while len(base) < length:
            base = base + " " + base
        return base[:length], length

    def _enrich_tags(self, rng: DeterministicRng, seed_tags: list[int]) -> list[int]:
        """Tag-matrix enrichment: add correlated tags to the seed set."""
        tags = list(dict.fromkeys(seed_tags))
        for tag in list(tags):
            related = self.dicts.tag_related[tag]
            if related and rng.random() < 0.3:
                extra = related[rng.zipf_rank(len(related))]
                if extra not in tags:
                    tags.append(extra)
        return tags

    def _uniform_time(
        self, rng: DeterministicRng, earliest: DateTime, bias: float = 3.0
    ) -> DateTime:
        """A timestamp in [earliest, end).

        ``bias`` > 1 front-loads activity towards ``earliest``.  Members
        join mid-timeline on average, so drawing their activity uniformly
        over what remains of the window would concentrate events in the
        final months; the bias restores the spec's aggregate shape, where
        everyday activity is roughly uniform over the whole simulation
        and only ~10 % of events fall past the update cutoff.
        """
        latest = self.config.end_millis - 1
        if earliest >= latest:
            return latest
        return earliest + int(rng.random() ** bias * (latest - earliest))

    def _flashmob_time(
        self, rng: DeterministicRng, event: FlashmobEvent, earliest: DateTime
    ) -> DateTime | None:
        """A time near the event peak, None if the event precedes joining."""
        # Laplace-distributed offset with the configured half-life.
        import math

        u = rng.random() - 0.5
        scale = FLASHMOB_WIDTH_MILLIS / math.log(2)
        offset = -scale * math.copysign(math.log(1 - 2 * abs(u)), u)
        ts = event.peak + int(offset)
        if ts < earliest or ts >= self.config.end_millis:
            return None
        return ts

    # -- stages -----------------------------------------------------------

    def generate_flashmob_events(self) -> None:
        rng = DeterministicRng(self.config.seed, "flashmob")
        total = self.config.flashmob_events_per_year * self.config.num_years
        span = self.config.end_millis - self.config.start_millis
        for _ in range(total):
            self.out.flashmob_events.append(
                FlashmobEvent(
                    tag_id=rng.randint(0, len(self.dicts.tag_names) - 1),
                    peak=self.config.start_millis + int(rng.random() * span),
                    intensity=1.0 + 9.0 * rng.random() ** 2,
                )
            )

    def _pick_flashmob_event(self, rng: DeterministicRng) -> FlashmobEvent:
        weights = [e.intensity for e in self.out.flashmob_events]
        return self.out.flashmob_events[rng.weighted_index(weights)]

    def generate_walls(self) -> None:
        """One wall per person; friends become members when they connect."""
        for person in self.bundle.persons:
            forum = Forum(
                id=self._next_forum_id(),
                title=f"Wall of {person.first_name} {person.last_name}",
                creation_date=person.creation_date,
                moderator_id=person.id,
                kind=ForumKind.WALL,
                tag_ids=list(person.interests[:3]),
            )
            self.out.forums.append(forum)
            for friend, since in self.friends[person.id]:
                self.out.memberships.append(HasMember(forum.id, friend, since))
            rng = DeterministicRng(self.config.seed, "wall-posts", person.id)
            expected = (
                WALL_POSTS_PER_YEAR
                * self.config.num_years
                * self._activity_factor(person.id)
                * self.config.activity_scale
            )
            for _ in range(_poisson_like(rng, expected)):
                self._generate_post(rng, forum, person.id, allow_image=False)

    def generate_albums(self) -> None:
        """Image albums: photo posts taken at popular places."""
        for person in self.bundle.persons:
            rng = DeterministicRng(self.config.seed, "albums", person.id)
            n_albums = _poisson_like(
                rng,
                0.4 * self._activity_factor(person.id) * self.config.activity_scale,
            )
            for a in range(n_albums):
                creation = self._uniform_time(rng, person.creation_date)
                forum = Forum(
                    id=self._next_forum_id(),
                    title=f"Album {a} of {person.first_name} {person.last_name}",
                    creation_date=creation,
                    moderator_id=person.id,
                    kind=ForumKind.ALBUM,
                    tag_ids=list(person.interests[:1]),
                )
                self.out.forums.append(forum)
                for friend, since in self.friends[person.id]:
                    if rng.random() < 0.5:
                        join = max(since, creation)
                        self.out.memberships.append(
                            HasMember(forum.id, friend, join)
                        )
                for _ in range(rng.randint(1, 8)):
                    self._generate_post(rng, forum, person.id, allow_image=True)

    def generate_groups(self) -> None:
        """Topical groups with interest-correlated membership."""
        n_groups = int(GROUPS_PER_PERSON * len(self.bundle.persons))
        for g in range(n_groups):
            rng = DeterministicRng(self.config.seed, "group", g)
            moderator = rng.randint(0, len(self.bundle.persons) - 1)
            mod_person = self.bundle.persons[moderator]
            seed_tag = (
                rng.choice(mod_person.interests)
                if mod_person.interests
                else rng.randint(0, len(self.dicts.tag_names) - 1)
            )
            creation = self._uniform_time(rng, mod_person.creation_date)
            forum = Forum(
                id=self._next_forum_id(),
                title=f"Group for {self.dicts.tag_names[seed_tag]}",
                creation_date=creation,
                moderator_id=moderator,
                kind=ForumKind.GROUP,
                tag_ids=self._enrich_tags(rng, [seed_tag]),
            )
            self.out.forums.append(forum)

            members = self._group_members(rng, moderator, seed_tag, creation)
            member_list: list[int] = []
            for member in members:
                join = self._uniform_time(
                    rng,
                    max(creation, self.bundle.persons[member].creation_date),
                )
                self.out.memberships.append(HasMember(forum.id, member, join))
                member_list.append(member)

            posters = member_list or [moderator]
            expected_posts = (1.0 + 0.8 * len(posters)) * self.config.activity_scale
            for _ in range(_poisson_like(rng, expected_posts)):
                author = rng.choice(posters)
                self._generate_post(rng, forum, author, allow_image=False)

    def _group_members(
        self,
        rng: DeterministicRng,
        moderator: int,
        seed_tag: int,
        creation: DateTime,
    ) -> list[int]:
        """Members: moderator's friends plus persons sharing the interest."""
        target = 2 + rng.zipf_rank(40, exponent=1.2)
        members: list[int] = [moderator]
        chosen = {moderator}
        for friend, _ in self.friends[moderator]:
            if len(members) > target:
                break
            if rng.random() < 0.7 and friend not in chosen:
                chosen.add(friend)
                members.append(friend)
        attempts = 0
        while len(members) <= target and attempts < 4 * target:
            attempts += 1
            candidate = rng.randint(0, len(self.bundle.persons) - 1)
            if candidate in chosen:
                continue
            interested = seed_tag in self.bundle.persons[candidate].interests
            if interested or rng.random() < 0.1:
                chosen.add(candidate)
                members.append(candidate)
        return members

    # -- messages ----------------------------------------------------------

    def _generate_post(
        self,
        rng: DeterministicRng,
        forum: Forum,
        author: int,
        allow_image: bool,
    ) -> None:
        person = self.bundle.persons[author]
        earliest = max(forum.creation_date, person.creation_date) + 1

        tags = list(forum.tag_ids)
        is_flashmob = (
            self.out.flashmob_events
            and forum.kind is not ForumKind.ALBUM
            and rng.random() < FLASHMOB_POST_FRACTION
        )
        creation: DateTime | None = None
        if is_flashmob:
            event = self._pick_flashmob_event(rng)
            creation = self._flashmob_time(rng, event, earliest)
            if creation is not None:
                tags = [event.tag_id] + tags
        if creation is None:
            creation = self._uniform_time(rng, earliest)

        tags = self._enrich_tags(rng, tags)
        country = self._message_country(rng, author)
        language = rng.choice(person.speaks) if person.speaks else "en"

        if allow_image and rng.random() < 0.8:
            places = POPULAR_PLACES[self.dicts.country_names[country]]
            image = f"photo_{self._message_id}_{rng.choice(places)}.jpg"
            content, length = "", 0
        else:
            image = ""
            content, length = self._content_for(rng, tags)

        post = Post(
            id=self._next_message_id(),
            creation_date=creation,
            location_ip=person.location_ip,
            browser_used=person.browser_used,
            content=content,
            length=length,
            creator_id=author,
            forum_id=forum.id,
            country_id=country,
            language=language,
            image_file=image,
            tag_ids=tags,
        )
        self.out.posts.append(post)
        self._generate_comments(rng, forum, post)
        self._generate_likes(rng, post.id, author, creation, is_post=True)

    def _comment_candidates(self, forum: Forum, author: int) -> list[int]:
        """Repliers: the author's friends (wall/album) or any member id.

        Group membership is recorded incrementally; rather than index all
        memberships we approximate repliers with the author's friends
        plus the moderator, which matches who actually sees the thread.
        """
        candidates = [friend for friend, _ in self.friends[author]]
        if forum.moderator_id != author:
            candidates.append(forum.moderator_id)
        return candidates

    def _generate_comments(
        self, rng: DeterministicRng, forum: Forum, post: Post
    ) -> None:
        expected = (
            COMMENTS_PER_POST
            * self._activity_factor(post.creator_id)
            * self.config.activity_scale
        )
        n_comments = _poisson_like(rng, expected)
        if not n_comments:
            return
        candidates = self._comment_candidates(forum, post.creator_id)
        if not candidates:
            return
        # Parents: the post plus previously created comments in the thread.
        parents: list[tuple[int, bool, DateTime]] = [
            (post.id, True, post.creation_date)
        ]
        for _ in range(n_comments):
            author = rng.choice(candidates)
            person = self.bundle.persons[author]
            parent_id, parent_is_post, parent_ts = parents[
                rng.zipf_rank(len(parents), exponent=0.8)
            ]
            earliest = max(parent_ts, person.creation_date) + 1
            # Replies mostly arrive soon after the parent (temporal
            # locality exploited by IC 8).
            horizon = min(self.config.end_millis - 1, earliest + 14 * MILLIS_PER_DAY)
            if earliest >= horizon:
                continue
            creation = earliest + int((rng.random() ** 2) * (horizon - earliest))
            # Most replies stay on the post's topic, but some drift to the
            # commenter's own interests (BI 11's "unrelated replies").
            if person.interests and rng.random() < 0.3:
                seed_tags = [rng.choice(person.interests)]
            else:
                seed_tags = list(post.tag_ids[:1])
            tags = self._enrich_tags(rng, seed_tags)
            content, length = self._content_for(rng, tags)
            comment = Comment(
                id=self._next_message_id(),
                creation_date=creation,
                location_ip=person.location_ip,
                browser_used=person.browser_used,
                content=content,
                length=length,
                creator_id=author,
                country_id=self._message_country(rng, author),
                reply_of_post=parent_id if parent_is_post else -1,
                reply_of_comment=-1 if parent_is_post else parent_id,
                tag_ids=tags,
            )
            self.out.comments.append(comment)
            parents.append((comment.id, False, creation))
            self._generate_likes(rng, comment.id, author, creation, is_post=False)

    def _generate_likes(
        self,
        rng: DeterministicRng,
        message_id: int,
        author: int,
        message_ts: DateTime,
        is_post: bool,
    ) -> None:
        n_likes = _poisson_like(rng, LIKES_PER_MESSAGE * self.config.activity_scale)
        if not n_likes:
            return
        friends = self.friends[author]
        likers: set[int] = set()
        for _ in range(n_likes):
            if friends and rng.random() < 0.8:
                liker = rng.choice(friends)[0]
            else:
                liker = rng.randint(0, len(self.bundle.persons) - 1)
            if liker == author or liker in likers:
                continue
            liker_joined = self.bundle.persons[liker].creation_date
            earliest = max(message_ts, liker_joined) + 1
            horizon = min(self.config.end_millis - 1, earliest + 7 * MILLIS_PER_DAY)
            if earliest >= horizon:
                continue
            likers.add(liker)
            creation = earliest + int((rng.random() ** 2) * (horizon - earliest))
            self.out.likes.append(Likes(liker, message_id, creation, is_post))


def _poisson_like(rng: DeterministicRng, expected: float) -> int:
    """Small-mean Poisson sampler (Knuth's method, capped for safety)."""
    import math

    if expected <= 0:
        return 0
    limit = math.exp(-min(expected, 30.0))
    count = 0
    product = rng.random()
    while product > limit and count < 200:
        count += 1
        product *= rng.random()
    return count


def generate_activity(
    config: DatagenConfig,
    dicts: Dictionaries,
    bundle: PersonBundle,
    knows: list[Knows],
) -> ActivityBundle:
    """Run the full activity stage and return its output."""
    generator = _ActivityGenerator(config, dicts, bundle, knows)
    generator.generate_flashmob_events()
    generator.generate_walls()
    generator.generate_albums()
    generator.generate_groups()
    return generator.out
