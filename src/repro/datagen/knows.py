"""Friendship (knows) generation (spec sections 2.3.3.2-2.3.3.3).

Reproduces Datagen's correlated-edge algorithm:

1. Persons are sorted by a *similarity function* M; similar persons end
   up close together in the sorted array (the MapReduce key of the
   original implementation).
2. For each person, partners are picked among the W nearest neighbours
   in the ranking, at geometrically distributed ranking distances -- so
   connection probability decays with dissimilarity, producing the
   homophily (excess triangles) of real social networks.
3. Three passes run with three correlation dimensions: (university,
   graduation year), main interest, and random noise.  The person's
   target degree (Facebook-like distribution) is split across the
   dimensions 45% / 45% / 10% — the spec's "predictable (but not fixed)
   average split between the reasons for creating edges".

The result is deterministic for a given seed and independent of
parallelism, like the original.
"""

from __future__ import annotations

from typing import Callable

from repro.datagen.config import DatagenConfig
from repro.datagen.persons import PersonBundle
from repro.schema.relations import Knows
from repro.util.dates import MILLIS_PER_DAY
from repro.util.rng import DeterministicRng

#: Budget split across the three correlation dimensions.
DIMENSION_SPLIT = (0.45, 0.45, 0.10)
#: Window size W of the sorted-ranking comparison.
WINDOW = 100
#: Geometric distance parameter: mean picking distance ~= 1/p.
GEOMETRIC_P = 0.12
#: Attempts per requested edge before giving up (window may be saturated).
MAX_ATTEMPTS = 8


def _university_key(bundle: PersonBundle, class_year: dict[int, int]) -> Callable[[int], tuple]:
    def key(pid: int) -> tuple:
        return (bundle.university_of[pid], class_year.get(pid, 0), pid)

    return key


def _interest_key(bundle: PersonBundle) -> Callable[[int], tuple]:
    def key(pid: int) -> tuple:
        interests = bundle.persons[pid].interests
        return (interests[0] if interests else -1, pid)

    return key


def _random_key(config: DatagenConfig) -> Callable[[int], tuple]:
    def key(pid: int) -> tuple:
        return (DeterministicRng(config.seed, "knows-random-key", pid).random(), pid)

    return key


def generate_knows(config: DatagenConfig, bundle: PersonBundle) -> list[Knows]:
    """Generate the knows edges for all persons."""
    n = len(bundle.persons)
    class_year = {s.person_id: s.class_year for s in bundle.study_at}
    dimensions: list[Callable[[int], tuple]] = [
        _university_key(bundle, class_year),
        _interest_key(bundle),
        _random_key(config),
    ]

    edges: dict[tuple[int, int], Knows] = {}
    remaining = list(bundle.target_degree)

    for dim_index, (key, fraction) in enumerate(zip(dimensions, DIMENSION_SPLIT)):
        order = sorted(range(n), key=key)
        position = {pid: i for i, pid in enumerate(order)}
        for pid in range(n):
            rng = DeterministicRng(config.seed, "knows", dim_index, pid)
            budget = round(bundle.target_degree[pid] * fraction)
            budget = min(budget, remaining[pid])
            created = 0
            attempts = 0
            pos = position[pid]
            while created < budget and attempts < budget * MAX_ATTEMPTS:
                attempts += 1
                distance = 1 + min(rng.geometric(GEOMETRIC_P), WINDOW - 1)
                if rng.random() < 0.5:
                    distance = -distance
                other_pos = pos + distance
                if not 0 <= other_pos < n:
                    continue
                other = order[other_pos]
                if other == pid or remaining[other] <= 0:
                    continue
                pair = (min(pid, other), max(pid, other))
                if pair in edges:
                    continue
                edges[pair] = _make_edge(config, rng, bundle, *pair)
                remaining[pid] -= 1
                remaining[other] -= 1
                created += 1

    return sorted(edges.values(), key=lambda e: (e.person1, e.person2))


def _make_edge(
    config: DatagenConfig,
    rng: DeterministicRng,
    bundle: PersonBundle,
    person1: int,
    person2: int,
) -> Knows:
    """Stamp a knows edge; friendships can only start once both joined."""
    earliest = max(
        bundle.persons[person1].creation_date,
        bundle.persons[person2].creation_date,
    ) + MILLIS_PER_DAY
    latest = config.end_millis - 1
    if earliest >= latest:
        creation = latest
    else:
        # Friendships skew towards shortly after the later sign-up.
        creation = earliest + int((rng.random() ** 3.0) * (latest - earliest))
    return Knows(person1, person2, creation)


def degree_map(edges: list[Knows], num_persons: int) -> list[int]:
    """Realized degree per person (used by tests and the datagen figure)."""
    degrees = [0] * num_persons
    for edge in edges:
        degrees[edge.person1] += 1
        degrees[edge.person2] += 1
    return degrees
