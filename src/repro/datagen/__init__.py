"""Datagen — the LDBC SNB synthetic social network generator (spec 2.3.3).

The public entry point is :func:`repro.datagen.generator.generate`, which
produces a :class:`repro.datagen.generator.SocialNetworkData` for a
:class:`repro.datagen.config.DatagenConfig`.
"""

from repro.datagen.config import DatagenConfig
from repro.datagen.generator import SocialNetworkData, generate
from repro.datagen.scale import SCALE_FACTORS, persons_for_scale_factor

__all__ = [
    "DatagenConfig",
    "SCALE_FACTORS",
    "SocialNetworkData",
    "generate",
    "persons_for_scale_factor",
]
