"""Property dictionaries — the synthetic stand-in for Datagen's DBpedia
resource files (spec section 2.3.3.1, Table 2.11).

The spec defines each literal property by a *property dictionary model*:

* a dictionary ``D`` (a fixed value set),
* a ranking function ``R`` (a bijection assigning each value a rank,
  parameterised — e.g. by country — so popularity differs per context),
* a probability function ``F`` choosing values by rank.

The original resource files carry DBpedia extracts we do not have
offline; this module substitutes fixed synthetic tables with the same
*shape*: every resource of Table 2.11 exists (browsers, cities by
country, companies by country, countries with populations, email
providers, IP zones, languages by country, names/surnames by country,
popular places, tags by country, tag classes, tag hierarchies, tag
matrix, tag text, universities by city) and the country/gender
correlations the generator relies on are preserved through the
parameterised ranking.

All tables are module-level constants built by pure functions of
literals — no randomness — so the dictionary contents are identical in
every process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import DeterministicRng

# ---------------------------------------------------------------------------
# Places: continents, countries (with population weights), cities.
# ---------------------------------------------------------------------------

CONTINENTS: tuple[str, ...] = ("Europe", "Asia", "Africa", "America", "Oceania")

#: name -> (continent, relative population weight, main languages, ip prefix)
COUNTRIES: dict[str, tuple[str, float, tuple[str, ...], str]] = {
    "India": ("Asia", 18.0, ("hi", "en"), "59.88"),
    "China": ("Asia", 18.0, ("zh",), "36.48"),
    "United_States": ("America", 4.5, ("en",), "24.110"),
    "Indonesia": ("Asia", 3.6, ("id",), "39.192"),
    "Brazil": ("America", 2.8, ("pt",), "177.4"),
    "Pakistan": ("Asia", 2.8, ("ur", "en"), "39.32"),
    "Nigeria": ("Africa", 2.6, ("en",), "105.112"),
    "Bangladesh": ("Asia", 2.2, ("bn",), "59.152"),
    "Russia": ("Europe", 1.9, ("ru",), "46.48"),
    "Mexico": ("America", 1.7, ("es",), "148.204"),
    "Japan": ("Asia", 1.7, ("ja",), "49.96"),
    "Philippines": ("Asia", 1.5, ("tl", "en"), "49.144"),
    "Vietnam": ("Asia", 1.3, ("vi",), "27.64"),
    "Germany": ("Europe", 1.1, ("de",), "77.0"),
    "Egypt": ("Africa", 1.3, ("ar",), "41.32"),
    "Turkey": ("Europe", 1.1, ("tr",), "78.160"),
    "France": ("Europe", 0.9, ("fr",), "90.0"),
    "United_Kingdom": ("Europe", 0.9, ("en",), "25.0"),
    "Italy": ("Europe", 0.8, ("it",), "79.0"),
    "Spain": ("Europe", 0.6, ("es",), "81.32"),
    "Argentina": ("America", 0.6, ("es",), "181.0"),
    "Kenya": ("Africa", 0.7, ("sw", "en"), "105.48"),
    "Australia": ("Oceania", 0.35, ("en",), "1.120"),
    "New_Zealand": ("Oceania", 0.07, ("en",), "49.224"),
}

#: Cities per country; the first city is the country's most populous.
CITIES_BY_COUNTRY: dict[str, tuple[str, ...]] = {
    "India": ("Mumbai", "Delhi", "Bangalore", "Chennai", "Kolkata", "Pune"),
    "China": ("Shanghai", "Beijing", "Guangzhou", "Shenzhen", "Chengdu", "Wuhan"),
    "United_States": ("New_York", "Los_Angeles", "Chicago", "Houston", "Seattle"),
    "Indonesia": ("Jakarta", "Surabaya", "Bandung", "Medan"),
    "Brazil": ("Sao_Paulo", "Rio_de_Janeiro", "Brasilia", "Salvador"),
    "Pakistan": ("Karachi", "Lahore", "Islamabad", "Faisalabad"),
    "Nigeria": ("Lagos", "Kano", "Abuja", "Ibadan"),
    "Bangladesh": ("Dhaka", "Chittagong", "Khulna"),
    "Russia": ("Moscow", "Saint_Petersburg", "Novosibirsk", "Kazan"),
    "Mexico": ("Mexico_City", "Guadalajara", "Monterrey", "Puebla"),
    "Japan": ("Tokyo", "Osaka", "Nagoya", "Sapporo", "Fukuoka"),
    "Philippines": ("Manila", "Cebu", "Davao"),
    "Vietnam": ("Ho_Chi_Minh_City", "Hanoi", "Da_Nang"),
    "Germany": ("Berlin", "Hamburg", "Munich", "Cologne", "Frankfurt"),
    "Egypt": ("Cairo", "Alexandria", "Giza"),
    "Turkey": ("Istanbul", "Ankara", "Izmir"),
    "France": ("Paris", "Marseille", "Lyon", "Toulouse"),
    "United_Kingdom": ("London", "Birmingham", "Manchester", "Glasgow"),
    "Italy": ("Rome", "Milan", "Naples", "Turin"),
    "Spain": ("Madrid", "Barcelona", "Valencia", "Seville"),
    "Argentina": ("Buenos_Aires", "Cordoba", "Rosario"),
    "Kenya": ("Nairobi", "Mombasa", "Kisumu"),
    "Australia": ("Sydney", "Melbourne", "Brisbane", "Perth"),
    "New_Zealand": ("Auckland", "Wellington", "Christchurch"),
}

# ---------------------------------------------------------------------------
# Names.  Countries map to one of six name regions; each region has a
# gendered first-name pool and a surname pool.  The ranking function is
# parameterised by country: a country-specific rotation of the regional
# pool, so two countries of the same region still have different
# popularity orders — the correlation structure the spec asks for.
# ---------------------------------------------------------------------------

_NAME_REGION_BY_COUNTRY: dict[str, str] = {
    "India": "south_asia", "Pakistan": "south_asia", "Bangladesh": "south_asia",
    "China": "east_asia", "Japan": "east_asia", "Vietnam": "east_asia",
    "Indonesia": "east_asia", "Philippines": "east_asia",
    "United_States": "anglo", "United_Kingdom": "anglo", "Australia": "anglo",
    "New_Zealand": "anglo", "Nigeria": "anglo", "Kenya": "anglo",
    "Brazil": "latin", "Mexico": "latin", "Spain": "latin",
    "Argentina": "latin", "Italy": "latin",
    "Russia": "slavic", "Turkey": "slavic",
    "Germany": "west_europe", "France": "west_europe", "Egypt": "west_europe",
}

_FIRST_NAMES: dict[str, dict[str, tuple[str, ...]]] = {
    "south_asia": {
        "male": ("Arjun", "Rahul", "Amit", "Sanjay", "Imran", "Ravi", "Vikram",
                 "Aditya", "Farhan", "Kiran", "Nikhil", "Rajesh"),
        "female": ("Priya", "Ananya", "Deepa", "Fatima", "Lakshmi", "Meera",
                   "Nisha", "Pooja", "Sana", "Shreya", "Zara", "Kavya"),
    },
    "east_asia": {
        "male": ("Wei", "Jun", "Hiroshi", "Kenji", "Minh", "Takeshi", "Chen",
                 "Haruto", "Budi", "Jian", "Satoshi", "Duc"),
        "female": ("Mei", "Yuki", "Lan", "Sakura", "Hana", "Xiu", "Linh",
                   "Aiko", "Siti", "Ying", "Naoko", "Thi"),
    },
    "anglo": {
        "male": ("James", "John", "Michael", "David", "William", "Thomas",
                 "Daniel", "Matthew", "Andrew", "Joseph", "Charles", "George"),
        "female": ("Mary", "Emma", "Olivia", "Sarah", "Emily", "Jessica",
                   "Hannah", "Grace", "Sophie", "Lucy", "Chloe", "Alice"),
    },
    "latin": {
        "male": ("Carlos", "Jose", "Luis", "Miguel", "Juan", "Pedro", "Diego",
                 "Rafael", "Marco", "Antonio", "Pablo", "Fernando"),
        "female": ("Maria", "Ana", "Carmen", "Lucia", "Sofia", "Isabella",
                   "Valentina", "Camila", "Elena", "Rosa", "Paula", "Julia"),
    },
    "slavic": {
        "male": ("Ivan", "Dmitri", "Sergei", "Mehmet", "Alexei", "Mikhail",
                 "Nikolai", "Emre", "Andrei", "Pavel", "Viktor", "Murat"),
        "female": ("Olga", "Natalia", "Svetlana", "Ayse", "Irina", "Tatiana",
                   "Elif", "Anastasia", "Ekaterina", "Zeynep", "Vera", "Nina"),
    },
    "west_europe": {
        "male": ("Hans", "Pierre", "Klaus", "Jean", "Ahmed", "Stefan", "Luc",
                 "Omar", "Werner", "Michel", "Karim", "Dieter"),
        "female": ("Anna", "Marie", "Greta", "Claire", "Amira", "Ingrid",
                   "Juliette", "Layla", "Heidi", "Celine", "Nour", "Ursula"),
    },
}

_SURNAMES: dict[str, tuple[str, ...]] = {
    "south_asia": ("Sharma", "Patel", "Khan", "Singh", "Kumar", "Gupta",
                   "Rahman", "Ahmed", "Das", "Reddy", "Iyer", "Chowdhury"),
    "east_asia": ("Wang", "Li", "Zhang", "Tanaka", "Sato", "Nguyen", "Chen",
                  "Suzuki", "Tran", "Liu", "Yamamoto", "Santos"),
    "anglo": ("Smith", "Johnson", "Brown", "Taylor", "Wilson", "Davies",
              "Evans", "Walker", "Wright", "Robinson", "Okafor", "Mwangi"),
    "latin": ("Garcia", "Rodriguez", "Martinez", "Silva", "Lopez", "Gonzalez",
              "Perez", "Fernandez", "Rossi", "Romano", "Santos", "Torres"),
    "slavic": ("Ivanov", "Petrov", "Smirnov", "Yilmaz", "Kuznetsov", "Popov",
               "Kaya", "Volkov", "Demir", "Sokolov", "Novak", "Celik"),
    "west_europe": ("Muller", "Schmidt", "Dubois", "Martin", "Hassan",
                    "Schneider", "Bernard", "Fischer", "Moreau", "Weber",
                    "Laurent", "Wagner"),
}

# ---------------------------------------------------------------------------
# Tags and the TagClass hierarchy.  Roughly mirrors the DBpedia-derived
# hierarchy: a root "Thing" with second-level classes and leaf classes,
# each leaf carrying a set of concrete tags.  Countries are biased
# towards a subset of classes to give the tag-by-country correlation.
# ---------------------------------------------------------------------------

#: class name -> parent class name ("" for the root).
TAG_CLASS_HIERARCHY: dict[str, str] = {
    "Thing": "",
    "Agent": "Thing",
    "Person": "Agent",
    "Artist": "Person",
    "MusicalArtist": "Artist",
    "Writer": "Artist",
    "Athlete": "Person",
    "Politician": "Person",
    "Organisation": "Agent",
    "Band": "Organisation",
    "Company": "Organisation",
    "Work": "Thing",
    "Album": "Work",
    "Film": "Work",
    "Book": "Work",
    "Place": "Thing",
    "Country": "Place",
    "City": "Place",
    "Event": "Thing",
    "SportsEvent": "Event",
    "Election": "Event",
    "Species": "Thing",
    "Technology": "Thing",
    "ProgrammingLanguage": "Technology",
    "Device": "Technology",
}

_TAG_STEMS: dict[str, tuple[str, ...]] = {
    "MusicalArtist": ("Elvis_Presley", "The_Beatles_members", "Miles_Davis",
                      "Aretha_Franklin", "Bob_Dylan", "Freddie_Mercury",
                      "Umm_Kulthum", "Lata_Mangeshkar", "Caetano_Veloso",
                      "Fela_Kuti"),
    "Writer": ("Leo_Tolstoy", "Jane_Austen", "Gabriel_Garcia_Marquez",
               "Chinua_Achebe", "Haruki_Murakami", "Rabindranath_Tagore",
               "Naguib_Mahfouz", "Franz_Kafka"),
    "Athlete": ("Pele", "Muhammad_Ali", "Serena_Williams", "Usain_Bolt",
                "Sachin_Tendulkar", "Diego_Maradona", "Michael_Jordan",
                "Roger_Federer"),
    "Politician": ("Mahatma_Gandhi", "Abraham_Lincoln", "Nelson_Mandela",
                   "Winston_Churchill", "Simon_Bolivar", "Kemal_Ataturk",
                   "Charles_de_Gaulle", "Sun_Yat-sen"),
    "Band": ("Queen_band", "The_Rolling_Stones", "ABBA", "AC_DC",
             "Radiohead", "Metallica", "BTS_band", "Los_Tigres"),
    "Company": ("Toyota", "Siemens", "Tata_Group", "Petrobras", "Samsung",
                "Airbus", "Alibaba", "Safaricom"),
    "Album": ("Thriller_album", "Abbey_Road", "Kind_of_Blue",
              "The_Dark_Side_of_the_Moon", "Rumours", "Nevermind"),
    "Film": ("Casablanca_film", "Seven_Samurai", "Cidade_de_Deus",
             "La_Dolce_Vita", "Sholay", "Parasite_film", "Amelie", "Roma_film"),
    "Book": ("War_and_Peace", "Don_Quixote", "Things_Fall_Apart",
             "One_Hundred_Years_of_Solitude", "The_Tale_of_Genji",
             "Crime_and_Punishment"),
    "Country": ("Atlantis_myth", "Silk_Road", "Roman_Empire",
                "Ottoman_Empire", "Inca_Empire", "Mughal_Empire"),
    "City": ("Ancient_Rome", "Old_Kyoto", "Harlem", "Montmartre",
             "Copacabana", "Chandni_Chowk"),
    "SportsEvent": ("FIFA_World_Cup", "Olympic_Games", "Tour_de_France",
                    "Cricket_World_Cup", "Super_Bowl", "Wimbledon"),
    "Election": ("General_Election", "Presidential_Election",
                 "Local_Referendum", "Parliamentary_Vote"),
    "Species": ("Bengal_Tiger", "Giant_Panda", "Bald_Eagle", "Kangaroo",
                "African_Elephant", "Emperor_Penguin"),
    "ProgrammingLanguage": ("Python_language", "Java_language", "C_language",
                            "Haskell", "Prolog", "COBOL"),
    "Device": ("Telegraph", "Transistor_radio", "Smartphone",
               "Phonograph", "Mainframe"),
}

#: Continent -> tag classes over-represented in its countries' interests.
_CONTINENT_TAG_BIAS: dict[str, tuple[str, ...]] = {
    "Europe": ("Band", "Film", "Book", "Election"),
    "Asia": ("MusicalArtist", "Athlete", "Company", "Device"),
    "Africa": ("Writer", "Politician", "Species", "SportsEvent"),
    "America": ("Album", "Film", "Athlete", "ProgrammingLanguage"),
    "Oceania": ("Species", "SportsEvent", "City", "Book"),
}

BROWSERS: tuple[tuple[str, float], ...] = (
    ("Chrome", 0.45),
    ("Firefox", 0.25),
    ("Internet Explorer", 0.15),
    ("Safari", 0.10),
    ("Opera", 0.05),
)

EMAIL_PROVIDERS: tuple[str, ...] = (
    "gmail.com", "yahoo.com", "hotmail.com", "outlook.com", "mail.ru",
    "gmx.com", "zoho.com", "yandex.ru",
)

#: Popular photo places per country (spec: where album images are "taken").
POPULAR_PLACES: dict[str, tuple[str, ...]] = {
    country: tuple(f"{city}_landmark_{i}" for city in cities[:2] for i in (1, 2))
    for country, cities in CITIES_BY_COUNTRY.items()
}

_WORD_POOL: tuple[str, ...] = (
    "about", "history", "culture", "famous", "record", "world", "people",
    "classic", "style", "origin", "modern", "story", "legend", "influence",
    "early", "career", "period", "known", "great", "popular", "movement",
    "tradition", "science", "nature", "music", "art", "first", "national",
)


# ---------------------------------------------------------------------------
# Derived, index-based tables.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Dictionaries:
    """All resource tables resolved into integer-indexed form.

    Built once by :func:`build_dictionaries`; consumed by every
    generation stage.  Index spaces:

    * places: continents, then countries, then cities (global place index)
    * tag classes and tags: global indexes in hierarchy order
    * organisations: universities (per city) then companies (per country)
    """

    continent_names: tuple[str, ...]
    country_names: tuple[str, ...]
    country_continent: tuple[int, ...]          # country idx -> continent idx
    country_weights: tuple[float, ...]
    country_languages: tuple[tuple[str, ...], ...]
    country_ip_prefix: tuple[str, ...]
    city_names: tuple[str, ...]
    city_country: tuple[int, ...]               # city idx -> country idx
    cities_of_country: tuple[tuple[int, ...], ...]
    tag_class_names: tuple[str, ...]
    tag_class_parent: tuple[int, ...]           # -1 at root
    tag_names: tuple[str, ...]
    tag_class_of_tag: tuple[int, ...]
    tags_by_country: tuple[tuple[int, ...], ...]  # country idx -> ranked tags
    tag_text: tuple[str, ...]
    tag_related: tuple[tuple[int, ...], ...]    # tag matrix: correlated tags
    university_names: tuple[str, ...]
    university_city: tuple[int, ...]
    universities_of_country: tuple[tuple[int, ...], ...]
    company_names: tuple[str, ...]
    company_country: tuple[int, ...]
    companies_of_country: tuple[tuple[int, ...], ...]

    @property
    def num_countries(self) -> int:
        return len(self.country_names)

    def country_of_city(self, city_idx: int) -> int:
        return self.city_country[city_idx]

    def descendant_classes(self, class_idx: int) -> set[int]:
        """The tag class and all its transitive subclasses."""
        children: dict[int, list[int]] = {i: [] for i in range(len(self.tag_class_names))}
        for idx, parent in enumerate(self.tag_class_parent):
            if parent >= 0:
                children[parent].append(idx)
        result: set[int] = set()
        stack = [class_idx]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(children[current])
        return result


def _ranked_names(pool: tuple[str, ...], country_idx: int) -> tuple[str, ...]:
    """Country-parameterised ranking function R over a name dictionary.

    Rotating the pool by a country-dependent offset keeps the dictionary
    D fixed while giving each country its own popularity order.
    """
    offset = (country_idx * 5) % len(pool)
    return pool[offset:] + pool[:offset]


def build_dictionaries() -> Dictionaries:
    """Materialize every resource table of Table 2.11 into indexed form."""
    continent_names = CONTINENTS
    continent_idx = {name: i for i, name in enumerate(continent_names)}

    country_names = tuple(COUNTRIES)
    country_continent = tuple(
        continent_idx[COUNTRIES[c][0]] for c in country_names
    )
    country_weights = tuple(COUNTRIES[c][1] for c in country_names)
    country_languages = tuple(COUNTRIES[c][2] for c in country_names)
    country_ip_prefix = tuple(COUNTRIES[c][3] for c in country_names)

    city_names: list[str] = []
    city_country: list[int] = []
    cities_of_country: list[tuple[int, ...]] = []
    for ci, country in enumerate(country_names):
        indexes = []
        for city in CITIES_BY_COUNTRY[country]:
            indexes.append(len(city_names))
            city_names.append(city)
            city_country.append(ci)
        cities_of_country.append(tuple(indexes))

    tag_class_names = tuple(TAG_CLASS_HIERARCHY)
    class_idx = {name: i for i, name in enumerate(tag_class_names)}
    tag_class_parent = tuple(
        class_idx[parent] if parent else -1
        for parent in TAG_CLASS_HIERARCHY.values()
    )

    tag_names: list[str] = []
    tag_class_of_tag: list[int] = []
    tags_of_class: dict[str, list[int]] = {}
    for cls, stems in _TAG_STEMS.items():
        tags_of_class[cls] = []
        for stem in stems:
            tags_of_class[cls].append(len(tag_names))
            tag_names.append(stem)
            tag_class_of_tag.append(class_idx[cls])

    # Country tag ranking: biased classes first (rotated per country),
    # then all remaining tags.  Deterministic RNG keyed by country name
    # fixes the tail order.
    tags_by_country: list[tuple[int, ...]] = []
    for ci, country in enumerate(country_names):
        continent = country_names and COUNTRIES[country][0]
        biased_classes = _CONTINENT_TAG_BIAS[continent]
        ranked: list[int] = []
        for offset, cls in enumerate(biased_classes):
            pool = tags_of_class[cls]
            rotation = (ci + offset) % len(pool)
            ranked.extend(pool[rotation:] + pool[:rotation])
        rest = [t for t in range(len(tag_names)) if t not in set(ranked)]
        rng = DeterministicRng(0, "dictionaries", "tags_by_country", country)
        rng.shuffle(rest)
        tags_by_country.append(tuple(ranked + rest))

    # Tag text: a fixed pseudo-sentence per tag, used to synthesize
    # message content (resource "Tag Text").
    tag_text: list[str] = []
    for ti, name in enumerate(tag_names):
        words = [
            _WORD_POOL[(ti * 7 + k * 3) % len(_WORD_POOL)] for k in range(10)
        ]
        tag_text.append(f"{name.replace('_', ' ')} " + " ".join(words))

    # Tag matrix: a tag correlates with the other tags of its class
    # (resource "Tag Matrix" — used to enrich message tags).
    tag_related: list[tuple[int, ...]] = []
    for ti in range(len(tag_names)):
        cls = tag_class_of_tag[ti]
        siblings = tuple(
            t for t in range(len(tag_names))
            if tag_class_of_tag[t] == cls and t != ti
        )
        tag_related.append(siblings)

    university_names: list[str] = []
    university_city: list[int] = []
    universities_of_country: list[tuple[int, ...]] = []
    for ci, country in enumerate(country_names):
        indexes = []
        for city in cities_of_country[ci]:
            indexes.append(len(university_names))
            university_names.append(f"University_of_{city_names[city]}")
            university_city.append(city)
        universities_of_country.append(tuple(indexes))

    company_names: list[str] = []
    company_country: list[int] = []
    companies_of_country: list[tuple[int, ...]] = []
    _SECTORS = ("Energy", "Telecom", "Foods", "Airlines", "Software")
    for ci, country in enumerate(country_names):
        indexes = []
        for sector in _SECTORS:
            indexes.append(len(company_names))
            company_names.append(f"{country}_{sector}")
            company_country.append(ci)
        companies_of_country.append(tuple(indexes))

    return Dictionaries(
        continent_names=continent_names,
        country_names=country_names,
        country_continent=country_continent,
        country_weights=country_weights,
        country_languages=country_languages,
        country_ip_prefix=country_ip_prefix,
        city_names=tuple(city_names),
        city_country=tuple(city_country),
        cities_of_country=tuple(cities_of_country),
        tag_class_names=tag_class_names,
        tag_class_parent=tag_class_parent,
        tag_names=tuple(tag_names),
        tag_class_of_tag=tuple(tag_class_of_tag),
        tags_by_country=tuple(tags_by_country),
        tag_text=tuple(tag_text),
        tag_related=tuple(tag_related),
        university_names=tuple(university_names),
        university_city=tuple(university_city),
        universities_of_country=tuple(universities_of_country),
        company_names=tuple(company_names),
        company_country=tuple(company_country),
        companies_of_country=tuple(companies_of_country),
    )


def first_names_for(country_idx: int, country_name: str, gender: str) -> tuple[str, ...]:
    """Ranked first-name dictionary for a (country, gender) context."""
    region = _NAME_REGION_BY_COUNTRY[country_name]
    return _ranked_names(_FIRST_NAMES[region][gender], country_idx)


def surnames_for(country_idx: int, country_name: str) -> tuple[str, ...]:
    """Ranked surname dictionary for a country."""
    region = _NAME_REGION_BY_COUNTRY[country_name]
    return _ranked_names(_SURNAMES[region], country_idx)
