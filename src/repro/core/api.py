"""High-level facade over datagen, the graph store, the workloads, the
parameter curation and the driver.

Typical use::

    from repro import SocialNetworkBenchmark

    bench = SocialNetworkBenchmark.generate(num_persons=1000, seed=42)
    rows = bench.bi.run(12)                  # BI 12 with curated params
    rows = bench.bi.run(13, "India")         # or explicit params
    report = bench.run_driver(workers=4)     # the Interactive workload
    print(report.format_table())

    # or through the unified envelope (what the CLI ``run`` command uses):
    report = bench.run(RunRequest(workload="bi", mode="power", workers=4))
    report.write_results_dir("results/")
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.core.run import RunReport, RunRequest
from repro.datagen.config import DatagenConfig
from repro.datagen.generator import SocialNetworkData, generate
from repro.datagen.scale import approximate_scale_factor, persons_for_scale_factor
from repro.datagen.serializers import serialize_csv, serialize_turtle
from repro.datagen.delete_streams import build_delete_streams
from repro.datagen.update_streams import build_update_streams, write_update_streams
from repro.driver.bi_driver import (
    build_microbatches,
    concurrent_read_test,
    power_test,
    throughput_test,
)
from repro.driver.mix import frequencies_for_scale_factor
from repro.driver.runner import Driver, DriverReport
from repro.exec import SnapshotConfig
from repro.driver.scheduler import Scheduler
from repro.driver.validation import create_validation_set, validate
from repro.graph.store import SocialGraph
from repro.obs.exporters import telemetry_document
from repro.obs.spans import span
from repro.params.curation import ParameterGenerator
from repro.queries.bi import ALL_QUERIES as ALL_BI
from repro.queries.interactive.complex import ALL_COMPLEX
from repro.queries.interactive.short import ALL_SHORT


class BiWorkload:
    """The Business Intelligence workload bound to a graph."""

    def __init__(self, graph: SocialGraph, params: ParameterGenerator):
        self.graph = graph
        self.params = params

    def run(self, number: int, *params: Any) -> list:
        """Run BI ``number`` once and return its rows.

        Without explicit ``params`` this executes **only the first
        curated binding** — one representative parameter set, not the
        whole curated pool.  To cover every curated binding of a query
        (or of all queries), use :meth:`run_all`.
        """
        query, _ = ALL_BI[number]
        if not params:
            bindings = self.params.bi(number, count=1)
            if not bindings:
                raise RuntimeError(f"no curated parameters for BI {number}")
            params = bindings[0]
        return query(self.graph, *params)

    def run_all(
        self,
        number: int | None = None,
        bindings_per_query: int | None = None,
    ) -> dict[int, list] | list[list]:
        """Run curated bindings exhaustively.

        With ``number`` given, run BI ``number`` once per curated
        binding (all of them unless ``bindings_per_query`` caps the
        pool) and return the list of per-binding result rows — the
        exhaustive counterpart to :meth:`run`'s single-binding default.

        With ``number`` omitted, run every BI query
        (``bindings_per_query`` defaults to 1 binding each) and return
        results keyed by query number (last binding's rows).
        """
        if number is not None:
            query, _ = ALL_BI[number]
            return [
                query(self.graph, *params)
                for params in self.params.bi(number, count=bindings_per_query)
            ]
        if bindings_per_query is None:
            bindings_per_query = 1
        results: dict[int, list] = {}
        for num in sorted(ALL_BI):
            for params in self.params.bi(num, count=bindings_per_query):
                results[num] = ALL_BI[num][0](self.graph, *params)
        return results


class InteractiveWorkload:
    """The Interactive workload (reads only) bound to a graph."""

    def __init__(self, graph: SocialGraph, params: ParameterGenerator):
        self.graph = graph
        self.params = params

    def run_complex(self, number: int, *params: Any) -> list:
        query, _ = ALL_COMPLEX[number]
        if not params:
            bindings = self.params.interactive(number, count=1)
            if not bindings:
                raise RuntimeError(f"no curated parameters for IC {number}")
            params = bindings[0]
        return query(self.graph, *params)

    def run_short(self, number: int, entity_id: int) -> list:
        return ALL_SHORT[number][0](self.graph, entity_id)


class SocialNetworkBenchmark:
    """One generated network plus everything needed to benchmark it."""

    def __init__(self, network: SocialNetworkData, use_indexes: bool = True):
        self.network = network
        load_start = time.perf_counter()
        #: Graph holding the bulk-load (pre-cutoff) dataset.
        self.graph = SocialGraph.from_data(
            network, until=network.cutoff, use_indexes=use_indexes
        )
        self.load_seconds = time.perf_counter() - load_start
        self.params = ParameterGenerator(self.graph, network.config)
        self.bi = BiWorkload(self.graph, self.params)
        self.interactive = InteractiveWorkload(self.graph, self.params)

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        num_persons: int | None = None,
        scale_factor: float | None = None,
        seed: int = 42,
        use_indexes: bool = True,
        **config_kwargs: Any,
    ) -> "SocialNetworkBenchmark":
        """Generate a network and load it.

        Exactly one of ``num_persons`` / ``scale_factor`` must be given;
        a scale factor is translated via the Table 2.12 scaling law.
        """
        if (num_persons is None) == (scale_factor is None):
            raise ValueError("pass exactly one of num_persons / scale_factor")
        if num_persons is None:
            num_persons = persons_for_scale_factor(scale_factor)
        config = DatagenConfig(num_persons=num_persons, seed=seed, **config_kwargs)
        return cls(generate(config), use_indexes=use_indexes)

    @property
    def scale_factor(self) -> float:
        """Approximate SF of this network per the Table 2.12 law."""
        return approximate_scale_factor(self.network.config.num_persons)

    # -- dataset artefacts ---------------------------------------------------

    def export(self, output_dir: Path | str, variant: str = "CsvBasic") -> Path:
        """Write the bulk-load dataset and the update streams."""
        if variant == "Turtle":
            root = serialize_turtle(self.network, output_dir)
        else:
            root = serialize_csv(self.network, output_dir, variant)
        write_update_streams(build_update_streams(self.network), output_dir)
        return root

    # -- workload execution ----------------------------------------------

    def run_driver(
        self,
        time_compression_ratio: float = 0.0,
        seed: int = 1234,
        max_updates: int | None = None,
        include_deletes: bool = False,
        workers: int | None = None,
        timeout: float | None = None,
        freeze_reads: bool = False,
        snapshot: SnapshotConfig | None = None,
    ) -> DriverReport:
        """Run the Interactive workload: replay the update streams with
        frequency-interleaved complex reads and short-read sequences.

        ``include_deletes`` interleaves the DEL 1-8 delete stream (the
        insert/delete mix of spec section 5.2 / the VLDB 2022 BI
        workload) at its own timestamps.

        ``workers > 1`` parallelises consecutive complex reads on the
        :mod:`repro.exec` pool (flat-out runs only); the results log
        merges deterministically — identical content to a serial run.
        ``freeze_reads`` additionally serves those parallel read flushes
        from a refrozen columnar snapshot (see :meth:`Driver.run`).
        """
        updates = build_update_streams(self.network)
        if max_updates is not None:
            updates = updates[:max_updates]
        deletes = None
        if include_deletes:
            deletes = build_delete_streams(self.network)
            if updates:
                horizon = updates[-1].timestamp
                deletes = [op for op in deletes if op.timestamp <= horizon]
        frequencies = frequencies_for_scale_factor(max(self.scale_factor, 1.0))
        parameters = {
            number: self.params.interactive(number)
            for number in sorted(ALL_COMPLEX)
        }
        schedule = Scheduler(updates, frequencies, parameters, deletes).build()
        driver = Driver(self.graph, time_compression_ratio, seed=seed)
        return driver.run(
            schedule, workers=workers, timeout=timeout,
            freeze_reads=freeze_reads, snapshot=snapshot
        )

    def run(self, request: RunRequest) -> RunReport:
        """Execute one benchmark run described by a :class:`RunRequest`.

        The single dispatch point behind the CLI ``run`` command: every
        workload/mode combination accepts the same envelope and returns
        a :class:`RunReport`, with ``request.workers`` / ``request.timeout``
        threaded to the :mod:`repro.exec` pool identically everywhere.

        The whole run executes under one ``run`` span, and the report
        leaves with the telemetry document attached
        (:meth:`~repro.core.run.RunReport.telemetry`): the global span
        tree plus the metrics-registry snapshot as of run end.
        """
        with span(
            f"{request.workload}:{request.mode}",
            kind="run",
            workload=request.workload,
            mode=request.mode,
        ):
            report = self._dispatch(request)
        report.attach_telemetry(
            telemetry_document(configuration=request.configuration_dict())
        )
        return report

    def _dispatch(self, request: RunRequest) -> RunReport:
        opts = dict(request.options)
        # One SnapshotConfig per run: ``request.snapshot`` wins; the
        # legacy ``freeze`` option fills its freeze knob; everything
        # still unset resolves against the environment inside each
        # test.  The Interactive driver keeps its opt-in freeze default
        # (reads interleave with writes).
        config = request.snapshot or SnapshotConfig(freeze=opts.get("freeze"))
        if request.workload == "interactive":
            return self.run_driver(
                time_compression_ratio=opts.get("time_compression_ratio", 0.0),
                seed=request.seed,
                max_updates=opts.get("max_updates"),
                include_deletes=opts.get("include_deletes", False),
                workers=request.workers,
                timeout=request.timeout,
                freeze_reads=opts.get("freeze", False),
                snapshot=config,
            )
        if request.mode == "power":
            return power_test(
                self.graph,
                self.params,
                self.scale_factor,
                bindings_per_query=opts.get("bindings_per_query", 1),
                workers=request.workers,
                timeout=request.timeout,
                snapshot=config,
            )
        if request.mode == "throughput":
            batches = build_microbatches(
                self.network,
                include_deletes=opts.get("include_deletes", True),
            )
            return throughput_test(
                self.graph,
                self.params,
                batches,
                reads_per_batch=opts.get("reads_per_batch", 5),
                workers=request.workers,
                timeout=request.timeout,
                snapshot=config,
            )
        return concurrent_read_test(
            self.graph,
            self.params,
            streams=opts.get("streams", 4),
            queries_per_stream=opts.get("queries_per_stream", 25),
            workers=request.workers,
            timeout=request.timeout,
            snapshot=config,
        )

    # -- validation ----------------------------------------------------------

    def create_validation_set(self, bindings_per_query: int = 2) -> dict:
        """Expected results for every read query (spec 6.2)."""
        bindings: dict[tuple[str, int], list[tuple]] = {}
        for number in sorted(ALL_BI):
            bindings[("bi", number)] = self.params.bi(
                number, count=bindings_per_query
            )
        for number in sorted(ALL_COMPLEX):
            bindings[("complex", number)] = self.params.interactive(
                number, count=bindings_per_query
            )
        return create_validation_set(self.graph, bindings)

    def validate(self, validation_set: dict) -> list[dict]:
        """Check this graph against a validation dataset."""
        return validate(self.graph, validation_set)
