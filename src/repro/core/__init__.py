"""Public API of the reproduction."""

from repro.core.api import BiWorkload, InteractiveWorkload, SocialNetworkBenchmark

__all__ = ["BiWorkload", "InteractiveWorkload", "SocialNetworkBenchmark"]
