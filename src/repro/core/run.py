"""The unified run envelope: one request shape in, one report surface out.

Before this module, each run surface invented its own parameter passing
and result shape (``DriverReport`` vs the ``bi_driver`` result classes).
Now every benchmark entry point — ``power_test``, ``throughput_test``,
``concurrent_read_test`` and ``Driver.run`` — returns a
:class:`RunReport`, which guarantees the same three methods everywhere
(:data:`REPORT_SURFACE`):

* ``summary_dict()`` — the machine-readable results summary (§6.2);
* ``format_table()`` — the human-readable results table;
* ``write_results_dir()`` — the §6.2 results directory
  (``configuration.json``, ``results_summary.json`` and, for reports
  that keep a per-operation log, ``results_log.csv``).

:class:`RunRequest` is the matching parameter envelope consumed by
:meth:`repro.core.api.SocialNetworkBenchmark.run` and the CLI ``run``
command, carrying the executor knobs (``workers``, ``timeout``) next to
the workload selection so every surface threads them identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.exec.snapshot import SnapshotConfig

#: The methods every report class must implement (contract-tested).
REPORT_SURFACE = ("summary_dict", "format_table", "write_results_dir")

WORKLOADS = ("bi", "interactive")
#: Valid modes per workload; ``None`` in a request selects the first.
WORKLOAD_MODES = {
    "bi": ("power", "throughput", "concurrent"),
    "interactive": ("driver",),
}


@dataclass
class RunRequest:
    """Parameters of one benchmark run, whatever the workload.

    ``options`` carries the mode-specific knobs (``bindings_per_query``,
    ``reads_per_batch``, ``streams``, ``max_updates``,
    ``time_compression_ratio``, ``include_deletes``, …) so the envelope
    itself stays stable as modes grow.
    """

    workload: str = "bi"
    mode: str | None = None
    #: Worker-pool size; ``None`` defers to ``REPRO_EXEC_WORKERS``/serial.
    workers: int | None = None
    #: Per-query deadline in seconds (``None`` = no deadline).
    timeout: float | None = None
    seed: int = 1234
    #: How workers obtain graph state (provider, freeze, compaction,
    #: morsel size); ``None`` = all knobs from environment/defaults.
    snapshot: "SnapshotConfig | None" = None
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}"
            )
        modes = WORKLOAD_MODES[self.workload]
        if self.mode is None:
            self.mode = modes[0]
        if self.mode not in modes:
            raise ValueError(
                f"mode for workload {self.workload!r} must be one of "
                f"{modes}, got {self.mode!r}"
            )

    def configuration_dict(self) -> dict[str, Any]:
        """The request as a §6.2 ``configuration.json`` document."""
        document = {
            "workload": self.workload,
            "mode": self.mode,
            "workers": self.workers,
            "timeout": self.timeout,
            "seed": self.seed,
            **self.options,
        }
        if self.snapshot is not None:
            document["snapshot"] = self.snapshot.configuration_dict()
        return document


class RunReport:
    """Base class of every benchmark report (the shared surface).

    Subclasses implement :meth:`summary_dict` and :meth:`format_table`;
    :meth:`write_results_dir` is inherited, and reports that keep a
    per-operation log additionally override :meth:`write_results_log`
    (the base implementation writes nothing).

    Runs dispatched through :meth:`repro.core.api.SocialNetworkBenchmark.run`
    additionally carry the run's telemetry document
    (:func:`repro.obs.telemetry_document`), which
    :meth:`write_results_dir` persists as ``telemetry.json``.
    """

    #: Deliberately not a dataclass field: attached post-construction by
    #: the run envelope, absent on hand-built reports.
    _telemetry = None

    def summary_dict(self) -> dict[str, Any]:
        """The machine-readable results summary."""
        raise NotImplementedError

    def format_table(self) -> str:
        """The human-readable results table."""
        raise NotImplementedError

    @property
    def telemetry(self) -> dict[str, Any] | None:
        """The run's versioned telemetry document, if one was attached."""
        return self._telemetry

    def attach_telemetry(self, document: dict[str, Any]) -> None:
        """Attach the run's telemetry document (spans + metrics)."""
        self._telemetry = document

    def write_results_log(self, path: Path | str) -> None:
        """Hook: reports with a per-operation log write it here."""

    def write_results_dir(
        self, directory: Path | str, configuration: dict | None = None
    ) -> None:
        """Write the §6.2 results directory: ``configuration.json``,
        ``results_summary.json``, (when the report logs operations)
        ``results_log.csv``, (when telemetry is attached)
        ``telemetry.json`` and (when the telemetry carries a profiler
        section) ``profile.collapsed`` — everything the auditor
        retrieves and discloses after a valid run."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "configuration.json", "w") as handle:
            json.dump(configuration or {}, handle, indent=2)
        self.write_results_log(directory / "results_log.csv")
        with open(directory / "results_summary.json", "w") as handle:
            json.dump(self.summary_dict(), handle, indent=2)
        if self._telemetry is not None:
            with open(directory / "telemetry.json", "w") as handle:
                json.dump(self._telemetry, handle, indent=2)
            if self._telemetry.get("profile"):
                from repro.obs.exporters import to_collapsed

                (directory / "profile.collapsed").write_text(
                    to_collapsed(self._telemetry)
                )
