"""Query mix: complex-read frequencies per scale factor (spec Table 3.1
and Appendix B.1).

A frequency of ``f`` for a complex read type means one instance of that
type is issued per ``f`` update operations.  The spec tabulates SF1 to
SF1000; micro scale factors fall back to the nearest tabulated SF
(frequencies change slowly and SF1 is already the smallest published).

The Time Compression Ratio (spec 3.4) "squeezes or stretches" the whole
schedule: wall-clock gaps between operations are the simulation-time
gaps multiplied by the TCR.  A TCR of 0 replays the workload as fast as
the SUT can execute it.
"""

from __future__ import annotations

#: Table B.1 — frequency of each complex read per scale factor.
FREQUENCIES: dict[float, dict[int, int]] = {
    1.0: {
        1: 26, 2: 37, 3: 69, 4: 36, 5: 57, 6: 129, 7: 87,
        8: 45, 9: 157, 10: 30, 11: 16, 12: 44, 13: 19, 14: 49,
    },
    3.0: {
        1: 26, 2: 37, 3: 79, 4: 36, 5: 61, 6: 172, 7: 72,
        8: 27, 9: 209, 10: 32, 11: 17, 12: 44, 13: 19, 14: 49,
    },
    10.0: {
        1: 26, 2: 37, 3: 92, 4: 36, 5: 66, 6: 236, 7: 54,
        8: 15, 9: 287, 10: 35, 11: 19, 12: 44, 13: 19, 14: 49,
    },
    30.0: {
        1: 26, 2: 37, 3: 106, 4: 36, 5: 72, 6: 316, 7: 48,
        8: 9, 9: 384, 10: 37, 11: 20, 12: 44, 13: 19, 14: 49,
    },
    100.0: {
        1: 26, 2: 37, 3: 123, 4: 36, 5: 78, 6: 434, 7: 38,
        8: 5, 9: 527, 10: 40, 11: 22, 12: 44, 13: 19, 14: 49,
    },
    300.0: {
        1: 26, 2: 37, 3: 142, 4: 36, 5: 84, 6: 580, 7: 32,
        8: 3, 9: 705, 10: 44, 11: 24, 12: 44, 13: 19, 14: 49,
    },
    1000.0: {
        1: 26, 2: 37, 3: 165, 4: 36, 5: 91, 6: 796, 7: 25,
        8: 1, 9: 967, 10: 47, 11: 26, 12: 44, 13: 19, 14: 49,
    },
}


def frequencies_for_scale_factor(scale_factor: float) -> dict[int, int]:
    """The Table B.1 frequency column for (the nearest tabulated) SF."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    nearest = min(FREQUENCIES, key=lambda sf: abs(sf - scale_factor))
    return dict(FREQUENCIES[nearest])


def apply_time_compression(
    frequencies: dict[int, int], time_compression_ratio: float
) -> dict[int, int]:
    """Scale all frequencies by the TCR, preserving their ratios.

    Frequencies count updates per complex read, so a TCR < 1 (faster
    runs) *lowers* the thresholds proportionally; the relative ratios
    between query types are maintained, per spec 3.4.
    """
    if time_compression_ratio <= 0:
        raise ValueError("time_compression_ratio must be positive")
    return {
        query: max(1, round(frequency * time_compression_ratio))
        for query, frequency in frequencies.items()
    }
