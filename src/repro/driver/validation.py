"""Validation mode (spec section 6.2).

"The queries are validated by means of the official validation datasets
...  The auditor must load the provided dataset and run the driver in
validation mode, which will test that the queries provide the official
results."

:func:`create_validation_set` runs every read query once per binding
against a reference graph and records the results in a JSON-serializable
form; :func:`validate` re-runs them on a system under test and reports
every mismatch.  Row order matters — the queries define total sort
orders — so comparison is exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.graph.store import SocialGraph
from repro.queries.bi import ALL_QUERIES as ALL_BI
from repro.queries.interactive.complex import ALL_COMPLEX
from repro.queries.interactive.short import ALL_SHORT


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


def _run(graph: SocialGraph, kind: str, number: int, params: tuple) -> list:
    registry = {"bi": ALL_BI, "complex": ALL_COMPLEX, "short": ALL_SHORT}[kind]
    rows = registry[number][0](graph, *params)
    return [_jsonable(tuple(row)) for row in rows]


def create_validation_set(
    graph: SocialGraph,
    bindings: dict[tuple[str, int], list[tuple]],
) -> dict[str, Any]:
    """Record expected results for every (kind, query number) binding.

    ``bindings`` maps ("bi" | "complex" | "short", number) to parameter
    tuples, typically produced by :mod:`repro.params.curation`.
    """
    entries = []
    for (kind, number), param_list in sorted(bindings.items()):
        for params in param_list:
            entries.append(
                {
                    "kind": kind,
                    "number": number,
                    "params": _jsonable(tuple(params)),
                    "expected": _run(graph, kind, number, params),
                }
            )
    return {"version": 1, "entries": entries}


def validate(
    graph: SocialGraph, validation_set: dict[str, Any]
) -> list[dict[str, Any]]:
    """Re-run the validation queries; return one record per mismatch."""
    mismatches = []
    for entry in validation_set["entries"]:
        actual = _run(
            graph, entry["kind"], entry["number"], tuple(entry["params"])
        )
        if actual != entry["expected"]:
            mismatches.append(
                {
                    "kind": entry["kind"],
                    "number": entry["number"],
                    "params": entry["params"],
                    "expected": entry["expected"],
                    "actual": actual,
                }
            )
    return mismatches


def write_validation_set(validation_set: dict[str, Any], path: Path | str) -> None:
    """Persist a validation dataset as JSON."""
    with open(path, "w") as handle:
        json.dump(validation_set, handle)


def read_validation_set(path: Path | str) -> dict[str, Any]:
    """Load a validation dataset written by :func:`write_validation_set`."""
    with open(path) as handle:
        return json.load(handle)
