"""BI workload execution modes (the VLDB 2022 evaluation methodology).

The BI workload is benchmarked in two modes:

* **Power test** — every read query runs sequentially with curated
  parameters on a frozen snapshot; the score aggregates per-query times
  with a geometric mean (so no single query dominates):

      power @ SF = 3600 * SF / geometric_mean(runtime_seconds)

* **Throughput test** — simulation time is partitioned into write
  *microbatches* (one simulated day each, containing that day's inserts
  and deletes); after each batch the read mix runs against the updated
  snapshot.  The score is the total number of operations per elapsed
  second and the per-batch latency profile.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.datagen.delete_streams import DeleteOperation, build_delete_streams
from repro.datagen.generator import SocialNetworkData
from repro.datagen.update_streams import UpdateOperation, build_update_streams
from repro.engine import reset_counters
from repro.graph.cache import CachedQueryExecutor
from repro.graph.store import SocialGraph
from repro.params.curation import ParameterGenerator
from repro.queries.bi import ALL_QUERIES
from repro.queries.interactive.deletes import ALL_DELETES
from repro.queries.interactive.updates import ALL_UPDATES
from repro.util.dates import MILLIS_PER_DAY


@dataclass
class PowerTestResult:
    """Per-query runtimes of one sequential pass over BI 1-25."""

    #: query number -> runtime in seconds.
    runtimes: dict[int, float]
    scale_factor: float
    #: query number -> engine operator counters (non-zero only); every
    #: counter name maps to a spec choke-point id through
    #: ``repro.analysis.chokepoints.OPERATOR_COUNTER_CPS``.
    operator_stats: dict[int, dict[str, int]] = field(default_factory=dict)

    @property
    def geometric_mean(self) -> float:
        values = [max(t, 1e-9) for t in self.runtimes.values()]
        return math.exp(sum(math.log(v) for v in values) / len(values))

    @property
    def power_score(self) -> float:
        """power @ SF, the paper's headline metric."""
        return 3600.0 * self.scale_factor / self.geometric_mean

    def format_table(self) -> str:
        lines = [f"{'query':8s} {'runtime ms':>11s}  operators"]
        for number, runtime in sorted(self.runtimes.items()):
            counters = self.operator_stats.get(number, {})
            summary = " ".join(
                f"{name}={value}" for name, value in counters.items()
            )
            lines.append(f"BI {number:<5d} {1000 * runtime:11.3f}  {summary}")
        lines.append(
            f"geomean {1000 * self.geometric_mean:.3f} ms ->"
            f" power@SF {self.power_score:.1f}"
        )
        return "\n".join(lines)


def power_test(
    graph: SocialGraph,
    params: ParameterGenerator,
    scale_factor: float,
    bindings_per_query: int = 1,
) -> PowerTestResult:
    """Run every BI read sequentially and score the snapshot.

    Alongside each runtime, the engine's per-operator counters (rows
    scanned, access path taken, heap activity) are snapshotted per
    query, so the result maps runtime to operator work and on to the
    spec's choke points.
    """
    runtimes: dict[int, float] = {}
    operator_stats: dict[int, dict[str, int]] = {}
    for number in sorted(ALL_QUERIES):
        query, _ = ALL_QUERIES[number]
        bindings = params.bi(number, count=bindings_per_query)
        reset_counters()
        start = time.perf_counter()
        for binding in bindings:
            query(graph, *binding)
        runtimes[number] = (time.perf_counter() - start) / len(bindings)
        operator_stats[number] = reset_counters().as_dict(skip_zero=True)
    return PowerTestResult(
        runtimes=runtimes,
        scale_factor=scale_factor,
        operator_stats=operator_stats,
    )


@dataclass
class Microbatch:
    """One simulated day of writes."""

    day_start: int
    inserts: list[UpdateOperation] = field(default_factory=list)
    deletes: list[DeleteOperation] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)


def build_microbatches(
    net: SocialNetworkData, include_deletes: bool = True
) -> list[Microbatch]:
    """Partition the update (and delete) streams into daily batches."""
    batches: dict[int, Microbatch] = {}

    def batch_for(timestamp: int) -> Microbatch:
        day = timestamp // MILLIS_PER_DAY
        if day not in batches:
            batches[day] = Microbatch(day_start=day * MILLIS_PER_DAY)
        return batches[day]

    for op in build_update_streams(net):
        batch_for(op.timestamp).inserts.append(op)
    if include_deletes:
        for op in build_delete_streams(net):
            batch_for(op.timestamp).deletes.append(op)
    return [batches[day] for day in sorted(batches)]


@dataclass
class ThroughputTestResult:
    """Outcome of the microbatch throughput test."""

    batch_seconds: list[float]
    read_seconds: list[float]
    operations: int
    elapsed: float
    #: Result-cache counters (CP-6.1) when the test ran through a
    #: :class:`~repro.graph.cache.CachedQueryExecutor`; empty otherwise.
    cache_stats: dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.operations / self.elapsed if self.elapsed else float("inf")

    def format_table(self) -> str:
        mean_batch = (
            1000 * sum(self.batch_seconds) / len(self.batch_seconds)
            if self.batch_seconds
            else 0.0
        )
        mean_reads = (
            1000 * sum(self.read_seconds) / len(self.read_seconds)
            if self.read_seconds
            else 0.0
        )
        line = (
            f"{len(self.batch_seconds)} microbatches,"
            f" mean write batch {mean_batch:.2f} ms,"
            f" mean read block {mean_reads:.2f} ms,"
            f" {self.operations} ops in {self.elapsed:.2f}s"
            f" -> {self.throughput:.0f} ops/s"
        )
        if self.cache_stats:
            line += (
                f"\ncache: hits={self.cache_stats['hits']:.0f}"
                f" misses={self.cache_stats['misses']:.0f}"
                f" invalidations={self.cache_stats['invalidations']:.0f}"
                f" evictions={self.cache_stats['evictions']:.0f}"
                f" hit_rate={self.cache_stats['hit_rate']:.2f}"
            )
        return line


@dataclass
class ConcurrentTestResult:
    """Outcome of the multi-stream concurrent read test."""

    streams: int
    queries_per_stream: int
    elapsed: float

    @property
    def total_queries(self) -> int:
        return self.streams * self.queries_per_stream

    @property
    def throughput(self) -> float:
        return self.total_queries / self.elapsed if self.elapsed else float("inf")


def _run_read_stream(args: tuple) -> int:
    """One concurrent query stream (executed in a forked worker).

    Streams offset their rotation through BI 1-25 so concurrent workers
    exercise different queries at any instant, like the official
    throughput test's distinct query streams.
    """
    stream_index, queries_per_stream = args
    graph = _WORKER_GRAPH
    bindings = _WORKER_BINDINGS
    numbers = sorted(bindings)
    executed = 0
    cursor = stream_index * 7  # de-phase the streams
    for _ in range(queries_per_stream):
        number = numbers[cursor % len(numbers)]
        binding = bindings[number][cursor % len(bindings[number])]
        ALL_QUERIES[number][0](graph, *binding)
        executed += 1
        cursor += 1
    return executed


_WORKER_GRAPH = None
_WORKER_BINDINGS = None


def _init_worker(graph, bindings):  # pragma: no cover - subprocess body
    global _WORKER_GRAPH, _WORKER_BINDINGS
    _WORKER_GRAPH = graph
    _WORKER_BINDINGS = bindings


def concurrent_read_test(
    graph: SocialGraph,
    params: ParameterGenerator,
    streams: int = 4,
    queries_per_stream: int = 25,
) -> ConcurrentTestResult:
    """The multi-stream read throughput test (CP-6, "Parallelism and
    Concurrency"): ``streams`` concurrent clients each run a rotation of
    BI reads against the same read-only snapshot.

    Uses process workers (fork start method where available) so the
    streams execute genuinely in parallel; on platforms without fork the
    snapshot is pickled to each worker once.
    """
    import multiprocessing as mp

    if streams <= 0 or queries_per_stream <= 0:
        raise ValueError("streams and queries_per_stream must be positive")
    bindings = {n: params.bi(n, count=3) for n in sorted(ALL_QUERIES)}
    if streams == 1:
        start = time.perf_counter()
        _init_worker(graph, bindings)
        _run_read_stream((0, queries_per_stream))
        return ConcurrentTestResult(1, queries_per_stream,
                                    time.perf_counter() - start)
    context = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else None
    )
    start = time.perf_counter()
    with context.Pool(
        processes=streams,
        initializer=_init_worker,
        initargs=(graph, bindings),
    ) as pool:
        counts = pool.map(
            _run_read_stream,
            [(index, queries_per_stream) for index in range(streams)],
        )
    elapsed = time.perf_counter() - start
    assert sum(counts) == streams * queries_per_stream
    return ConcurrentTestResult(streams, queries_per_stream, elapsed)


def throughput_test(
    graph: SocialGraph,
    params: ParameterGenerator,
    batches: list[Microbatch],
    reads_per_batch: int = 5,
    executor: CachedQueryExecutor | None = None,
) -> ThroughputTestResult:
    """Alternate write microbatches with blocks of BI reads.

    ``reads_per_batch`` BI queries (rotating through BI 1-25 with
    rotating curated bindings) run after each batch, emulating the
    refresh-then-analyse loop of the paper's throughput test.

    With ``executor`` supplied (a :class:`CachedQueryExecutor` wrapping
    ``graph``), reads route through the inter-query result cache and
    writes invalidate it; the executor's counters land in
    :attr:`ThroughputTestResult.cache_stats` (CP-6.1).
    """
    if executor is not None and executor.graph is not graph:
        raise ValueError("executor must wrap the same graph")
    batch_seconds: list[float] = []
    read_seconds: list[float] = []
    operations = 0
    read_cursor = 0
    numbers = sorted(ALL_QUERIES)
    bindings = {n: params.bi(n, count=3) for n in numbers}

    started = time.perf_counter()
    for batch in batches:
        write_start = time.perf_counter()
        if executor is not None and batch.size:
            executor.invalidate()
        for insert in batch.inserts:
            try:
                ALL_UPDATES[insert.operation_id][0](graph, insert.params)
            except (KeyError, ValueError):
                pass  # write invalidated by an earlier delete
        for delete in batch.deletes:
            ALL_DELETES[delete.operation_id][0](graph, delete.params)
        batch_seconds.append(time.perf_counter() - write_start)
        operations += batch.size

        read_start = time.perf_counter()
        for _ in range(reads_per_batch):
            number = numbers[read_cursor % len(numbers)]
            binding = bindings[number][read_cursor % len(bindings[number])]
            query = ALL_QUERIES[number][0]
            try:
                if executor is not None:
                    executor.run(f"bi{number}", query, *binding)
                else:
                    query(graph, *binding)
            except KeyError:
                pass  # parameter invalidated by a delete
            read_cursor += 1
            operations += 1
        read_seconds.append(time.perf_counter() - read_start)
    return ThroughputTestResult(
        batch_seconds=batch_seconds,
        read_seconds=read_seconds,
        operations=operations,
        elapsed=time.perf_counter() - started,
        cache_stats=executor.stats() if executor is not None else {},
    )
