"""BI workload execution modes (the VLDB 2022 evaluation methodology).

The BI workload is benchmarked in two modes:

* **Power test** — every read query runs with curated parameters on a
  frozen snapshot; the score aggregates per-query times with a geometric
  mean (so no single query dominates):

      power @ SF = 3600 * SF / geometric_mean(runtime_seconds)

* **Throughput test** — simulation time is partitioned into write
  *microbatches* (one simulated day each, containing that day's inserts
  and deletes); after each batch the read mix runs against the updated
  snapshot.  The score is the total number of operations per elapsed
  second and the per-batch latency profile.

All three tests execute through the :mod:`repro.exec` worker pool
(``workers=1`` is the inline serial baseline), so they share one
scheduling/deadline/retry layer and their parallel runs merge
deterministically:

* the power test and the concurrent read test run over an immutable
  fork-shared snapshot with **process** workers;
* the throughput test's read blocks use **thread** workers, because its
  write microbatches mutate the shared graph between blocks.

Every result class derives from :class:`repro.core.run.RunReport`, so
``summary_dict()`` / ``format_table()`` / ``write_results_dir()`` are
available on all of them.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from repro.core.run import RunReport
from repro.datagen.delete_streams import DeleteOperation, build_delete_streams
from repro.datagen.generator import SocialNetworkData
from repro.datagen.update_streams import UpdateOperation, build_update_streams
from repro.engine import merge_counters, reset_counters
from repro.exec import (
    InlineSnapshot,
    SnapshotConfig,
    Task,
    WorkerPool,
    provide_snapshot,
    resolve_workers,
)
from repro.graph.cache import CachedQueryExecutor
from repro.graph.frozen import FreezeManager, freeze
from repro.graph.store import SocialGraph
from repro.obs.metrics import registry
from repro.obs.spans import span
from repro.params.curation import ParameterGenerator
from repro.queries.bi import ALL_QUERIES
from repro.queries.bi.morsels import MORSEL_PLANS
from repro.queries.interactive.deletes import ALL_DELETES
from repro.queries.interactive.updates import ALL_UPDATES
from repro.util.dates import MILLIS_PER_DAY


def _snapshot_config(snapshot: SnapshotConfig | None) -> SnapshotConfig:
    """One resolved :class:`SnapshotConfig` from the ``snapshot``
    argument (environment knobs fill anything left unset)."""
    return (snapshot or SnapshotConfig()).resolved()


def _accumulate_exec_stats(total: dict, part: dict) -> dict:
    """Sum one pool run's bookkeeping into a running ``exec`` record."""
    if not total:
        total.update(part)
        return total
    for name in ("tasks", "failures", "retries", "timeouts", "worker_crashes"):
        total[name] = total.get(name, 0) + part.get(name, 0)
    return total


@dataclass
class PowerTestResult(RunReport):
    """Per-query runtimes of one pass over BI 1-25."""

    #: query number -> runtime in seconds.
    runtimes: dict[int, float]
    scale_factor: float
    #: query number -> engine operator counters (non-zero only); every
    #: counter name maps to a spec choke-point id through
    #: ``repro.analysis.chokepoints.OPERATOR_COUNTER_CPS``.  For
    #: parallel runs these are the per-worker tallies merged per query —
    #: identical to a serial run's.
    operator_stats: dict[int, dict[str, int]] = field(default_factory=dict)
    #: Worker-pool bookkeeping (workers, backend, retries, timeouts, …).
    exec_stats: dict = field(default_factory=dict)

    @property
    def geometric_mean(self) -> float:
        values = [max(t, 1e-9) for t in self.runtimes.values()]
        return math.exp(sum(math.log(v) for v in values) / len(values))

    @property
    def power_score(self) -> float:
        """power @ SF, the paper's headline metric."""
        return 3600.0 * self.scale_factor / self.geometric_mean

    def summary_dict(self) -> dict:
        return {
            "workload": "bi",
            "mode": "power",
            "scale_factor": self.scale_factor,
            "geometric_mean_seconds": self.geometric_mean,
            "power_score": self.power_score,
            "runtimes_seconds": {str(n): t for n, t in sorted(self.runtimes.items())},
            "operator_stats": {
                str(n): stats for n, stats in sorted(self.operator_stats.items())
            },
            "exec": self.exec_stats,
        }

    def format_table(self) -> str:
        lines = [f"{'query':8s} {'runtime ms':>11s}  operators"]
        for number, runtime in sorted(self.runtimes.items()):
            counters = self.operator_stats.get(number, {})
            summary = " ".join(
                f"{name}={value}" for name, value in counters.items()
            )
            lines.append(f"BI {number:<5d} {1000 * runtime:11.3f}  {summary}")
        lines.append(
            f"geomean {1000 * self.geometric_mean:.3f} ms ->"
            f" power@SF {self.power_score:.1f}"
        )
        return "\n".join(lines)

    def chokepoint_profile(self) -> list[dict]:
        """The per-query choke-point profile: operator-counter work
        grouped by spec CP, joined with runtimes — and, when telemetry
        is attached (``--trace``), with per-operator span timings.  See
        :func:`repro.analysis.profile.chokepoint_profile`."""
        from repro.analysis.profile import chokepoint_profile

        return chokepoint_profile(
            self.operator_stats, self.runtimes, self.telemetry
        )


def power_test(
    graph: SocialGraph,
    params: ParameterGenerator,
    scale_factor: float,
    bindings_per_query: int = 1,
    workers: int | None = None,
    timeout: float | None = None,
    snapshot: SnapshotConfig | None = None,
) -> PowerTestResult:
    """Run every BI read and score the snapshot.

    Alongside each runtime, the engine's per-operator counters (rows
    scanned, access path taken, heap activity) are captured per query
    and mapped to the spec's choke points.

    ``workers > 1`` runs the queries on a process pool over the
    fork-shared snapshot; per-binding runtimes come from each worker's
    own clock and operator counters merge per query, so the merged
    result has exactly the structure (and, runtimes aside, the content)
    of a serial pass.  ``timeout`` bounds each query execution; a query
    that exceeds it is retried once and then recorded with the deadline
    as its runtime (see ``exec_stats``).

    ``snapshot`` is the typed way to configure the read phase (the
    ``SnapshotConfig`` threaded from :class:`repro.core.run.RunRequest`):
    ``freeze`` whether the store is frozen up front (default on — the
    power test is a pure read phase, and results are identical either
    way, the frozen differential suite enforces it); ``provider`` how
    process workers obtain the snapshot (``inline`` fork/pickle, or the
    zero-copy ``mmap_file``/``shared_memory`` mapped columns); and
    ``morsel_size`` opts heavy scans into morsel-driven parallelism:
    with process workers, each binding of a query with a registered
    :data:`~repro.queries.bi.morsels.MORSEL_PLANS` entry is split into
    fixed-size slab morsels dispatched across the pool and merged
    deterministically in the parent — its runtime is the slowest morsel
    plus the merge, its operator counters the morsels' merged tallies
    (identical to the serial scan's).
    """
    config = _snapshot_config(snapshot)
    read_graph = freeze(graph) if config.freeze else graph
    workers_n = resolve_workers(workers)
    morselized = config.morsel_size is not None and workers_n > 1
    numbers = sorted(ALL_QUERIES)
    bindings = {n: params.bi(n, count=bindings_per_query) for n in numbers}
    tasks: list[Task] = []
    #: (number, binding, first task index, task count, plan | None)
    entries: list[tuple] = []
    for number in numbers:
        plan = MORSEL_PLANS.get(number) if morselized else None
        for binding in bindings[number]:
            binding = tuple(binding)
            if plan is not None:
                assert config.morsel_size is not None
                ranges = plan.ranges(read_graph, binding, config.morsel_size)
                if len(ranges) > 1:
                    start = len(tasks)
                    for index, (kind, lo, hi) in enumerate(ranges):
                        tasks.append(Task(
                            len(tasks),
                            "bi_morsel",
                            (number, kind, lo, hi, index == 0, binding),
                        ))
                    entries.append((number, binding, start, len(ranges), plan))
                    continue
            tasks.append(Task(len(tasks), "bi", (number, binding)))
            entries.append((number, binding, len(tasks) - 1, 1, None))
    handle = provide_snapshot(read_graph, config=config)
    try:
        with span("power_test", kind="phase", queries=len(numbers),
                  bindings=len(entries)):
            pool = WorkerPool(
                workers=workers, timeout=timeout, snapshot=handle,
            )
            merged = pool.run(tasks)
    finally:
        handle.close()

    metrics = registry()
    durations: dict[int, list[float]] = {n: [] for n in numbers}
    counter_shares: dict[int, list[dict]] = {n: [] for n in numbers}
    for number, binding, start, count, plan in entries:
        share = merged.outcomes[start:start + count]
        if plan is None:
            duration = share[0].duration
        else:
            # The binding's wall-clock under perfect overlap: its
            # slowest morsel plus the parent-side merge.  The merge's
            # own operator work (final hash aggregation, any person
            # scan) tallies in the parent, so capture it like the pool
            # captures each task's — the binding's merged counters then
            # equal the serial query's exactly.
            partials = [o.value for o in share if o.value is not None]
            merge_start = time.perf_counter()
            reset_counters()
            plan.merge(read_graph, partials, binding)
            merge_tally = reset_counters().as_dict(skip_zero=True)
            duration = (
                max(o.duration for o in share)
                + time.perf_counter() - merge_start
            )
            counter_shares[number].append(merge_tally)
        metrics.histogram(
            "repro_query_seconds", query=f"bi{number}"
        ).observe(duration)
        durations[number].append(duration)
        counter_shares[number].extend(o.counters for o in share)
    runtimes = {
        n: sum(values) / len(values) for n, values in durations.items()
    }
    operator_stats = {
        n: merge_counters(shares) for n, shares in counter_shares.items()
    }
    return PowerTestResult(
        runtimes=runtimes,
        scale_factor=scale_factor,
        operator_stats=operator_stats,
        exec_stats=merged.stats_dict(),
    )


def run_morselized(
    graph: SocialGraph,
    number: int,
    binding: tuple,
    pool: WorkerPool,
    morsel_size: int = 65536,
) -> list:
    """Run one BI query morsel-parallel on ``pool`` and return its rows
    (row-identical to the serial query; the pool's snapshot must hold
    ``graph``).  Used by the parallel-scan benchmark and tests; the
    power test inlines the same decomposition for its batched runs."""
    plan = MORSEL_PLANS[number]
    binding = tuple(binding)
    ranges = plan.ranges(graph, binding, morsel_size)
    merged = pool.run(
        Task(index, "bi_morsel", (number, kind, lo, hi, index == 0, binding))
        for index, (kind, lo, hi) in enumerate(ranges)
    )
    partials = [o.value for o in merged.outcomes if o.value is not None]
    return plan.merge(graph, partials, binding)


@dataclass
class Microbatch:
    """One simulated day of writes."""

    day_start: int
    inserts: list[UpdateOperation] = field(default_factory=list)
    deletes: list[DeleteOperation] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)


def build_microbatches(
    net: SocialNetworkData, include_deletes: bool = True
) -> list[Microbatch]:
    """Partition the update (and delete) streams into daily batches."""
    batches: dict[int, Microbatch] = {}

    def batch_for(timestamp: int) -> Microbatch:
        day = timestamp // MILLIS_PER_DAY
        if day not in batches:
            batches[day] = Microbatch(day_start=day * MILLIS_PER_DAY)
        return batches[day]

    for op in build_update_streams(net):
        batch_for(op.timestamp).inserts.append(op)
    if include_deletes:
        for op in build_delete_streams(net):
            batch_for(op.timestamp).deletes.append(op)
    return [batches[day] for day in sorted(batches)]


@dataclass
class ThroughputTestResult(RunReport):
    """Outcome of the microbatch throughput test."""

    batch_seconds: list[float]
    read_seconds: list[float]
    operations: int
    elapsed: float
    #: Result-cache counters (CP-6.1) when the test ran through a
    #: :class:`~repro.graph.cache.CachedQueryExecutor`; empty otherwise.
    cache_stats: dict[str, float] = field(default_factory=dict)
    #: Worker-pool bookkeeping summed over all read blocks.
    exec_stats: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.operations / self.elapsed if self.elapsed else float("inf")

    def summary_dict(self) -> dict:
        return {
            "workload": "bi",
            "mode": "throughput",
            "microbatches": len(self.batch_seconds),
            "operations": self.operations,
            "elapsed_seconds": self.elapsed,
            "throughput_ops_per_second": self.throughput,
            "cache_stats": self.cache_stats,
            "exec": self.exec_stats,
        }

    def format_table(self) -> str:
        mean_batch = (
            1000 * sum(self.batch_seconds) / len(self.batch_seconds)
            if self.batch_seconds
            else 0.0
        )
        mean_reads = (
            1000 * sum(self.read_seconds) / len(self.read_seconds)
            if self.read_seconds
            else 0.0
        )
        line = (
            f"{len(self.batch_seconds)} microbatches,"
            f" mean write batch {mean_batch:.2f} ms,"
            f" mean read block {mean_reads:.2f} ms,"
            f" {self.operations} ops in {self.elapsed:.2f}s"
            f" -> {self.throughput:.0f} ops/s"
        )
        if self.cache_stats:
            line += (
                f"\ncache: hits={self.cache_stats['hits']:.0f}"
                f" misses={self.cache_stats['misses']:.0f}"
                f" invalidations={self.cache_stats['invalidations']:.0f}"
                f" evictions={self.cache_stats['evictions']:.0f}"
                f" hit_rate={self.cache_stats['hit_rate']:.2f}"
            )
        return line


@dataclass
class ConcurrentTestResult(RunReport):
    """Outcome of the multi-stream concurrent read test."""

    streams: int
    queries_per_stream: int
    elapsed: float
    #: Engine operator counters merged across all worker processes.
    operator_counters: dict[str, int] = field(default_factory=dict)
    #: Worker-pool bookkeeping (backend, retries, timeouts, crashes).
    exec_stats: dict = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        return self.streams * self.queries_per_stream

    @property
    def throughput(self) -> float:
        return self.total_queries / self.elapsed if self.elapsed else float("inf")

    def summary_dict(self) -> dict:
        return {
            "workload": "bi",
            "mode": "concurrent",
            "streams": self.streams,
            "queries_per_stream": self.queries_per_stream,
            "total_queries": self.total_queries,
            "elapsed_seconds": self.elapsed,
            "throughput_queries_per_second": self.throughput,
            "operator_counters": self.operator_counters,
            "exec": self.exec_stats,
        }

    def format_table(self) -> str:
        return (
            f"{self.streams} streams x {self.queries_per_stream} queries ="
            f" {self.total_queries} in {self.elapsed:.2f}s"
            f" -> {self.throughput:.0f} q/s"
        )


def concurrent_read_test(
    graph: SocialGraph,
    params: ParameterGenerator,
    streams: int = 4,
    queries_per_stream: int = 25,
    workers: int | None = None,
    timeout: float | None = None,
    snapshot: SnapshotConfig | None = None,
) -> ConcurrentTestResult:
    """The multi-stream read throughput test (CP-6, "Parallelism and
    Concurrency"): ``streams`` concurrent clients each run a de-phased
    rotation of BI reads against the same read-only snapshot.

    Runs on the :mod:`repro.exec` process pool over the fork-shared
    snapshot (``workers`` defaults to one process per stream); each
    stream is one task, so per-stream deadlines, retry-once and crash
    recovery all apply.  Engine operator counters accumulate in each
    worker process and merge into :attr:`ConcurrentTestResult.operator_counters`.

    ``snapshot`` configures the read phase like :func:`power_test`'s:
    ``freeze`` defaults on (a pure read phase over an immutable snapshot
    is exactly what the frozen layout is for), and the mapped providers
    serve every stream's columns from one shared buffer instead of
    fork-inherited pages.
    """
    if streams <= 0 or queries_per_stream <= 0:
        raise ValueError("streams and queries_per_stream must be positive")
    config = _snapshot_config(snapshot)
    read_graph = freeze(graph) if config.freeze else graph
    bindings = {n: params.bi(n, count=3) for n in sorted(ALL_QUERIES)}
    handle = provide_snapshot(
        read_graph, context={"bindings": bindings}, config=config
    )
    try:
        pool = WorkerPool(
            workers=streams if workers is None else workers,
            timeout=timeout,
            snapshot=handle,
        )
        with span("concurrent_read_test", kind="phase", streams=streams,
                  queries_per_stream=queries_per_stream):
            merged = pool.run(
                Task(index, "stream", (index, queries_per_stream))
                for index in range(streams)
            )
    finally:
        handle.close()
    for outcome in merged.outcomes:
        registry().histogram("repro_stream_seconds").observe(outcome.duration)
    if not merged.failures:
        executed = sum(outcome.value for outcome in merged.outcomes)
        assert executed == streams * queries_per_stream
    return ConcurrentTestResult(
        streams=streams,
        queries_per_stream=queries_per_stream,
        elapsed=merged.elapsed,
        operator_counters=merged.counters,
        exec_stats=merged.stats_dict(),
    )


def throughput_test(
    graph: SocialGraph,
    params: ParameterGenerator,
    batches: list[Microbatch],
    reads_per_batch: int = 5,
    executor: CachedQueryExecutor | None = None,
    workers: int | None = None,
    timeout: float | None = None,
    snapshot: SnapshotConfig | None = None,
) -> ThroughputTestResult:
    """Alternate write microbatches with blocks of BI reads.

    ``reads_per_batch`` BI queries (rotating through BI 1-25 with
    rotating curated bindings) run after each batch, emulating the
    refresh-then-analyse loop of the paper's throughput test.

    Writes always apply serially in the calling thread (they mutate the
    shared graph); the read block runs through the :mod:`repro.exec`
    pool — inline for ``workers=1``, **thread** workers otherwise, since
    process workers cannot see the freshly written state without
    re-forking per batch.  Reads invalidated by deletes count as
    operations with a ``-1`` row marker, exactly as in a serial run.

    ``snapshot.freeze`` (default on, like :func:`power_test`): the live
    store stays the write path, and each read block runs against the
    :class:`~repro.graph.frozen.FreezeManager`'s merge-on-read view —
    one initial freeze, then a delta-overlaid snapshot that absorbs
    each microbatch's writes, with a threshold-triggered compaction
    refreeze once the overlay outgrows ``snapshot.compact_fraction`` of
    the base snapshot (:mod:`repro.graph.delta`; default through
    ``REPRO_DELTA_COMPACT_FRACTION``).  No per-microbatch refreezes:
    overlay maintenance and any compactions are part of the measured
    run, exactly like an incremental index refresh would be.  Pass
    ``compact_fraction=0.0`` to restore the old refreeze-every-batch
    behaviour (the benchmark baseline).

    With ``executor`` supplied (a :class:`CachedQueryExecutor` wrapping
    ``graph``), reads route through the inter-query result cache and
    writes invalidate it; the executor's counters land in
    :attr:`ThroughputTestResult.cache_stats` (CP-6.1).  Cached reads are
    serialized under a lock when parallel — the cache's bookkeeping is
    not thread safe — which keeps hit/miss counts identical to serial.
    Cached reads execute on the executor's own (live) graph and count
    as ``live_fallback`` in the ``repro_frozen_path_total`` metric.
    """
    if executor is not None and executor.graph is not graph:
        raise ValueError("executor must wrap the same graph")
    config = _snapshot_config(snapshot)
    workers_n = resolve_workers(workers)
    manager = (
        FreezeManager(graph, compact_fraction=config.compact_fraction)
        if config.freeze
        else None
    )
    context = {"executor": executor, "executor_lock": threading.Lock()}
    batch_seconds: list[float] = []
    read_seconds: list[float] = []
    operations = 0
    read_cursor = 0
    numbers = sorted(ALL_QUERIES)
    bindings = {n: params.bi(n, count=3) for n in numbers}
    exec_stats: dict = {}

    metrics = registry()
    started = time.perf_counter()
    try:
        with span("throughput_test", kind="phase", microbatches=len(batches),
                  reads_per_batch=reads_per_batch):
            for batch_index, batch in enumerate(batches):
                with span(f"batch[{batch_index}]", kind="operation",
                          writes=batch.size):
                    write_start = time.perf_counter()
                    if executor is not None and batch.size:
                        executor.invalidate()
                    for insert in batch.inserts:
                        try:
                            ALL_UPDATES[insert.operation_id][0](
                                graph, insert.params
                            )
                        except (KeyError, ValueError):
                            pass  # write invalidated by an earlier delete
                    for delete in batch.deletes:
                        ALL_DELETES[delete.operation_id][0](graph, delete.params)
                    batch_seconds.append(time.perf_counter() - write_start)
                    metrics.histogram("repro_batch_write_seconds").observe(
                        batch_seconds[-1]
                    )
                    operations += batch.size

                    tasks = []
                    for _ in range(reads_per_batch):
                        number = numbers[read_cursor % len(numbers)]
                        binding = bindings[number][
                            read_cursor % len(bindings[number])
                        ]
                        tasks.append(
                            Task(
                                len(tasks),
                                "bi_throughput",
                                (number, tuple(binding)),
                            )
                        )
                        read_cursor += 1
                    read_graph = graph if manager is None else manager.frozen()
                    # capture_spans=False: the serial (workers=1) and thread
                    # (workers>1) read blocks must leave identically shaped
                    # traces, and threads can only synthesize.
                    # Always inline: the context's ``executor_lock`` is
                    # unpicklable and thread workers share the parent's
                    # address space anyway, so mapped providers would
                    # buy nothing here.
                    pool = WorkerPool(
                        workers=workers_n,
                        backend="thread" if workers_n > 1 else "serial",
                        timeout=timeout,
                        snapshot=InlineSnapshot(read_graph, context=context),
                        capture_spans=False,
                    )
                    block = pool.run(tasks)
                    read_seconds.append(block.elapsed)
                    metrics.histogram("repro_read_block_seconds").observe(
                        block.elapsed
                    )
                    operations += len(tasks)
                    _accumulate_exec_stats(exec_stats, block.stats_dict())
    finally:
        if manager is not None:
            manager.detach()
    return ThroughputTestResult(
        batch_seconds=batch_seconds,
        read_seconds=read_seconds,
        operations=operations,
        elapsed=time.perf_counter() - started,
        cache_stats=executor.stats() if executor is not None else {},
        exec_stats=exec_stats,
    )
