"""The benchmark test driver (spec sections 3.4 and 6.2).

* :mod:`repro.driver.mix` — query frequencies per scale factor (Table B.1)
  and the time-compression ratio.
* :mod:`repro.driver.scheduler` — assigns issue times: updates at their
  simulation timestamps, complex reads interleaved by frequency, short
  reads in decaying-probability sequences.
* :mod:`repro.driver.runner` — executes a schedule against a graph,
  producing the results log and the on-time/throughput summary.
* :mod:`repro.driver.validation` — validation datasets and comparison.
"""

from repro.driver.mix import FREQUENCIES, frequencies_for_scale_factor
from repro.driver.runner import Driver, DriverReport, ResultsLogEntry
from repro.driver.scheduler import ScheduledOperation, Scheduler
from repro.driver.validation import create_validation_set, validate

__all__ = [
    "Driver",
    "DriverReport",
    "FREQUENCIES",
    "ResultsLogEntry",
    "ScheduledOperation",
    "Scheduler",
    "create_validation_set",
    "frequencies_for_scale_factor",
    "validate",
]
