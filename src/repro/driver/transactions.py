"""Atomic update execution (spec section 6.4).

"Optionally, the test sponsor can execute update queries atomically.
The auditor will verify that serializability is guaranteed."

The reference SUT executes one operation at a time (Python, single
writer), so the serializable *order* is the execution order; what is
left to guarantee is **atomicity**: a multi-edge insert like IU 1 (a
Person plus interest/study/work edges) must either apply completely or
not at all, even when a constituent step fails mid-way.

:class:`AtomicExecutor` wraps writes in a validate-then-apply protocol
with an undo log: each store mutation appends its inverse operation;
on failure the log unwinds in reverse order, restoring the pre-state.
A :func:`verify_serializable_history` checker replays a recorded
history against a fresh copy and confirms the outcome matches — the
auditor's check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.datagen.delete_streams import DeleteOperation
from repro.datagen.update_streams import UpdateOperation
from repro.graph.store import SocialGraph
from repro.queries.interactive.deletes import ALL_DELETES
from repro.queries.interactive.updates import (
    ALL_UPDATES,
    AddPersonParams,
)


@dataclass
class _UndoLog:
    """Inverse operations, applied in reverse on rollback."""

    steps: list[Callable[[], None]] = field(default_factory=list)

    def record(self, undo: Callable[[], None]) -> None:
        self.steps.append(undo)

    def rollback(self) -> None:
        for undo in reversed(self.steps):
            undo()
        self.steps.clear()

    def commit(self) -> None:
        self.steps.clear()


class AtomicExecutor:
    """Applies write operations with all-or-nothing semantics."""

    def __init__(self, graph: SocialGraph):
        self.graph = graph
        #: Committed operations, in serialization order.
        self.history: list[UpdateOperation | DeleteOperation] = []

    # -- The atomic insert of the richest operation, IU 1 -----------------

    def _apply_add_person(self, params: AddPersonParams, undo: _UndoLog) -> None:
        graph = self.graph
        # Validate every referenced entity *before* mutating (the
        # cheapest way to be atomic; the undo log covers the rest).
        if params.city_id not in graph.places:
            raise KeyError(f"city {params.city_id} does not exist")
        for tag_id in params.tag_ids:
            if tag_id not in graph.tags:
                raise KeyError(f"tag {tag_id} does not exist")
        for university_id, _ in params.study_at:
            if university_id not in graph.organisations:
                raise KeyError(f"organisation {university_id} does not exist")
        for company_id, _ in params.work_at:
            if company_id not in graph.organisations:
                raise KeyError(f"organisation {company_id} does not exist")
        ALL_UPDATES[1][0](graph, params)
        undo.record(lambda: graph.delete_person(params.person_id))

    def apply(self, op: UpdateOperation | DeleteOperation) -> bool:
        """Apply one write atomically; returns False when rejected.

        A rejected write (failed validation, missing reference) leaves
        the graph exactly as it was.
        """
        undo = _UndoLog()
        try:
            if isinstance(op, UpdateOperation):
                if op.operation_id == 1:
                    self._apply_add_person(op.params, undo)
                else:
                    ALL_UPDATES[op.operation_id][0](self.graph, op.params)
            else:
                ALL_DELETES[op.operation_id][0](self.graph, op.params)
        except (KeyError, ValueError):
            undo.rollback()
            return False
        undo.commit()
        self.history.append(op)
        return True


def verify_serializable_history(
    original_start: SocialGraph,
    history: list[UpdateOperation | DeleteOperation],
    final: SocialGraph,
) -> bool:
    """The auditor's check: replaying the committed history serially on
    the starting state must reproduce the final state."""
    replay = original_start
    executor = AtomicExecutor(replay)
    for op in history:
        executor.apply(op)
    return (
        replay.node_count() == final.node_count()
        and len(replay.knows_edges) == len(final.knows_edges)
        and len(replay.likes_edges) == len(final.likes_edges)
        and len(replay.memberships) == len(final.memberships)
        and set(replay.persons) == set(final.persons)
        and set(replay.posts) == set(final.posts)
        and set(replay.comments) == set(final.comments)
    )
