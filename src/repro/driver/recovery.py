"""Durability and recovery (spec section 6.3).

The auditing rules require that after a crash "the last committed update
(in the driver log file) is actually in the database" and that
checkpoints happen at bounded intervals.  The reference SUT is
in-memory, so durability is layered on top:

* every write (IU 1-8 / DEL 1-8) is appended to a **write-ahead log**
  and flushed before it is applied — the commit point;
* a **checkpoint** (a full snapshot plus the WAL position it covers) is
  taken every ``checkpoint_every`` writes;
* :func:`recover` rebuilds the store from the latest checkpoint and
  replays the WAL tail.

:class:`DurableSut` exposes ``crash()`` for the §6.3 test: it drops the
in-memory state, after which only recovery can resurrect the data.
"""

from __future__ import annotations

import base64
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.datagen.delete_streams import DeleteOperation
from repro.datagen.update_streams import UpdateOperation
from repro.graph.store import SocialGraph
from repro.queries.interactive.deletes import ALL_DELETES
from repro.queries.interactive.updates import ALL_UPDATES

WriteOperation = Union[UpdateOperation, DeleteOperation]


def _apply(graph: SocialGraph, op: WriteOperation) -> None:
    registry = ALL_UPDATES if isinstance(op, UpdateOperation) else ALL_DELETES
    try:
        registry[op.operation_id][0](graph, op.params)
    except (KeyError, ValueError):
        pass  # skipped write (reference deleted earlier); still logged


def _encode(op: WriteOperation) -> str:
    return base64.b64encode(pickle.dumps(op)).decode()


def _decode(line: str) -> WriteOperation:
    return pickle.loads(base64.b64decode(line))


@dataclass
class Checkpoint:
    """A snapshot plus the number of WAL entries it covers."""

    wal_position: int
    path: Path


class DurableSut:
    """The reference SUT with WAL + checkpoint durability."""

    def __init__(
        self,
        graph: SocialGraph,
        directory: Path | str,
        checkpoint_every: int = 500,
    ):
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / "wal.log"
        self.checkpoint_path = self.directory / "checkpoint.pickle"
        self.meta_path = self.directory / "checkpoint.meta"
        self.checkpoint_every = checkpoint_every
        self.graph: SocialGraph | None = graph
        # A fresh WAL: the initial checkpoint covers the loaded state.
        self._wal = open(self.wal_path, "w")
        self._writes = 0
        self.checkpoint()

    def apply(self, op: WriteOperation) -> None:
        """Commit one write: WAL first (flushed), then apply."""
        if self.graph is None:
            raise RuntimeError("SUT has crashed; recover first")
        self._wal.write(_encode(op) + "\n")
        self._wal.flush()
        _apply(self.graph, op)
        self._writes += 1
        if self._writes % self.checkpoint_every == 0:
            self.checkpoint()

    def checkpoint(self) -> Checkpoint:
        """Snapshot the current state and record the WAL position."""
        if self.graph is None:
            raise RuntimeError("SUT has crashed; recover first")
        with open(self.checkpoint_path, "wb") as handle:
            pickle.dump(self.graph, handle)
        self.meta_path.write_text(str(self._writes))
        return Checkpoint(self._writes, self.checkpoint_path)

    @property
    def committed_writes(self) -> int:
        return self._writes

    def crash(self) -> None:
        """Lose all volatile state (the §6.3 'machine disconnected')."""
        self.graph = None
        self._wal.close()

    def close(self) -> None:
        if not self._wal.closed:
            self._wal.close()


def recover(directory: Path | str) -> tuple[SocialGraph, int]:
    """Rebuild the store: latest checkpoint + WAL tail replay.

    Returns the recovered graph and the number of committed writes it
    contains — every WAL entry, i.e. everything acknowledged before the
    crash.
    """
    directory = Path(directory)
    with open(directory / "checkpoint.pickle", "rb") as handle:
        graph: SocialGraph = pickle.load(handle)
    covered = int((directory / "checkpoint.meta").read_text())
    replayed = 0
    with open(directory / "wal.log") as handle:
        for index, line in enumerate(handle):
            if index < covered:
                continue
            _apply(graph, _decode(line.strip()))
            replayed += 1
    return graph, covered + replayed
