"""Schedule construction (spec section 3.4, "Load Definition").

The scheduler assigns a *query issue time* to every operation:

* **Updates** keep the timestamps of their update stream — "the times
  where the actual event happened during the simulation".
* **Complex reads** are expressed in terms of update operations: query
  type *q* with frequency *f_q* is issued once per *f_q* updates, at the
  simulation timestamp of the update that triggered it.  Parameters come
  from the curated substitution-parameter lists, cycled per type.
* **Short reads** are *not* scheduled here: their issue times depend on
  complex-read completion times and are decided by the runner at run
  time, per the spec.

The schedule is deterministic for a given (stream, frequencies,
parameters) triple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datagen.delete_streams import DeleteOperation
from repro.datagen.update_streams import UpdateOperation
from repro.util.dates import DateTime


@dataclass(slots=True, frozen=True)
class ScheduledOperation:
    """One entry of the driver's schedule."""

    #: Simulation-time instant the operation is due.
    due: DateTime
    #: "update", "delete" or "complex" ("short" operations are created
    #: at runtime by the runner).
    kind: str
    #: IU/DEL operation id or IC query number.
    number: int
    #: IU/DEL parameter record, or the IC parameter tuple.
    params: Any


class Scheduler:
    """Builds the interleaved update / complex-read schedule."""

    def __init__(
        self,
        updates: list[UpdateOperation],
        frequencies: dict[int, int],
        parameters: dict[int, list[tuple]],
        deletes: list[DeleteOperation] | None = None,
    ):
        """``parameters`` maps complex-read number -> curated bindings.

        ``deletes`` (optional) interleaves DEL 1-8 operations at their
        own timestamps — the insert/delete mix of spec section 5.2.
        """
        self.updates = sorted(updates, key=lambda op: (op.timestamp, op.operation_id))
        self.frequencies = frequencies
        self.parameters = parameters
        self.deletes = sorted(
            deletes or [], key=lambda op: (op.timestamp, op.operation_id)
        )

    def build(self) -> list[ScheduledOperation]:
        """The full schedule, ordered by due time."""
        schedule: list[ScheduledOperation] = [
            ScheduledOperation(op.timestamp, "update", op.operation_id, op.params)
            for op in self.updates
        ]
        schedule.extend(
            ScheduledOperation(op.timestamp, "delete", op.operation_id, op.params)
            for op in self.deletes
        )
        cursors = {query: 0 for query in self.frequencies}
        for index, update in enumerate(self.updates, start=1):
            for query, frequency in self.frequencies.items():
                if index % frequency != 0:
                    continue
                bindings = self.parameters.get(query)
                if not bindings:
                    continue
                cursor = cursors[query]
                cursors[query] = cursor + 1
                schedule.append(
                    ScheduledOperation(
                        update.timestamp,
                        "complex",
                        query,
                        bindings[cursor % len(bindings)],
                    )
                )
        # At equal due times writes precede reads: a complex read
        # triggered by the Nth update is issued after that update
        # applied (spec: one read per freq updates *performed*).
        kind_order = {"update": 0, "delete": 1, "complex": 2}
        schedule.sort(key=lambda op: (op.due, kind_order[op.kind], op.number))
        return schedule

    def expected_mix(self) -> dict[int, int]:
        """How many instances of each complex read the schedule holds —
        ``len(updates) // frequency`` by construction (Table 3.1 check)."""
        total = len(self.updates)
        return {
            query: total // frequency
            for query, frequency in self.frequencies.items()
            if self.parameters.get(query)
        }
