"""Workload execution (spec sections 3.4 and 6.2).

The :class:`Driver` executes a schedule against a :class:`SocialGraph`:

* updates are applied through IU 1-8;
* complex reads run IC 1-14 with their scheduled parameters;
* after each complex read a **short-read sequence** is issued — person
  centric (IS 1, IS 2, IS 3) or message centric (IS 4 - IS 7) depending
  on the complex read type — with parameters taken from the results of
  previously executed reads; after each sequence another one follows
  with a decaying probability.  The same RNG seed makes the workload
  deterministic across executions, as the spec requires.

Simulation time maps to wall-clock time through the Time Compression
Ratio: ``wall_gap = sim_gap * tcr``.  A TCR of 0 replays as fast as
possible.  Every operation is logged with its scheduled and actual start
time; the §6.2 validity rule (95 % of queries start within 1 second of
schedule) is evaluated over the log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.run import RunReport
from repro.driver.scheduler import ScheduledOperation
from repro.exec import (
    InlineSnapshot,
    SnapshotConfig,
    Task,
    WorkerPool,
    resolve_workers,
)
from repro.graph.frozen import FreezeManager
from repro.graph.store import SocialGraph
from repro.obs.metrics import registry, summarize_seconds
from repro.obs.spans import span
from repro.queries.interactive.complex import ALL_COMPLEX
from repro.queries.interactive.deletes import ALL_DELETES
from repro.queries.interactive.short import ALL_SHORT
from repro.queries.interactive.updates import ALL_UPDATES
from repro.util.rng import DeterministicRng

#: Complex reads whose results contain message ids -> message-centric
#: short-read sequences; all others are person centric.
_MESSAGE_CENTRIC = frozenset({2, 7, 8, 9})
#: Probability of issuing another short-read sequence after one finishes,
#: multiplied by itself after every sequence (decaying, per spec 3.4).
SHORT_SEQUENCE_PROBABILITY = 0.5

_PERSON_FIELDS = ("person_id", "friend_id", "zombie_id", "person1_id")
_MESSAGE_FIELDS = ("message_id", "comment_id", "comment_or_post_id", "post_id")


@dataclass(slots=True)
class ResultsLogEntry:
    """One line of the ``results_log.csv`` the auditing rules require."""

    operation: str
    scheduled_start: float
    actual_start: float
    duration: float
    result_count: int

    @property
    def start_delay(self) -> float:
        return self.actual_start - self.scheduled_start


def _record_log_metrics(log: list[ResultsLogEntry]) -> None:
    """Feed the finished log into the metrics registry, in log order:
    one ``repro_operation_seconds`` histogram per operation name (the
    telemetry counterpart of :meth:`DriverReport.per_operation_stats`)."""
    metrics = registry()
    for entry in log:
        metrics.histogram(
            "repro_operation_seconds", operation=entry.operation
        ).observe(entry.duration)


@dataclass
class DriverReport(RunReport):
    """Aggregated outcome of a benchmark run."""

    log: list[ResultsLogEntry]
    wall_seconds: float
    #: Worker-pool bookkeeping when the run executed reads in parallel.
    exec_stats: dict = field(default_factory=dict)

    @property
    def total_operations(self) -> int:
        return len(self.log)

    @property
    def invalidated_reads(self) -> int:
        """Complex reads whose parameters a delete invalidated."""
        return sum(1 for e in self.log if e.result_count < 0)

    @property
    def throughput(self) -> float:
        """Operations per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.log) / self.wall_seconds

    def on_time_fraction(self, tolerance: float = 1.0) -> float:
        """Fraction of operations starting within ``tolerance`` seconds
        of schedule (the §6.2 validity rule uses 1 second / 95 %)."""
        if not self.log:
            return 1.0
        on_time = sum(1 for e in self.log if e.start_delay < tolerance)
        return on_time / len(self.log)

    @property
    def is_valid_run(self) -> bool:
        return self.on_time_fraction() >= 0.95

    def per_operation_stats(self) -> dict[str, dict[str, float]]:
        """operation -> {count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}.

        Summaries come from :func:`repro.obs.metrics.summarize_seconds`
        — the same fixed-bucket histogram every telemetry consumer sees
        — so count/mean/max are exact and the quantiles carry the
        documented bucket resolution."""
        buckets: dict[str, list[float]] = {}
        for entry in self.log:
            buckets.setdefault(entry.operation, []).append(entry.duration)
        return {
            operation: summarize_seconds(durations)
            for operation, durations in sorted(buckets.items())
        }

    def summary_dict(self) -> dict:
        """The driver's results-summary document (spec §6.2 mentions a
        results summary next to the results log)."""
        return {
            "workload": "interactive",
            "mode": "driver",
            "total_operations": self.total_operations,
            "wall_seconds": self.wall_seconds,
            "throughput_ops_per_second": self.throughput,
            "on_time_fraction": self.on_time_fraction(),
            "valid_run": self.is_valid_run,
            "invalidated_reads": self.invalidated_reads,
            "per_operation": self.per_operation_stats(),
            "exec": self.exec_stats,
        }

    def write_results_log(self, path) -> None:
        """Write ``results_log.csv`` (spec §6.2, the driver's ``-rl``
        output): operation, scheduled/actual start, duration, rows."""
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle, delimiter="|")
            writer.writerow(
                ["operation", "scheduled_start_time", "actual_start_time",
                 "duration", "result_count"]
            )
            for entry in self.log:
                writer.writerow(
                    [entry.operation, f"{entry.scheduled_start:.6f}",
                     f"{entry.actual_start:.6f}", f"{entry.duration:.6f}",
                     entry.result_count]
                )

    # write_results_dir is inherited from RunReport: it writes
    # configuration.json, results_summary.json and (through the
    # write_results_log override above) results_log.csv.

    def format_table(self) -> str:
        lines = [
            f"{'operation':14s} {'count':>7s} {'mean ms':>9s} {'p95 ms':>9s} {'max ms':>9s}"
        ]
        for operation, row in self.per_operation_stats().items():
            lines.append(
                f"{operation:14s} {row['count']:7.0f} {row['mean_ms']:9.3f}"
                f" {row['p95_ms']:9.3f} {row['max_ms']:9.3f}"
            )
        lines.append(
            f"total {self.total_operations} ops in {self.wall_seconds:.2f}s"
            f" -> {self.throughput:.0f} ops/s;"
            f" on-time(1s) {100 * self.on_time_fraction():.1f}%"
        )
        return "\n".join(lines)


class Driver:
    """Executes a schedule, growing the graph and logging every query."""

    def __init__(
        self,
        graph: SocialGraph,
        time_compression_ratio: float = 0.0,
        seed: int = 1234,
    ):
        self.graph = graph
        self.tcr = time_compression_ratio
        self.rng = DeterministicRng(seed, "driver")

    def run(
        self,
        schedule: list[ScheduledOperation],
        warmup_reads: int = 0,
        workers: int | None = None,
        timeout: float | None = None,
        freeze_reads: bool = False,
        snapshot: SnapshotConfig | None = None,
    ) -> DriverReport:
        """Execute the schedule.

        ``warmup_reads`` complex reads are executed before the clock
        starts (spec §6.2's warmup phase): the first bindings of the
        schedule's read operations run unlogged, warming the process and
        any result caches, without mutating the graph.

        ``workers > 1`` executes runs of consecutive complex reads on a
        :mod:`repro.exec` worker pool (thread backend — the updates in
        between mutate the shared graph).  The results log keeps
        schedule order, short-read sequences still issue serially from
        each read's results, and the driver RNG is drawn in schedule
        order, so a parallel run's log is identical in content to a
        serial run's.  Parallel issue applies only to flat-out replays
        (``time_compression_ratio`` 0); paced runs schedule each
        operation individually and stay serial.  ``timeout`` bounds each
        parallel read (soft deadline; see :class:`repro.exec.WorkerPool`).

        ``freeze_reads`` (opt-in, parallel runs only) serves each flush
        of buffered complex reads from the
        :class:`~repro.graph.frozen.FreezeManager`'s merge-on-read
        view: one initial :class:`~repro.graph.frozen.FrozenGraph`
        freeze, then a delta-overlaid snapshot that absorbs the writes
        in between (compacting — refreezing — only when the overlay
        outgrows its threshold; see :mod:`repro.graph.delta`).  The
        Interactive workload interleaves writes at operation
        granularity, so freezing pays off only when the schedule has
        long read runs — hence opt-in, unlike the BI tests.  Results
        are identical either way.

        ``snapshot`` (a :class:`repro.exec.SnapshotConfig`) supplies the
        delta-compaction fraction for ``freeze_reads``; reads always go
        through :class:`~repro.exec.InlineSnapshot` here — the pool is
        thread-backed, so a mapped provider would buy nothing.
        """
        workers_n = resolve_workers(workers)
        if warmup_reads:
            warmed = 0
            for op in schedule:
                if op.kind != "complex":
                    continue
                ALL_COMPLEX[op.number][0](self.graph, *op.params)
                warmed += 1
                if warmed >= warmup_reads:
                    break
        with span("driver", kind="phase", operations=len(schedule),
                  tcr=self.tcr):
            if workers_n > 1 and self.tcr == 0 and schedule:
                report = self._run_parallel(
                    schedule, workers_n, timeout, freeze_reads, snapshot
                )
            else:
                report = self._run_paced(schedule)
        _record_log_metrics(report.log)
        return report

    def _run_paced(self, schedule: list[ScheduledOperation]) -> DriverReport:
        """Serial schedule replay (paced when ``tcr > 0``)."""
        log: list[ResultsLogEntry] = []
        run_start = time.perf_counter()
        if schedule:
            sim_origin = schedule[0].due

        for op in schedule:
            scheduled_wall = (
                run_start + (op.due - sim_origin) / 1000.0 * self.tcr
            )
            now = time.perf_counter()
            if self.tcr > 0 and now < scheduled_wall:
                time.sleep(scheduled_wall - now)
            if op.kind in ("update", "delete"):
                self._apply_write(op, scheduled_wall, log)
            else:
                name = f"IC {op.number}"
                runner = ALL_COMPLEX[op.number][0]
                actual = time.perf_counter()
                with span(name, kind="operation", query=op.number):
                    try:
                        result = runner(self.graph, *op.params)
                        rows = len(result)
                    except KeyError:
                        # A delete invalidated a curated parameter (e.g.
                        # the start person was removed); logged as -1 rows.
                        result = []
                        rows = -1
                finished = time.perf_counter()
                log.append(
                    ResultsLogEntry(
                        name, scheduled_wall, actual, finished - actual, rows
                    )
                )
                self._run_short_sequences(op.number, result, log)
        return DriverReport(log=log, wall_seconds=time.perf_counter() - run_start)

    def _apply_write(
        self,
        op: ScheduledOperation,
        scheduled_wall: float,
        log: list[ResultsLogEntry],
    ) -> None:
        """Apply one IU/DEL operation and log it."""
        prefix = "IU" if op.kind == "update" else "DEL"
        name = f"{prefix} {op.number}"
        operations = ALL_UPDATES if op.kind == "update" else ALL_DELETES
        runner = operations[op.number][0]
        actual = time.perf_counter()
        with span(name, kind="operation", write=op.number):
            try:
                runner(self.graph, op.params)
                rows = 1
            except (KeyError, ValueError):
                # An earlier delete removed an entity this write
                # references (e.g. a like on a deleted post); the
                # official driver treats this as a skipped write.
                rows = -1
        finished = time.perf_counter()
        log.append(
            ResultsLogEntry(
                name, scheduled_wall, actual, finished - actual, rows
            )
        )

    def _run_parallel(
        self,
        schedule: list[ScheduledOperation],
        workers: int,
        timeout: float | None,
        freeze_reads: bool = False,
        snapshot: SnapshotConfig | None = None,
    ) -> DriverReport:
        """Flat-out replay with parallel complex reads.

        Writes apply serially in schedule order; maximal runs of
        consecutive complex reads execute together on a thread pool over
        the live graph (reads are pure).  Log entries and short-read
        sequences are emitted in schedule order afterwards, which is
        what keeps the merged log deterministic.
        """
        log: list[ResultsLogEntry] = []
        exec_stats: dict = {"workers": workers, "backend": "thread",
                            "tasks": 0, "failures": 0, "retries": 0,
                            "timeouts": 0, "worker_crashes": 0}
        config = (snapshot or SnapshotConfig()).resolved()
        manager = (
            FreezeManager(
                self.graph, compact_fraction=config.compact_fraction
            )
            if freeze_reads
            else None
        )
        run_start = time.perf_counter()
        buffer: list[ScheduledOperation] = []

        def flush() -> None:
            if not buffer:
                return
            read_graph = self.graph if manager is None else manager.frozen()
            pool = WorkerPool(
                workers=min(workers, len(buffer)),
                backend="thread" if len(buffer) > 1 else "serial",
                timeout=timeout,
                snapshot=InlineSnapshot(read_graph),
            )
            merged = pool.run(
                Task(index, "ic", (op.number, tuple(op.params)))
                for index, op in enumerate(buffer)
            )
            part = merged.stats_dict()
            for key in ("tasks", "failures", "retries", "timeouts",
                        "worker_crashes"):
                exec_stats[key] += part[key]
            for op, outcome in zip(buffer, merged.outcomes):
                invalidated = not outcome.ok or outcome.value is None
                result = [] if invalidated else outcome.value
                rows = -1 if invalidated else len(result)
                log.append(
                    ResultsLogEntry(
                        f"IC {op.number}",
                        run_start,  # flat-out: everything is due at start
                        outcome.started,
                        outcome.duration,
                        rows,
                    )
                )
                self._run_short_sequences(op.number, result, log)
            buffer.clear()

        try:
            for op in schedule:
                if op.kind == "complex":
                    buffer.append(op)
                    continue
                flush()
                self._apply_write(op, run_start, log)
            flush()
        finally:
            if manager is not None:
                manager.detach()
        return DriverReport(
            log=log,
            wall_seconds=time.perf_counter() - run_start,
            exec_stats=exec_stats,
        )

    # -- short reads --------------------------------------------------------

    def _extract_ids(self, rows: list, fields: tuple[str, ...]) -> list[int]:
        ids = []
        for row in rows:
            row_fields = getattr(row, "_fields", ())
            for candidate in fields:
                if candidate in row_fields:
                    ids.append(getattr(row, candidate))
                    break
        return ids

    def _run_short_sequences(
        self, complex_number: int, rows: list, log: list[ResultsLogEntry]
    ) -> None:
        message_centric = complex_number in _MESSAGE_CENTRIC
        probability = 1.0  # the first sequence is always issued
        while self.rng.random() < probability:
            probability = (
                SHORT_SEQUENCE_PROBABILITY
                if probability == 1.0
                else probability * SHORT_SEQUENCE_PROBABILITY
            )
            if message_centric:
                ids = self._extract_ids(rows, _MESSAGE_FIELDS)
                ids = [i for i in ids if self.graph.has_message(i)]
                if not ids:
                    return
                message_id = self.rng.choice(ids)
                rows = self._run_short_set((4, 5, 6, 7), message_id, log)
            else:
                ids = self._extract_ids(rows, _PERSON_FIELDS)
                ids = [i for i in ids if i in self.graph.persons]
                if not ids:
                    return
                person_id = self.rng.choice(ids)
                rows = self._run_short_set((1, 2, 3), person_id, log)
            if not rows:
                return

    def _run_short_set(
        self, numbers: tuple[int, ...], entity_id: int, log: list[ResultsLogEntry]
    ) -> list:
        collected: list = []
        for number in numbers:
            runner = ALL_SHORT[number][0]
            started = time.perf_counter()
            try:
                result = runner(self.graph, entity_id)
            except KeyError:
                # The entity's context was deleted between the producing
                # read and this short read (e.g. its forum).
                result = []
            finished = time.perf_counter()
            log.append(
                ResultsLogEntry(
                    f"IS {number}", started, started, finished - started,
                    len(result),
                )
            )
            collected.extend(result)
        return collected
