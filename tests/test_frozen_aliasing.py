"""The snapshot-aliasing invariant, end to end (R6's dynamic twin).

``FrozenGraph`` adopts the live store's tables *by reference*; the
delta-overlay lifecycle only works if every store mutator edits those
tables in place — a mutator that rebinds a table (the old
filtered-list-rebind idiom) silently forks the snapshot from the live
store: the frozen view keeps serving the stale object while the store
moves on.

The tests here (1) pin the identity contract across a freeze +
``delete_post`` cycle, and (2) demonstrate the failure mode: an
*injected* rebinding delete visibly breaks the identity assertions
dynamically, while ``repro.lint`` flags the same code statically — the
acceptance pairing for the R6 analyzer.
"""

from __future__ import annotations

from repro.graph.delta import OverlaidGraph
from repro.graph.frozen import FreezeManager, freeze
from repro.lint import lint_source

from tests.builders import GraphBuilder, ts


def _loaded_builder() -> tuple[GraphBuilder, int, int, int]:
    b = GraphBuilder()
    author = b.person()
    reader = b.person(first_name="Bob")
    forum = b.forum(moderator=author)
    b.member(forum, author)
    b.member(forum, reader)
    doomed = b.post(author, forum, created=ts(3, 1))
    b.post(author, forum, created=ts(3, 2))
    b.like(reader, doomed)
    return b, forum, doomed, author


class TestFrozenAliasingRegression:
    def test_snapshot_shares_live_tables_by_identity(self):
        b, forum, doomed, _ = _loaded_builder()
        snapshot = freeze(b.graph)
        assert snapshot.posts is b.graph.posts
        assert snapshot.forums is b.graph.forums
        assert (
            snapshot._forum_posts_by_date is b.graph._forum_posts_by_date
        )

    def test_delete_post_keeps_overlay_view_on_live_tables(self):
        """Freeze, delete, re-read: the overlay view must still see the
        *same* live table objects — in-place removal, no rebinds."""
        b, forum, doomed, _ = _loaded_builder()
        manager = FreezeManager(b.graph)
        manager.frozen()  # build the snapshot before the write

        posts_table = b.graph.posts
        dated = b.graph._forum_posts_by_date[forum]
        b.graph.delete_post(doomed)

        view = manager.frozen()
        assert isinstance(view, OverlaidGraph)
        # identity: the delete mutated the shared objects in place.
        assert b.graph.posts is posts_table
        assert b.graph._forum_posts_by_date[forum] is dated
        assert view.posts is posts_table
        assert view._forum_posts_by_date[forum] is dated
        # and the removal is visible through the shared date list.
        assert all(mid != doomed for _, mid in dated)
        assert doomed not in view.posts

    def test_injected_rebind_breaks_aliasing(self):
        """The failure mode R6 exists to prevent, demonstrated live: a
        delete that *rebinds* the forum date list forks every existing
        snapshot from the live store."""
        b, forum, doomed, _ = _loaded_builder()
        snapshot = freeze(b.graph)

        # The pre-PR-6 idiom: filtered-list rebind instead of in-place
        # removal.
        b.graph._forum_posts_by_date[forum] = [
            entry
            for entry in b.graph._forum_posts_by_date[forum]
            if entry[1] != doomed
        ]
        rebound = b.graph._forum_posts_by_date[forum]

        # The *table* object holding per-forum lists is still shared...
        assert snapshot._forum_posts_by_date is b.graph._forum_posts_by_date
        # ...so here the fork is visible one level down only because the
        # shared dict was written through.  Rebinding the whole table
        # attribute severs even that:
        b.graph._forum_posts_by_date = dict(b.graph._forum_posts_by_date)
        b.graph._forum_posts_by_date[forum] = list(rebound)
        assert (
            snapshot._forum_posts_by_date
            is not b.graph._forum_posts_by_date
        )
        # The snapshot now serves stale state: the identity contract the
        # regression test above pins is exactly what broke.
        b.graph._forum_posts_by_date[forum].append((ts(4, 1), 999))
        assert (
            snapshot._forum_posts_by_date[forum]
            != b.graph._forum_posts_by_date[forum]
        )

    def test_injected_rebind_is_flagged_statically(self):
        """The same mutation, as source: R6 catches it without running
        anything."""
        src = (
            "class SocialGraph:\n"
            "    def __init__(self):\n"
            "        self._forum_posts_by_date = {}\n\n"
            "    def delete_post(self, post_id, forum_id):\n"
            "        self._forum_posts_by_date = {\n"
            "            fid: [e for e in dated if e[1] != post_id]\n"
            "            for fid, dated in\n"
            "            self._forum_posts_by_date.items()\n"
            "        }\n"
        )
        diags = lint_source("src/repro/graph/frag.py", src)
        assert [(d.rule, d.slug) for d in diags] == [("R6", "table-rebind")]
