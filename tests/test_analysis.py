"""Tests for choke-point coverage (Table A.1) and reporting."""

import pytest

from repro.analysis.chokepoints import (
    APPENDIX_COVERAGE,
    CHOKE_POINTS,
    coverage_matrix,
    format_coverage_table,
    queries_covering,
)
from repro.analysis.report import (
    BenchmarkChecklist,
    SystemDetails,
    full_disclosure_report,
)
from repro.driver.runner import DriverReport, ResultsLogEntry


class TestChokePoints:
    def test_all_29_choke_points_registered(self):
        assert len(CHOKE_POINTS) == 29
        assert len({cp.identifier for cp in CHOKE_POINTS}) == 29

    def test_categories_valid(self):
        assert {cp.category for cp in CHOKE_POINTS} == {
            "QOPT", "QEXE", "STORAGE", "LANG",
        }

    def test_matrix_matches_appendix_lists(self):
        """The query metadata and the appendix transcription agree —
        Table A.1 is reproduced exactly."""
        matrix = coverage_matrix()
        assert set(matrix) == set(APPENDIX_COVERAGE)
        for cp, queries in APPENDIX_COVERAGE.items():
            assert matrix[cp] == queries, cp

    def test_every_bi_query_covers_a_choke_point(self):
        matrix = coverage_matrix()
        covered = set().union(*matrix.values())
        for number in range(1, 26):
            assert f"BI {number}" in covered

    def test_every_ic_query_covers_a_choke_point(self):
        matrix = coverage_matrix()
        covered = set().union(*matrix.values())
        for number in range(1, 15):
            assert f"IC {number}" in covered

    def test_cp_4_4_is_uncovered(self):
        # The spec lists no queries for CP-4.4 (string matching).
        assert queries_covering("4.4") == frozenset()

    def test_format_table_shape(self):
        text = format_coverage_table()
        lines = text.splitlines()
        assert len(lines) == 2 + len(CHOKE_POINTS)
        assert "1.1" in lines[2]


class TestChecklist:
    def test_format_mentions_every_item(self):
        text = BenchmarkChecklist().format()
        for fragment in (
            "Cross-validated", "ACID", "fault-tolerance", "Warmup",
            "Execution rounds", "summarized", "Loading", "experts",
        ):
            assert fragment in text


class TestFullDisclosureReport:
    def test_contains_all_sections(self):
        report = DriverReport(
            log=[ResultsLogEntry("IC 1", 0.0, 0.0, 0.001, 5)],
            wall_seconds=0.5,
        )
        text = full_disclosure_report("SF 0.01 (300 persons)", 1.25, report)
        for fragment in (
            "Full Disclosure Report", "System under test",
            "SF 0.01 (300 persons)", "Load time: 1.25 s", "IC 1",
            "Valid run", "Appendix C checklist",
        ):
            assert fragment in text

    def test_system_details_format(self):
        text = SystemDetails().format()
        assert "DBMS" in text and "Python" in text
