"""Morsel-driven parallelism: range decomposition, the morsel scan
operator, the BI morsel plans, and the pool-dispatched end-to-end path.

The invariant everywhere is *determinism*: a morselized run returns
row-identical results and (summed across morsels plus the parent-side
merge) identical operator counters to the serial scan, regardless of
morsel size or worker scheduling.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    counters,
    morsel_ranges,
    reset_counters,
    scan_message_morsel,
    scan_messages,
)
from repro.exec import SnapshotConfig, Task, WorkerPool, provide_snapshot
from repro.graph.frozen import FreezeManager, FrozenGraph, freeze
from repro.graph.store import SocialGraph
from repro.obs.metrics import registry
from repro.params.curation import ParameterGenerator
from repro.queries.bi import ALL_QUERIES
from repro.queries.bi.morsels import MORSEL_PLANS


@pytest.fixture(scope="module")
def frozen(tiny_graph) -> FrozenGraph:
    return freeze(tiny_graph)


@pytest.fixture(scope="module")
def params(tiny_graph, tiny_config) -> ParameterGenerator:
    return ParameterGenerator(tiny_graph, tiny_config)


def _collect(graph, ranges, **kwargs):
    rows = []
    for index, (kind, lo, hi) in enumerate(ranges):
        rows.extend(
            m.id
            for m in scan_message_morsel(
                graph, kind, lo, hi, lead=index == 0, **kwargs
            )
        )
    return rows


class TestMorselRanges:
    def test_covers_scan_exactly(self, frozen):
        ranges = morsel_ranges(frozen, morsel_size=37)
        assert all(hi - lo <= 37 for _, lo, hi in ranges)
        ids = _collect(frozen, ranges)
        assert sorted(ids) == sorted(m.id for m in scan_messages(frozen))

    def test_windowed_ranges_match_serial(self, frozen):
        dates = sorted(m.creation_date for m in scan_messages(frozen))
        mid = dates[len(dates) // 2]
        for window in [(None, mid), (mid, None), (dates[5], dates[-5])]:
            ranges = morsel_ranges(frozen, window=window, morsel_size=29)
            ids = _collect(frozen, ranges, window=window)
            expected = [m.id for m in scan_messages(frozen, window=window)]
            assert sorted(ids) == sorted(expected)

    def test_live_store_gets_fallback_morsel(self, tiny_graph):
        assert morsel_ranges(tiny_graph) == [("*", 0, -1)]

    def test_overlaid_view_gets_fallback_morsel(self, tiny_net):
        from repro.datagen.update_streams import build_update_streams
        from repro.queries.interactive.updates import ALL_UPDATES

        live = SocialGraph.from_data(tiny_net, until=tiny_net.cutoff)
        manager = FreezeManager(live)
        try:
            manager.frozen()
            for op in build_update_streams(tiny_net)[:5]:
                try:
                    ALL_UPDATES[op.operation_id][0](live, op.params)
                except (KeyError, ValueError):
                    pass
            overlaid = manager.frozen()
            assert overlaid.delta_overlay is not None
            assert morsel_ranges(overlaid) == [("*", 0, -1)]
        finally:
            manager.detach()

    def test_empty_window_degenerate_morsel(self, frozen):
        dates = sorted(m.creation_date for m in scan_messages(frozen))
        window = (dates[-1] + 1, dates[-1] + 2)
        ranges = morsel_ranges(frozen, window=window, morsel_size=10)
        assert len(ranges) == 1
        kind, lo, hi = ranges[0]
        assert lo == hi
        assert _collect(frozen, ranges, window=window) == []

    def test_invalid_morsel_size_rejected(self, frozen):
        with pytest.raises(ValueError):
            morsel_ranges(frozen, morsel_size=0)


class TestScanMessageMorsel:
    def test_fallback_morsel_delegates_to_scan(self, tiny_graph):
        ids = [m.id for m in scan_message_morsel(tiny_graph, "*", 0, -1)]
        assert sorted(ids) == sorted(m.id for m in scan_messages(tiny_graph))

    def test_slab_morsel_requires_frozen(self, tiny_graph):
        with pytest.raises(TypeError):
            list(scan_message_morsel(tiny_graph, "post", 0, 1))

    def test_language_pushdown_matches_serial(self, frozen):
        language = frozen._post_language.dictionary[1]
        expected = [m.id for m in scan_messages(frozen, language=[language])]
        ranges = morsel_ranges(frozen, morsel_size=31)
        ids = _collect(frozen, ranges, language=[language])
        assert sorted(ids) == sorted(expected)

    def test_counters_sum_to_serial(self, frozen):
        dates = sorted(m.creation_date for m in scan_messages(frozen))
        window = (dates[len(dates) // 3], None)
        reset_counters()
        list(scan_messages(frozen, window=window))
        serial = (counters().index_scans, counters().rows_scanned)
        reset_counters()
        for index, (kind, lo, hi) in enumerate(
            morsel_ranges(frozen, window=window, morsel_size=13)
        ):
            list(
                scan_message_morsel(
                    frozen, kind, lo, hi, lead=index == 0
                )
            )
        morselized = (counters().index_scans, counters().rows_scanned)
        reset_counters()
        assert morselized == serial


class TestMorselPlans:
    @pytest.mark.parametrize("number", sorted(MORSEL_PLANS))
    @pytest.mark.parametrize("morsel_size", [17, 500])
    def test_partials_merge_to_serial_rows(self, frozen, params, number,
                                           morsel_size):
        plan = MORSEL_PLANS[number]
        query = ALL_QUERIES[number][0]
        for binding in params.bi(number, count=2):
            binding = tuple(binding)
            ranges = plan.ranges(frozen, binding, morsel_size)
            partials = [
                plan.partial(frozen, kind, lo, hi, index == 0, binding)
                for index, (kind, lo, hi) in enumerate(ranges)
            ]
            assert (
                plan.merge(frozen, partials, binding)
                == query(frozen, *binding)
            )

    def test_bi3_counter_parity(self, frozen, params):
        """BI 3's morsel decomposition replays the serial query's exact
        operator-counter totals — scan, hash-aggregate and top-k heap —
        not just its rows (ROADMAP open item: counter-parity for the
        window/partial/merge plans)."""
        from repro.queries.bi.q03 import bi3

        plan = MORSEL_PLANS[3]
        binding = tuple(params.bi(3, count=1)[0])

        reset_counters()
        serial_rows = bi3(frozen, *binding)
        serial = counters().as_dict()

        reset_counters()
        ranges = plan.ranges(frozen, binding, 23)
        partials = [
            plan.partial(frozen, kind, lo, hi, index == 0, binding)
            for index, (kind, lo, hi) in enumerate(ranges)
        ]
        morsel_rows = plan.merge(frozen, partials, binding)
        morselized = counters().as_dict()
        reset_counters()

        assert morsel_rows == serial_rows
        assert morselized == serial

    @pytest.mark.parametrize("number", sorted(MORSEL_PLANS))
    def test_fallback_morsel_still_correct(self, tiny_graph, params, number):
        plan = MORSEL_PLANS[number]
        query = ALL_QUERIES[number][0]
        binding = tuple(params.bi(number, count=1)[0])
        ranges = plan.ranges(tiny_graph, binding, 65536)
        assert ranges == [("*", 0, -1)]
        partials = [
            plan.partial(tiny_graph, kind, lo, hi, index == 0, binding)
            for index, (kind, lo, hi) in enumerate(ranges)
        ]
        assert (
            plan.merge(tiny_graph, partials, binding)
            == query(tiny_graph, *binding)
        )


class TestPoolDispatch:
    def test_run_morselized_on_process_pool(self, frozen, params):
        from repro.driver.bi_driver import run_morselized

        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider="shared_memory")
        )
        try:
            pool = WorkerPool(workers=2, snapshot=handle)
            for number in sorted(MORSEL_PLANS):
                binding = tuple(params.bi(number, count=1)[0])
                rows = run_morselized(
                    frozen, number, binding, pool, morsel_size=200
                )
                assert rows == ALL_QUERIES[number][0](frozen, *binding)
        finally:
            handle.close()

    def test_morsel_task_counter_increments(self, frozen, params):
        binding = tuple(params.bi(1, count=1)[0])
        plan = MORSEL_PLANS[1]
        ranges = plan.ranges(frozen, binding, 400)
        counter = registry().counter("repro_morsel_tasks_total", query="bi1")
        before = counter.value
        pool = WorkerPool(workers=1, snapshot=provide_snapshot(frozen))
        pool.run(
            Task(index, "bi_morsel", (1, kind, lo, hi, index == 0, binding))
            for index, (kind, lo, hi) in enumerate(ranges)
        )
        assert counter.value == before + len(ranges)

    def test_power_test_morselized_matches_serial(self, tiny_graph, params):
        from repro.driver.bi_driver import power_test

        serial = power_test(tiny_graph, params, 0.1, workers=1)
        morselized = power_test(
            tiny_graph, params, 0.1, workers=2,
            snapshot=SnapshotConfig(provider="mmap_file", morsel_size=300),
        )
        assert set(morselized.runtimes) == set(serial.runtimes)
        assert morselized.operator_stats == serial.operator_stats
