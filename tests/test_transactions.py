"""Tests for atomic update execution and serializability (spec §6.4)."""

import pytest

from repro.datagen.update_streams import UpdateOperation, build_update_streams
from repro.driver.transactions import AtomicExecutor, verify_serializable_history
from repro.graph.store import SocialGraph
from repro.queries.interactive.updates import AddLikeParams, AddPersonParams

from tests.builders import GraphBuilder, PARIS, TAG_ROCK, ts


def _add_person_op(person_id, city=PARIS, tags=(), study=(), work=()):
    return UpdateOperation(
        timestamp=1,
        dependant_timestamp=0,
        operation_id=1,
        params=AddPersonParams(
            person_id=person_id, first_name="T", last_name="X",
            gender="male", birthday=1000, creation_date=ts(5, 1),
            location_ip="ip", browser_used="b", city_id=city,
            tag_ids=tuple(tags), study_at=tuple(study), work_at=tuple(work),
        ),
    )


class TestAtomicAddPerson:
    def test_valid_insert_commits(self):
        b = GraphBuilder()
        executor = AtomicExecutor(b.graph)
        assert executor.apply(
            _add_person_op(77, tags=(TAG_ROCK,), study=((0, 2010),))
        )
        assert 77 in b.graph.persons
        assert executor.history

    def test_invalid_university_rolls_back_everything(self):
        b = GraphBuilder()
        executor = AtomicExecutor(b.graph)
        ok = executor.apply(
            _add_person_op(77, tags=(TAG_ROCK,), study=((999, 2010),))
        )
        assert not ok
        # No partial state: not the person, not the interest edge.
        assert 77 not in b.graph.persons
        assert b.graph.persons_interested_in(TAG_ROCK) == []
        assert b.graph.study_at == []
        assert executor.history == []

    def test_invalid_city_rejected(self):
        b = GraphBuilder()
        executor = AtomicExecutor(b.graph)
        assert not executor.apply(_add_person_op(77, city=9999))
        assert 77 not in b.graph.persons

    def test_invalid_company_rolls_back(self):
        b = GraphBuilder()
        executor = AtomicExecutor(b.graph)
        assert not executor.apply(_add_person_op(77, work=((999, 2010),)))
        assert 77 not in b.graph.persons
        assert b.graph.work_at == []

    def test_duplicate_person_rejected_cleanly(self):
        b = GraphBuilder()
        existing = b.person()
        executor = AtomicExecutor(b.graph)
        assert not executor.apply(_add_person_op(existing))
        assert len(b.graph.persons) == 1


class TestAtomicEdgeInserts:
    def test_like_on_missing_post_rejected(self):
        b = GraphBuilder()
        person = b.person()
        executor = AtomicExecutor(b.graph)
        op = UpdateOperation(1, 0, 2, AddLikeParams(person, 999, ts(5, 1)))
        assert not executor.apply(op)
        assert b.graph.likes_edges == []
        assert executor.history == []


class TestSerializability:
    def test_stream_history_is_serializable(self, small_net):
        graph = SocialGraph.from_data(small_net, until=small_net.cutoff)
        executor = AtomicExecutor(graph)
        for op in build_update_streams(small_net)[:400]:
            executor.apply(op)
        fresh = SocialGraph.from_data(small_net, until=small_net.cutoff)
        assert verify_serializable_history(fresh, executor.history, graph)

    def test_checker_detects_divergence(self, small_net):
        graph = SocialGraph.from_data(small_net, until=small_net.cutoff)
        executor = AtomicExecutor(graph)
        for op in build_update_streams(small_net)[:100]:
            executor.apply(op)
        # Tamper with the final state: drop a person silently.
        graph.delete_person(next(iter(graph.persons)))
        fresh = SocialGraph.from_data(small_net, until=small_net.cutoff)
        assert not verify_serializable_history(fresh, executor.history, graph)

    def test_rejected_writes_not_in_history(self, small_net):
        graph = SocialGraph.from_data(small_net, until=small_net.cutoff)
        executor = AtomicExecutor(graph)
        bogus = UpdateOperation(1, 0, 2, AddLikeParams(10 ** 9, 10 ** 9, 1))
        assert not executor.apply(bogus)
        assert bogus not in executor.history
