"""Contract tests: every read query's output respects its declared sort
order and row limit on the *generated* graph (not hand-built cases).

The sort keys here are re-derived from the spec's sort clauses,
independently of the TopK keys inside the implementations — a
double-entry check on ordering bugs.
"""

import pytest

from repro.queries.bi import ALL_QUERIES as ALL_BI
from repro.queries.interactive.complex import ALL_COMPLEX

# query number -> ascending sort key over a result row (spec sort clause).
BI_SORT_KEYS = {
    1: lambda r: (-r.year, r.is_comment, r.length_category),
    2: lambda r: (-r.message_count, r.tag_name),
    3: lambda r: (-r.diff, r.tag_name),
    4: lambda r: (-r.post_count, r.forum_id),
    5: lambda r: (-r.post_count, r.person_id),
    6: lambda r: (-r.score, r.person_id),
    7: lambda r: (-r.authority_score, r.person_id),
    8: lambda r: (-r.comment_count, r.related_tag_name),
    9: lambda r: (-r.count1, -r.count2, r.forum_id),
    10: lambda r: (-(r.score + r.friends_score), r.person_id),
    11: lambda r: (-r.like_count, r.person_id, r.tag_name),
    12: lambda r: (-r.like_count, r.message_id),
    13: lambda r: (-r.year, r.month),
    14: lambda r: (-r.message_count, r.person_id),
    15: lambda r: (r.person_id,),
    16: lambda r: (-r.message_count, r.tag_name, r.person_id),
    17: lambda r: (),
    18: lambda r: (-r.person_count, -r.message_count),
    19: lambda r: (-r.interaction_count, r.person_id),
    20: lambda r: (-r.message_count, r.tag_class_name),
    21: lambda r: (-r.zombie_score, r.zombie_id),
    22: lambda r: (-r.score, r.person1_id, r.person2_id),
    23: lambda r: (-r.message_count, r.destination_name, r.month),
    24: lambda r: (-r.year, r.month, r.continent_name),
    25: lambda r: (-r.path_weight, r.person_ids_in_path),
}

IC_SORT_KEYS = {
    1: lambda r: (r.distance_from_person, r.friend_last_name, r.friend_id),
    2: lambda r: (-r.message_creation_date, r.message_id),
    3: lambda r: (-r.x_count, r.person_id),
    4: lambda r: (-r.post_count, r.tag_name),
    5: lambda r: (-r.post_count, r.forum_id),
    6: lambda r: (-r.post_count, r.tag_name),
    7: lambda r: (-r.like_creation_date, r.person_id),
    8: lambda r: (-r.comment_creation_date, r.comment_id),
    9: lambda r: (-r.message_creation_date, r.message_id),
    10: lambda r: (-r.common_interest_score, r.person_id),
    11: lambda r: (r.work_from, r.person_id),
    12: lambda r: (-r.reply_count, r.person_id),
    13: lambda r: (),
    14: lambda r: (-r.path_weight,),
}


def _assert_sorted(rows, key):
    keys = [key(row) for row in rows]
    assert keys == sorted(keys), "rows violate the declared sort order"


@pytest.mark.parametrize("number", sorted(ALL_BI))
def test_bi_sort_and_limit(number, small_graph, small_params):
    query, info = ALL_BI[number]
    for params in small_params.bi(number, count=2):
        rows = query(small_graph, *params)
        if info.limit is not None:
            assert len(rows) <= info.limit
        _assert_sorted(rows, BI_SORT_KEYS[number])


@pytest.mark.parametrize("number", sorted(ALL_COMPLEX))
def test_ic_sort_and_limit(number, small_graph, small_params):
    query, info = ALL_COMPLEX[number]
    for params in small_params.interactive(number, count=2):
        rows = query(small_graph, *params)
        if info.limit is not None:
            assert len(rows) <= info.limit
        _assert_sorted(rows, IC_SORT_KEYS[number])


@pytest.mark.parametrize("number", sorted(ALL_BI))
def test_bi_rows_have_no_duplicates(number, small_graph, small_params):
    query, _ = ALL_BI[number]
    params = small_params.bi(number, count=1)[0]
    rows = query(small_graph, *params)
    assert len(set(map(tuple, rows))) == len(rows)


@pytest.mark.parametrize("number", sorted(ALL_COMPLEX))
def test_ic_deterministic(number, small_graph, small_params):
    """Read queries are pure: re-running yields identical rows."""
    query, _ = ALL_COMPLEX[number]
    params = small_params.interactive(number, count=1)[0]
    assert query(small_graph, *params) == query(small_graph, *params)
