"""Tests for the property dictionaries (spec Table 2.11 resources)."""

import pytest

from repro.datagen import dictionaries as d


@pytest.fixture(scope="module")
def dicts():
    return d.build_dictionaries()


class TestResourceCompleteness:
    """Every resource file of Table 2.11 must have a populated stand-in."""

    def test_browsers_resource(self):
        assert len(d.BROWSERS) >= 3
        assert abs(sum(w for _, w in d.BROWSERS) - 1.0) < 1e-9

    def test_countries_have_population_weights(self, dicts):
        assert len(dicts.country_names) >= 20
        assert all(w > 0 for w in dicts.country_weights)

    def test_cities_by_country(self, dicts):
        for country_idx in range(dicts.num_countries):
            assert dicts.cities_of_country[country_idx]

    def test_companies_by_country(self, dicts):
        for country_idx in range(dicts.num_countries):
            assert dicts.companies_of_country[country_idx]

    def test_universities_by_city(self, dicts):
        # One university per city in the synthetic world.
        assert len(dicts.university_names) == len(dicts.city_names)

    def test_email_providers(self):
        assert len(d.EMAIL_PROVIDERS) >= 5

    def test_ip_zones_per_country(self, dicts):
        assert len(set(dicts.country_ip_prefix)) == dicts.num_countries

    def test_languages_by_country(self, dicts):
        assert all(langs for langs in dicts.country_languages)

    def test_popular_places_per_country(self, dicts):
        for name in dicts.country_names:
            assert d.POPULAR_PLACES[name]

    def test_tag_text_per_tag(self, dicts):
        assert len(dicts.tag_text) == len(dicts.tag_names)
        assert all(text for text in dicts.tag_text)

    def test_tag_matrix_per_tag(self, dicts):
        assert len(dicts.tag_related) == len(dicts.tag_names)


class TestPlaces:
    def test_city_country_mapping_consistent(self, dicts):
        for country_idx, cities in enumerate(dicts.cities_of_country):
            for city in cities:
                assert dicts.city_country[city] == country_idx

    def test_continents_cover_countries(self, dicts):
        assert set(dicts.country_continent) <= set(
            range(len(dicts.continent_names))
        )

    def test_city_names_unique(self, dicts):
        assert len(set(dicts.city_names)) == len(dicts.city_names)


class TestTagHierarchy:
    def test_single_root(self, dicts):
        roots = [i for i, p in enumerate(dicts.tag_class_parent) if p < 0]
        assert len(roots) == 1
        assert dicts.tag_class_names[roots[0]] == "Thing"

    def test_hierarchy_is_acyclic(self, dicts):
        for start in range(len(dicts.tag_class_names)):
            seen = set()
            node = start
            while node >= 0:
                assert node not in seen
                seen.add(node)
                node = dicts.tag_class_parent[node]

    def test_every_tag_has_a_class(self, dicts):
        assert all(
            0 <= cls < len(dicts.tag_class_names)
            for cls in dicts.tag_class_of_tag
        )

    def test_descendant_closure_includes_self(self, dicts):
        idx = dicts.tag_class_names.index("Work")
        closure = dicts.descendant_classes(idx)
        assert idx in closure
        for child_name in ("Album", "Film", "Book"):
            assert dicts.tag_class_names.index(child_name) in closure

    def test_descendants_of_root_is_everything(self, dicts):
        root = dicts.tag_class_names.index("Thing")
        assert dicts.descendant_classes(root) == set(
            range(len(dicts.tag_class_names))
        )

    def test_tag_matrix_links_within_class(self, dicts):
        for tag, related in enumerate(dicts.tag_related):
            for other in related:
                assert dicts.tag_class_of_tag[other] == dicts.tag_class_of_tag[tag]
                assert other != tag


class TestRankingFunctions:
    """The (D, R, F) model: R must be a country-parameterised bijection."""

    def test_tags_by_country_is_bijection(self, dicts):
        n_tags = len(dicts.tag_names)
        for ranking in dicts.tags_by_country:
            assert sorted(ranking) == list(range(n_tags))

    def test_tag_rankings_differ_across_countries(self, dicts):
        assert dicts.tags_by_country[0] != dicts.tags_by_country[1]

    def test_first_names_are_rotations(self):
        pool_a = d.first_names_for(0, "India", "female")
        pool_b = d.first_names_for(1, "Pakistan", "female")
        assert sorted(pool_a) == sorted(pool_b)  # same dictionary D
        assert pool_a != pool_b  # different ranking R

    def test_surnames_gender_independent_dictionary(self):
        assert set(d.surnames_for(0, "France")) == set(
            d.surnames_for(5, "France")
        ) or d.surnames_for(0, "France")

    def test_name_regions_cover_all_countries(self, dicts):
        for idx, name in enumerate(dicts.country_names):
            assert d.first_names_for(idx, name, "male")
            assert d.surnames_for(idx, name)

    def test_build_is_deterministic(self, dicts):
        again = d.build_dictionaries()
        assert again.tags_by_country == dicts.tags_by_country
        assert again.city_names == dicts.city_names
