"""Tests for the process-parallel executor (``repro.exec``).

Covers the pool contract the benchmark relies on: all three backends
return identical merged results, the work queue is bounded, failures
follow retry-once-then-record, deadlines and worker crashes are
survived, and per-task engine counters merge deterministically.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine.stats import merge_counters
from repro.exec import (
    ENV_WORKERS,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    InlineSnapshot,
    Task,
    WorkerPool,
    activate,
    active,
    default_workers,
    register_task_kind,
    resolve_workers,
    run_task,
)

# -- module-level task payloads (picklable for the process backend) --------


def _double(x):
    return 2 * x


def _fail_always():
    raise ValueError("nope")


def _fail_until_marker(marker):
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise ValueError("first attempt fails")
    return "recovered"


def _sleep_return(seconds, value):
    time.sleep(seconds)
    return value


def _crash_until_marker(marker):
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(13)
    return "recovered"


def _crash_always():
    os._exit(13)


def _context_tag(graph, context):
    return context["tag"]


# Registered at import: fork-based workers inherit the registry.
register_task_kind("context_tag", _context_tag)


def _call_tasks(specs):
    return [
        Task(index, "call", (fn, tuple(args)))
        for index, (fn, *args) in enumerate(specs)
    ]


# -- worker-count resolution ------------------------------------------------


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert default_workers() == 1
        assert resolve_workers(None) == 1

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert resolve_workers(None) == 3

    def test_env_var_must_be_integer(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(ValueError, match=ENV_WORKERS):
            default_workers()

    def test_explicit_count_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert resolve_workers(2) == 2

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            WorkerPool(workers=2, backend="rayon")
        with pytest.raises(ValueError):
            WorkerPool(workers=2, timeout=0)
        with pytest.raises(ValueError):
            WorkerPool(workers=2, queue_depth=0)


# -- snapshot activation ----------------------------------------------------


class TestSnapshot:
    def test_activate_returns_previous(self):
        first = InlineSnapshot(context={"tag": "first"})
        second = InlineSnapshot(context={"tag": "second"})
        base = activate(first)
        try:
            assert active() is first
            assert activate(second) is first
            assert active() is second
        finally:
            activate(base)

    def test_run_task_reads_active_snapshot(self):
        base = activate(InlineSnapshot(context={"tag": "inline"}))
        try:
            assert run_task(Task(0, "context_tag")) == "inline"
        finally:
            activate(base)

    def test_unknown_kind_raises(self):
        with pytest.raises(LookupError, match="no-such-kind"):
            run_task(Task(0, "no-such-kind"))


# -- backend equivalence ----------------------------------------------------


class TestBackends:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 3), ("process", 3),
    ])
    def test_values_merge_in_submission_order(self, backend, workers):
        pool = WorkerPool(workers=workers, backend=backend)
        result = pool.run(
            _call_tasks([(_double, i) for i in range(17)])
        )
        assert result.values() == [2 * i for i in range(17)]
        assert [o.index for o in result.outcomes] == list(range(17))
        assert result.failures == 0
        assert result.backend == backend

    def test_workers_one_forces_serial(self):
        assert WorkerPool(workers=1, backend="process").backend == "serial"
        assert WorkerPool(workers=1).backend == "serial"
        assert WorkerPool(workers=4).backend == "process"

    def test_generator_input_with_small_queue_depth(self):
        pool = WorkerPool(workers=2, backend="process", queue_depth=1)
        result = pool.run(
            Task(i, "call", (_double, (i,))) for i in range(12)
        )
        assert result.values() == [2 * i for i in range(12)]

    def test_snapshot_context_reaches_process_workers(self):
        pool = WorkerPool(
            workers=2,
            backend="process",
            snapshot=InlineSnapshot(context={"tag": "shipped"}),
        )
        result = pool.run([Task(0, "context_tag"), Task(1, "context_tag")])
        assert result.values() == ["shipped", "shipped"]

    def test_bounded_queue_limits_lookahead(self):
        done: list[int] = []
        pulled: list[int] = []

        def work(i):
            time.sleep(0.002)
            done.append(i)
            return i

        def generate():
            for i in range(20):
                pulled.append(i)
                # pulled-but-unfinished tasks never exceed the bound:
                # queue_depth waiting + workers executing + one in-flight
                # put by the feeding thread.
                assert len(pulled) - len(done) <= 2 + 2 + 1
                yield Task(i, "call", (work, (i,)))

        pool = WorkerPool(workers=2, backend="thread", queue_depth=2)
        result = pool.run(generate())
        assert result.values() == list(range(20))

    def test_stats_dict_surface(self):
        result = WorkerPool(workers=1).run(_call_tasks([(_double, 3)]))
        stats = result.stats_dict()
        assert stats == {
            "workers": 1,
            "backend": "serial",
            "tasks": 1,
            "failures": 0,
            "retries": 0,
            "timeouts": 0,
            "worker_crashes": 0,
        }


# -- retry-once-then-record -------------------------------------------------


class TestRetry:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 2), ("process", 2),
    ])
    def test_persistent_error_recorded_after_one_retry(
        self, backend, workers
    ):
        pool = WorkerPool(workers=workers, backend=backend)
        result = pool.run(_call_tasks([(_fail_always,), (_double, 4)]))
        failed, succeeded = result.outcomes
        assert failed.status == STATUS_ERROR
        assert failed.attempts == 2
        assert "ValueError: nope" in failed.error
        assert succeeded.status == STATUS_OK and succeeded.value == 8
        assert result.retries == 1
        assert result.failures == 1

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("process", 2),
    ])
    def test_transient_error_recovers_on_retry(
        self, backend, workers, tmp_path
    ):
        marker = str(tmp_path / f"fail-once-{backend}")
        pool = WorkerPool(workers=workers, backend=backend)
        result = pool.run(_call_tasks([(_fail_until_marker, marker)]))
        (outcome,) = result.outcomes
        assert outcome.status == STATUS_OK
        assert outcome.value == "recovered"
        assert outcome.attempts == 2
        assert result.retries == 1
        assert result.failures == 0


# -- deadlines --------------------------------------------------------------


class TestDeadlines:
    def test_process_hard_timeout_kills_worker(self):
        pool = WorkerPool(workers=2, backend="process", timeout=0.25)
        started = time.perf_counter()
        result = pool.run(
            _call_tasks([(_sleep_return, 30.0, "late"), (_double, 5)])
        )
        assert time.perf_counter() - started < 10.0  # not 30s: killed
        late, on_time = result.outcomes
        assert late.status == STATUS_TIMEOUT
        assert late.attempts == 2
        assert late.value is None
        assert on_time.value == 10
        assert result.timeouts == 2  # both attempts timed out

    def test_soft_timeout_reclassifies_inline_attempt(self):
        pool = WorkerPool(workers=1, timeout=0.01)
        result = pool.run(
            _call_tasks([(_sleep_return, 0.05, "slow"), (_double, 2)])
        )
        slow, fast = result.outcomes
        assert slow.status == STATUS_TIMEOUT
        assert slow.value is None and slow.counters == {}
        assert fast.status == STATUS_OK and fast.value == 4
        assert result.timeouts == 2


# -- crash recovery ---------------------------------------------------------


class TestCrashRecovery:
    def test_crash_once_recovers(self, tmp_path):
        marker = str(tmp_path / "crash-once")
        pool = WorkerPool(workers=2, backend="process")
        result = pool.run(
            _call_tasks([(_crash_until_marker, marker), (_double, 6)])
        )
        crashed, other = result.outcomes
        assert crashed.status == STATUS_OK
        assert crashed.value == "recovered"
        assert crashed.attempts == 2
        assert other.value == 12
        assert result.crashes >= 1
        assert result.failures == 0

    def test_persistent_crash_recorded(self):
        pool = WorkerPool(workers=2, backend="process")
        result = pool.run(_call_tasks([(_crash_always,), (_double, 7)]))
        crashed, other = result.outcomes
        assert crashed.status == STATUS_CRASHED
        assert crashed.attempts == 2
        assert crashed.error == "worker process died"
        assert other.value == 14
        assert result.crashes == 2
        assert result.failures == 1


# -- engine-counter aggregation ---------------------------------------------


class TestCounters:
    def test_merge_counters_is_order_invariant_and_sorted(self):
        parts = [{"b": 2, "a": 1}, {"a": 3, "c": 5}]
        merged = merge_counters(parts)
        assert merged == {"a": 4, "b": 2, "c": 5}
        assert list(merged) == ["a", "b", "c"]
        assert merge_counters(reversed(parts)) == merged

    def test_serial_and_process_counters_identical(
        self, small_graph, small_params
    ):
        bindings = {n: small_params.bi(n, count=1) for n in (1, 3, 9, 12)}
        tasks = [
            Task(index, "bi", (number, tuple(bindings[number][0])))
            for index, number in enumerate(sorted(bindings))
        ]
        snapshot = InlineSnapshot(small_graph)
        serial = WorkerPool(workers=1, snapshot=snapshot).run(tasks)
        parallel = WorkerPool(
            workers=3, backend="process", snapshot=snapshot
        ).run(tasks)
        assert serial.values() == parallel.values()
        assert [o.counters for o in serial.outcomes] == [
            o.counters for o in parallel.outcomes
        ]
        assert serial.counters == parallel.counters
