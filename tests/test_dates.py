"""Unit tests for repro.util.dates (spec Table 2.1 formats)."""

import pytest
from hypothesis import given, strategies as st

from repro.util import dates


class TestConstruction:
    def test_epoch_is_day_zero(self):
        assert dates.make_date(1970, 1, 1) == 0

    def test_make_date_ordering(self):
        assert dates.make_date(2010, 1, 1) < dates.make_date(2010, 1, 2)
        assert dates.make_date(2010, 12, 31) < dates.make_date(2011, 1, 1)

    def test_make_datetime_components(self):
        ts = dates.make_datetime(2010, 1, 1, 1, 2, 3, 4)
        assert ts == (
            dates.make_date(2010, 1, 1) * dates.MILLIS_PER_DAY
            + 1 * dates.MILLIS_PER_HOUR
            + 2 * dates.MILLIS_PER_MINUTE
            + 3 * dates.MILLIS_PER_SECOND
            + 4
        )

    def test_date_to_datetime_is_midnight(self):
        date = dates.make_date(2012, 6, 15)
        assert dates.date_to_datetime(date) == dates.make_datetime(2012, 6, 15)

    def test_datetime_to_date_truncates(self):
        ts = dates.make_datetime(2012, 6, 15, 23, 59, 59, 999)
        assert dates.datetime_to_date(ts) == dates.make_date(2012, 6, 15)


class TestFormatting:
    def test_format_date_spec_shape(self):
        assert dates.format_date(dates.make_date(2010, 3, 7)) == "2010-03-07"

    def test_format_datetime_spec_shape(self):
        ts = dates.make_datetime(2010, 3, 7, 4, 5, 6, 78)
        assert dates.format_datetime(ts) == "2010-03-07T04:05:06.078+0000"

    def test_parse_date_roundtrip_literal(self):
        assert dates.parse_date("2012-11-30") == dates.make_date(2012, 11, 30)

    def test_parse_datetime_roundtrip_literal(self):
        text = "2012-11-30T23:01:02.003+0000"
        assert dates.format_datetime(dates.parse_datetime(text)) == text

    @given(st.integers(min_value=0, max_value=40000))
    def test_date_format_parse_roundtrip(self, date):
        assert dates.parse_date(dates.format_date(date)) == date

    @given(st.integers(min_value=0, max_value=40000 * dates.MILLIS_PER_DAY))
    def test_datetime_format_parse_roundtrip(self, ts):
        assert dates.parse_datetime(dates.format_datetime(ts)) == ts


class TestExtraction:
    def test_year_month_day(self):
        ts = dates.make_datetime(2011, 9, 21, 10)
        assert dates.year_of(ts) == 2011
        assert dates.month_of(ts) == 9
        assert dates.day_of(ts) == 21


class TestMonthsBetween:
    def test_bi21_example(self):
        # Spec BI 21: Jan 31 to Mar 1 counts as 3 months.
        start = dates.make_datetime(2012, 1, 31)
        end = dates.make_datetime(2012, 3, 1)
        assert dates.months_between_inclusive(start, end) == 3

    def test_same_month_is_one(self):
        start = dates.make_datetime(2012, 5, 1)
        end = dates.make_datetime(2012, 5, 31)
        assert dates.months_between_inclusive(start, end) == 1

    def test_across_year_boundary(self):
        start = dates.make_datetime(2011, 12, 15)
        end = dates.make_datetime(2012, 1, 15)
        assert dates.months_between_inclusive(start, end) == 2

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            dates.months_between_inclusive(100, 50)

    @given(
        st.integers(min_value=0, max_value=20000 * dates.MILLIS_PER_DAY),
        st.integers(min_value=0, max_value=2000 * dates.MILLIS_PER_DAY),
    )
    def test_positive_and_monotone(self, start, delta):
        end = start + delta
        months = dates.months_between_inclusive(start, end)
        assert months >= 1
        assert months <= delta // (28 * dates.MILLIS_PER_DAY) + 2


class TestAddMonths:
    def test_simple_shift(self):
        date = dates.make_date(2012, 3, 10)
        assert dates.add_months(date, 2) == dates.make_date(2012, 5, 10)

    def test_clamps_to_month_end(self):
        date = dates.make_date(2012, 1, 31)
        assert dates.add_months(date, 1) == dates.make_date(2012, 2, 29)

    def test_negative_shift(self):
        date = dates.make_date(2012, 1, 15)
        assert dates.add_months(date, -1) == dates.make_date(2011, 12, 15)

    def test_december_shift(self):
        date = dates.make_date(2012, 11, 30)
        assert dates.add_months(date, 1) == dates.make_date(2012, 12, 30)


class TestMonthWindow:
    def test_covers_exactly_one_month(self):
        start, end = dates.month_window(2012, 6)
        assert start == dates.make_datetime(2012, 6, 1)
        assert end == dates.make_datetime(2012, 7, 1)
        # Closed-open: the last millisecond of June is in, July 1 is out.
        assert start <= end - 1 < end

    def test_december_wraps_to_january(self):
        start, end = dates.month_window(2011, 12)
        assert start == dates.make_datetime(2011, 12, 1)
        assert end == dates.make_datetime(2012, 1, 1)

    def test_windows_tile_the_year(self):
        """Consecutive month windows must share their boundary, across
        the December -> January wrap included."""
        previous_end = dates.month_window(2011, 1)[0]
        for offset in range(24):
            year, month = 2011 + offset // 12, 1 + offset % 12
            start, end = dates.month_window(year, month)
            assert start == previous_end
            assert start < end
            previous_end = end

    def test_leap_february(self):
        start, end = dates.month_window(2012, 2)
        assert (end - start) // dates.MILLIS_PER_DAY == 29


class TestMonthBucket:
    def test_epoch_month_is_zero(self):
        assert dates.month_bucket(dates.make_datetime(1970, 1, 15)) == 0
        assert dates.month_bucket(dates.make_datetime(1970, 2, 1)) == 1

    def test_buckets_follow_month_windows(self):
        """Every timestamp inside month_window(y, m) lands in the same
        bucket, and the next window starts a new bucket."""
        for year, month in [(2010, 1), (2011, 12), (2012, 2)]:
            start, end = dates.month_window(year, month)
            assert dates.month_bucket(start) == dates.month_bucket(end - 1)
            assert dates.month_bucket(end) == dates.month_bucket(start) + 1

    def test_monotone_over_years(self):
        assert (
            dates.month_bucket(dates.make_datetime(2012, 1, 1))
            - dates.month_bucket(dates.make_datetime(2011, 1, 1))
        ) == 12
