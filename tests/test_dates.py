"""Unit tests for repro.util.dates (spec Table 2.1 formats)."""

import pytest
from hypothesis import given, strategies as st

from repro.util import dates


class TestConstruction:
    def test_epoch_is_day_zero(self):
        assert dates.make_date(1970, 1, 1) == 0

    def test_make_date_ordering(self):
        assert dates.make_date(2010, 1, 1) < dates.make_date(2010, 1, 2)
        assert dates.make_date(2010, 12, 31) < dates.make_date(2011, 1, 1)

    def test_make_datetime_components(self):
        ts = dates.make_datetime(2010, 1, 1, 1, 2, 3, 4)
        assert ts == (
            dates.make_date(2010, 1, 1) * dates.MILLIS_PER_DAY
            + 1 * dates.MILLIS_PER_HOUR
            + 2 * dates.MILLIS_PER_MINUTE
            + 3 * dates.MILLIS_PER_SECOND
            + 4
        )

    def test_date_to_datetime_is_midnight(self):
        date = dates.make_date(2012, 6, 15)
        assert dates.date_to_datetime(date) == dates.make_datetime(2012, 6, 15)

    def test_datetime_to_date_truncates(self):
        ts = dates.make_datetime(2012, 6, 15, 23, 59, 59, 999)
        assert dates.datetime_to_date(ts) == dates.make_date(2012, 6, 15)


class TestFormatting:
    def test_format_date_spec_shape(self):
        assert dates.format_date(dates.make_date(2010, 3, 7)) == "2010-03-07"

    def test_format_datetime_spec_shape(self):
        ts = dates.make_datetime(2010, 3, 7, 4, 5, 6, 78)
        assert dates.format_datetime(ts) == "2010-03-07T04:05:06.078+0000"

    def test_parse_date_roundtrip_literal(self):
        assert dates.parse_date("2012-11-30") == dates.make_date(2012, 11, 30)

    def test_parse_datetime_roundtrip_literal(self):
        text = "2012-11-30T23:01:02.003+0000"
        assert dates.format_datetime(dates.parse_datetime(text)) == text

    @given(st.integers(min_value=0, max_value=40000))
    def test_date_format_parse_roundtrip(self, date):
        assert dates.parse_date(dates.format_date(date)) == date

    @given(st.integers(min_value=0, max_value=40000 * dates.MILLIS_PER_DAY))
    def test_datetime_format_parse_roundtrip(self, ts):
        assert dates.parse_datetime(dates.format_datetime(ts)) == ts


class TestExtraction:
    def test_year_month_day(self):
        ts = dates.make_datetime(2011, 9, 21, 10)
        assert dates.year_of(ts) == 2011
        assert dates.month_of(ts) == 9
        assert dates.day_of(ts) == 21


class TestMonthsBetween:
    def test_bi21_example(self):
        # Spec BI 21: Jan 31 to Mar 1 counts as 3 months.
        start = dates.make_datetime(2012, 1, 31)
        end = dates.make_datetime(2012, 3, 1)
        assert dates.months_between_inclusive(start, end) == 3

    def test_same_month_is_one(self):
        start = dates.make_datetime(2012, 5, 1)
        end = dates.make_datetime(2012, 5, 31)
        assert dates.months_between_inclusive(start, end) == 1

    def test_across_year_boundary(self):
        start = dates.make_datetime(2011, 12, 15)
        end = dates.make_datetime(2012, 1, 15)
        assert dates.months_between_inclusive(start, end) == 2

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            dates.months_between_inclusive(100, 50)

    @given(
        st.integers(min_value=0, max_value=20000 * dates.MILLIS_PER_DAY),
        st.integers(min_value=0, max_value=2000 * dates.MILLIS_PER_DAY),
    )
    def test_positive_and_monotone(self, start, delta):
        end = start + delta
        months = dates.months_between_inclusive(start, end)
        assert months >= 1
        assert months <= delta // (28 * dates.MILLIS_PER_DAY) + 2


class TestAddMonths:
    def test_simple_shift(self):
        date = dates.make_date(2012, 3, 10)
        assert dates.add_months(date, 2) == dates.make_date(2012, 5, 10)

    def test_clamps_to_month_end(self):
        date = dates.make_date(2012, 1, 31)
        assert dates.add_months(date, 1) == dates.make_date(2012, 2, 29)

    def test_negative_shift(self):
        date = dates.make_date(2012, 1, 15)
        assert dates.add_months(date, -1) == dates.make_date(2011, 12, 15)

    def test_december_shift(self):
        date = dates.make_date(2012, 11, 30)
        assert dates.add_months(date, 1) == dates.make_date(2012, 12, 30)
