"""The redesigned Snapshot API (:mod:`repro.exec.snapshot`).

Covers the four satellite contracts of the redesign:

* :class:`SnapshotConfig` is the *only* place the snapshot environment
  variables are parsed, and explicit knobs always win over them;
* :func:`provide_snapshot` degrades to inline — visibly, via the
  ``repro_snapshot_fallback_total`` counter — when handed a live graph;
* mapped ship tokens are self-contained: the payload carries only
  buffer coordinates, the overlay and the task context — zero
  object-state pickle bytes — and workers rebuild the entity store
  from the snapfile's ``__entities__`` section;
* the mapped providers survive ``ship()`` → ``pickle`` →
  ``materialize()`` with row-identical reads, including an overlaid
  (dirty-manager) snapshot whose deltas must ride along with the
  mapped base — the full 25 BI + 14 IC differential runs the
  entity-section rebuild against the parent's object-state view,
  plus a ``spawn``-method pool leg that cold-starts from the file
  alone.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.exec import (
    WorkerPool,
    Task,
)
from repro.exec.snapshot import (
    ENV_COMPACT_FRACTION,
    ENV_FROZEN,
    ENV_MORSEL_SIZE,
    ENV_PROVIDER,
    InlineSnapshot,
    MmapFileSnapshot,
    SharedMemorySnapshot,
    SnapshotConfig,
    SnapshotHandle,
    provide_snapshot,
)
from repro.graph.frozen import FreezeManager, freeze
from repro.graph.store import SocialGraph
from repro.obs.metrics import registry


@pytest.fixture()
def clean_env(monkeypatch):
    for name in (ENV_PROVIDER, ENV_FROZEN, ENV_COMPACT_FRACTION,
                 ENV_MORSEL_SIZE):
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


class TestSnapshotConfig:
    def test_defaults(self, clean_env):
        resolved = SnapshotConfig().resolved()
        assert resolved.provider == "inline"
        assert resolved.freeze is True
        assert resolved.compact_fraction == 0.25
        assert resolved.morsel_size is None

    def test_environment_fallbacks(self, clean_env):
        clean_env.setenv(ENV_PROVIDER, "mmap_file")
        clean_env.setenv(ENV_FROZEN, "0")
        clean_env.setenv(ENV_COMPACT_FRACTION, "0.5")
        clean_env.setenv(ENV_MORSEL_SIZE, "1024")
        resolved = SnapshotConfig().resolved()
        assert resolved.provider == "mmap_file"
        assert resolved.freeze is False
        assert resolved.compact_fraction == 0.5
        assert resolved.morsel_size == 1024

    def test_explicit_knobs_beat_environment(self, clean_env):
        clean_env.setenv(ENV_PROVIDER, "shared_memory")
        clean_env.setenv(ENV_FROZEN, "0")
        resolved = SnapshotConfig(provider="inline", freeze=True).resolved()
        assert resolved.provider == "inline"
        assert resolved.freeze is True

    def test_unknown_provider_rejected(self, clean_env):
        with pytest.raises(ValueError, match="provider"):
            SnapshotConfig(provider="nfs").resolved()
        clean_env.setenv(ENV_PROVIDER, "bogus")
        with pytest.raises(ValueError, match="provider"):
            SnapshotConfig().resolved()

    def test_invalid_numbers_rejected(self, clean_env):
        with pytest.raises(ValueError):
            SnapshotConfig(compact_fraction=-0.1).resolved()
        with pytest.raises(ValueError):
            SnapshotConfig(morsel_size=0).resolved()

    def test_configuration_dict(self, clean_env):
        document = SnapshotConfig(provider="mmap_file").configuration_dict()
        assert document == {
            "provider": "mmap_file",
            "freeze": True,
            "compact_fraction": 0.25,
            "morsel_size": None,
        }

    def test_compact_fraction_resolver_delegates_here(self, clean_env):
        from repro.graph.delta import resolve_compact_fraction

        clean_env.setenv(ENV_COMPACT_FRACTION, "0.75")
        assert resolve_compact_fraction(None) == 0.75


class TestProvideSnapshot:
    def test_inline_for_inline_provider(self, tiny_graph, clean_env):
        handle = provide_snapshot(tiny_graph)
        assert isinstance(handle, InlineSnapshot)
        assert handle.provider == "inline"
        assert handle.bytes_mapped() == 0

    def test_live_graph_falls_back_visibly(self, tiny_graph, clean_env):
        counter = registry().counter(
            "repro_snapshot_fallback_total", reason="live-graph"
        )
        before = counter.value
        handle = provide_snapshot(
            tiny_graph, config=SnapshotConfig(provider="mmap_file")
        )
        assert isinstance(handle, InlineSnapshot)
        assert counter.value == before + 1

    def test_mapped_providers_for_frozen_graph(self, tiny_graph, clean_env):
        frozen = freeze(tiny_graph)
        for provider, cls in (
            ("mmap_file", MmapFileSnapshot),
            ("shared_memory", SharedMemorySnapshot),
        ):
            handle = provide_snapshot(
                frozen, config=SnapshotConfig(provider=provider)
            )
            try:
                assert isinstance(handle, cls)
                assert handle.provider == provider
                assert handle.bytes_mapped() > 0
                assert isinstance(handle, SnapshotHandle)
            finally:
                handle.close()


class TestSelfContainedShip:
    @pytest.mark.parametrize("provider", ["mmap_file", "shared_memory"])
    def test_ship_payload_has_zero_object_state_bytes(
        self, tiny_graph, clean_env, provider
    ):
        """The ship token is buffer coordinates + overlay + context
        only: no pickled store travels, and the stub stays thousands of
        times smaller than the entity state it replaces."""
        frozen = freeze(tiny_graph)
        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider=provider)
        )
        try:
            token = handle.ship()
            coordinate = "path" if provider == "mmap_file" else "shm_name"
            assert set(token.payload) == {
                coordinate, "overlay", "context", "origin_pid"
            }
            assert "state" not in token.payload
            assert token.payload["overlay"] is None
            stub_bytes = len(pickle.dumps(token))
            gauges = registry()
            assert gauges.gauge(
                "repro_snapshot_state_bytes", section="stub"
            ).value == stub_bytes
            entity_bytes = gauges.gauge(
                "repro_snapshot_state_bytes", section="entities"
            ).value
            # A graph with hundreds of messages serializes to tens of
            # kilobytes of entity rows; the stub must not scale with it.
            assert entity_bytes > 10_000
            assert stub_bytes < 1_000
        finally:
            handle.close()


def _bi18_rows(graph, binding):
    from repro.queries.bi import ALL_QUERIES

    return ALL_QUERIES[18][0](graph, *binding)


class TestShipMaterialize:
    @pytest.mark.parametrize("provider", ["mmap_file", "shared_memory"])
    def test_round_trip_row_identity(self, tiny_graph, tiny_config,
                                     provider):
        from repro.params.curation import ParameterGenerator

        frozen = freeze(tiny_graph)
        params = ParameterGenerator(tiny_graph, tiny_config)
        binding = tuple(params.bi(18, count=1)[0])
        expected = _bi18_rows(frozen, binding)
        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider=provider)
        )
        try:
            shipped = pickle.loads(pickle.dumps(handle.ship()))
            attached = shipped.materialize()
            try:
                assert _bi18_rows(attached.graph, binding) == expected
            finally:
                attached.close()
        finally:
            handle.close()

    def test_inline_ship_materialize(self, tiny_graph):
        handle = InlineSnapshot(tiny_graph, {"k": 1})
        attached = handle.ship().materialize()
        assert attached.graph is tiny_graph
        assert attached.context == {"k": 1}


class TestOverlayCarry:
    def test_dirty_manager_snapshot_maps_base_and_ships_overlay(
        self, tiny_net, tiny_config
    ):
        """An overlaid view must NOT silently fall back to the live
        path: the clean base columns map, the overlay pickles beside
        them, and a worker's reads match the parent's."""
        from repro.datagen.update_streams import build_update_streams
        from repro.params.curation import ParameterGenerator
        from repro.queries.bi import ALL_QUERIES
        from repro.queries.interactive.updates import ALL_UPDATES

        live = SocialGraph.from_data(tiny_net, until=tiny_net.cutoff)
        manager = FreezeManager(live)
        try:
            manager.frozen()
            for op in build_update_streams(tiny_net)[:25]:
                try:
                    ALL_UPDATES[op.operation_id][0](live, op.params)
                except (KeyError, ValueError):
                    pass
            overlaid = manager.frozen()
            assert overlaid.delta_overlay is not None
            handle = provide_snapshot(
                overlaid, config=SnapshotConfig(provider="mmap_file")
            )
            try:
                assert isinstance(handle, MmapFileSnapshot)
                attached = pickle.loads(
                    pickle.dumps(handle.ship())
                ).materialize()
                try:
                    params = ParameterGenerator(live, tiny_config)
                    for number in (1, 4, 9, 18):
                        for binding in params.bi(number, count=1):
                            binding = tuple(binding)
                            query = ALL_QUERIES[number][0]
                            assert (
                                query(attached.graph, *binding)
                                == query(overlaid, *binding)
                            ), number
                finally:
                    attached.close()
            finally:
                handle.close()
        finally:
            manager.detach()


class TestFullDifferential:
    @pytest.mark.parametrize("provider", ["mmap_file", "shared_memory"])
    def test_all_reads_identical_to_inline(self, tiny_graph, tiny_config,
                                           provider):
        """Every BI and IC read returns identical rows over a
        materialized mapped snapshot and the original frozen graph."""
        from repro.params.curation import ParameterGenerator
        from repro.queries.bi import ALL_QUERIES
        from repro.queries.interactive.complex import ALL_COMPLEX

        frozen = freeze(tiny_graph)
        params = ParameterGenerator(tiny_graph, tiny_config)
        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider=provider)
        )
        try:
            attached = pickle.loads(pickle.dumps(handle.ship())).materialize()
            try:
                graph = attached.graph
                for number, (query, _info) in sorted(ALL_QUERIES.items()):
                    for binding in params.bi(number, count=2):
                        binding = tuple(binding)
                        assert (
                            query(graph, *binding)
                            == query(frozen, *binding)
                        ), f"bi{number}"
                for number, (query, _info) in sorted(ALL_COMPLEX.items()):
                    for binding in params.interactive(number, count=2):
                        binding = tuple(binding)
                        assert (
                            query(graph, *binding)
                            == query(frozen, *binding)
                        ), f"ic{number}"
            finally:
                attached.close()
        finally:
            handle.close()

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_differential_all_reads(self, tiny_graph,
                                               tiny_config, clean_env):
        """Cold-started spawn workers (no fork inheritance, no
        object-state pickle) return the same rows as the parent's
        serial pass for every BI and IC read."""
        from repro.exec.pool import ENV_START_METHOD
        from repro.params.curation import ParameterGenerator
        from repro.queries.bi import ALL_QUERIES
        from repro.queries.interactive.complex import ALL_COMPLEX

        clean_env.setenv(ENV_START_METHOD, "spawn")
        frozen = freeze(tiny_graph)
        params = ParameterGenerator(tiny_graph, tiny_config)
        tasks = []
        expected = []
        for number, (query, _info) in sorted(ALL_QUERIES.items()):
            binding = tuple(params.bi(number, count=1)[0])
            tasks.append(Task(len(tasks), "bi", (number, binding)))
            expected.append(query(frozen, *binding))
        for number, (query, _info) in sorted(ALL_COMPLEX.items()):
            binding = tuple(params.interactive(number, count=1)[0])
            tasks.append(Task(len(tasks), "ic", (number, binding)))
            expected.append(query(frozen, *binding))
        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider="mmap_file")
        )
        try:
            merged = WorkerPool(workers=2, snapshot=handle).run(tasks)
            assert not merged.failures
            assert merged.values() == expected
        finally:
            handle.close()


class TestPoolIntegration:
    @pytest.mark.parametrize("provider", ["inline", "mmap_file",
                                          "shared_memory"])
    def test_process_pool_over_each_provider(self, tiny_graph, tiny_config,
                                             provider, clean_env):
        from repro.params.curation import ParameterGenerator

        frozen = freeze(tiny_graph)
        params = ParameterGenerator(tiny_graph, tiny_config)
        binding = tuple(params.bi(18, count=1)[0])
        expected = _bi18_rows(frozen, binding)
        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider=provider)
        )
        try:
            pool = WorkerPool(workers=2, snapshot=handle)
            merged = pool.run(
                [Task(0, "bi", (18, binding)), Task(1, "bi", (18, binding))]
            )
            assert not merged.failures
            for outcome in merged.outcomes:
                assert outcome.value == expected
        finally:
            handle.close()

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_ships_snapshot_by_value(self, tiny_graph,
                                                tiny_config, clean_env):
        """Without fork, workers must materialize the shipped payload:
        the mmap_file provider attaches by path instead of pickling
        columns."""
        from repro.exec.pool import ENV_START_METHOD
        from repro.params.curation import ParameterGenerator

        clean_env.setenv(ENV_START_METHOD, "spawn")
        frozen = freeze(tiny_graph)
        params = ParameterGenerator(tiny_graph, tiny_config)
        binding = tuple(params.bi(18, count=1)[0])
        expected = _bi18_rows(frozen, binding)
        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider="mmap_file")
        )
        try:
            pool = WorkerPool(workers=2, snapshot=handle)
            merged = pool.run([Task(0, "bi", (18, binding))])
            assert not merged.failures
            assert merged.outcomes[0].value == expected
        finally:
            handle.close()

    def test_invalid_start_method_rejected(self, tiny_graph, clean_env):
        from repro.exec.pool import ENV_START_METHOD

        clean_env.setenv(ENV_START_METHOD, "telepathy")
        frozen = freeze(tiny_graph)
        pool = WorkerPool(workers=2, snapshot=InlineSnapshot(frozen))
        with pytest.raises(ValueError, match="telepathy"):
            pool.run([Task(0, "bi", (1, (os.environ and None,)))])


class TestObservability:
    def test_bytes_mapped_gauge_published(self, tiny_graph, clean_env):
        frozen = freeze(tiny_graph)
        handle = provide_snapshot(
            frozen, config=SnapshotConfig(provider="shared_memory")
        )
        try:
            gauge = registry().gauge(
                "repro_snapshot_bytes_mapped", provider="shared_memory"
            )
            assert gauge.value == handle.bytes_mapped() > 0
        finally:
            handle.close()
