"""Tests for the driver: mix, scheduler, runner, on-time rule."""

import pytest

from repro.datagen.update_streams import build_update_streams
from repro.driver.mix import (
    FREQUENCIES,
    apply_time_compression,
    frequencies_for_scale_factor,
)
from repro.driver.runner import Driver, DriverReport, ResultsLogEntry
from repro.driver.scheduler import ScheduledOperation, Scheduler
from repro.graph.store import SocialGraph
from repro.params.curation import ParameterGenerator


@pytest.fixture(scope="module")
def driver_setup(small_net):
    graph = SocialGraph.from_data(small_net, until=small_net.cutoff)
    params = ParameterGenerator(graph, small_net.config)
    updates = build_update_streams(small_net)
    frequencies = frequencies_for_scale_factor(1.0)
    parameters = {n: params.interactive(n, count=5) for n in range(1, 15)}
    return graph, updates, frequencies, parameters


class TestMix:
    def test_sf1_column_matches_table_3_1(self):
        assert FREQUENCIES[1.0] == {
            1: 26, 2: 37, 3: 69, 4: 36, 5: 57, 6: 129, 7: 87,
            8: 45, 9: 157, 10: 30, 11: 16, 12: 44, 13: 19, 14: 49,
        }

    def test_constant_frequencies_across_sfs(self):
        # Spec Table B.1: queries 1, 2, 4, 12, 13, 14 are SF-independent.
        for query in (1, 2, 4, 12, 13, 14):
            values = {FREQUENCIES[sf][query] for sf in FREQUENCIES}
            assert len(values) == 1

    def test_query8_decreases_with_sf(self):
        values = [FREQUENCIES[sf][8] for sf in sorted(FREQUENCIES)]
        assert values == sorted(values, reverse=True)

    def test_nearest_sf_fallback(self):
        assert frequencies_for_scale_factor(0.01) == FREQUENCIES[1.0]
        assert frequencies_for_scale_factor(2.0) == FREQUENCIES[1.0]
        assert frequencies_for_scale_factor(700.0) == FREQUENCIES[1000.0]

    def test_rejects_bad_sf(self):
        with pytest.raises(ValueError):
            frequencies_for_scale_factor(0)

    def test_time_compression_preserves_ratios(self):
        base = {1: 20, 2: 40}
        squeezed = apply_time_compression(base, 0.5)
        assert squeezed == {1: 10, 2: 20}

    def test_time_compression_floor(self):
        assert apply_time_compression({1: 3}, 0.1) == {1: 1}

    def test_time_compression_rejects_non_positive(self):
        with pytest.raises(ValueError):
            apply_time_compression({1: 1}, 0)


class TestScheduler:
    def test_updates_keep_their_timestamps(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        schedule = Scheduler(updates, frequencies, parameters).build()
        scheduled_updates = [op for op in schedule if op.kind == "update"]
        assert len(scheduled_updates) == len(updates)
        assert [op.due for op in scheduled_updates] == [
            u.timestamp for u in updates
        ]

    def test_complex_read_counts_follow_frequencies(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        scheduler = Scheduler(updates, frequencies, parameters)
        schedule = scheduler.build()
        from collections import Counter

        issued = Counter(
            op.number for op in schedule if op.kind == "complex"
        )
        for query, frequency in frequencies.items():
            assert issued[query] == len(updates) // frequency

    def test_expected_mix_matches_build(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        scheduler = Scheduler(updates, frequencies, parameters)
        schedule = scheduler.build()
        from collections import Counter

        issued = Counter(op.number for op in schedule if op.kind == "complex")
        assert dict(issued) == {
            k: v for k, v in scheduler.expected_mix().items() if v > 0
        }

    def test_schedule_sorted_by_due_time(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        schedule = Scheduler(updates, frequencies, parameters).build()
        dues = [op.due for op in schedule]
        assert dues == sorted(dues)

    def test_parameters_cycle(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        schedule = Scheduler(updates, frequencies, parameters).build()
        ops = [op for op in schedule if op.kind == "complex" and op.number == 9]
        bindings = parameters[9]
        for index, op in enumerate(ops):
            assert op.params == bindings[index % len(bindings)]

    def test_missing_parameters_skip_query(self, driver_setup):
        graph, updates, frequencies, _ = driver_setup
        schedule = Scheduler(updates, frequencies, {1: []}).build()
        assert all(op.kind == "update" for op in schedule)


class TestRunner:
    def test_run_executes_everything(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        # A fresh graph per run: updates mutate it.
        schedule = Scheduler(updates[:200], frequencies, parameters).build()
        report = Driver(_fresh_graph(driver_setup), seed=7).run(schedule)
        names = {e.operation for e in report.log}
        assert any(name.startswith("IU") for name in names)
        assert any(name.startswith("IC") for name in names)
        assert any(name.startswith("IS") for name in names)

    def test_short_sequences_follow_complex_reads(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        schedule = Scheduler(updates[:300], frequencies, parameters).build()
        report = Driver(_fresh_graph(driver_setup), seed=7).run(schedule)
        log = report.log
        for index, entry in enumerate(log):
            if entry.operation.startswith("IS"):
                # Walk back: short reads only appear after a complex read.
                previous = [
                    e.operation
                    for e in log[:index]
                    if e.operation.startswith("IC")
                ]
                assert previous
                break
        else:
            pytest.fail("no short reads issued")

    def test_deterministic_operation_sequence(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        schedule = Scheduler(updates[:200], frequencies, parameters).build()
        ops1 = [
            e.operation
            for e in Driver(_fresh_graph(driver_setup), seed=7).run(schedule).log
        ]
        ops2 = [
            e.operation
            for e in Driver(_fresh_graph(driver_setup), seed=7).run(schedule).log
        ]
        assert ops1 == ops2

    def test_tcr_paces_execution(self, driver_setup):
        graph, updates, frequencies, parameters = driver_setup
        subset = updates[:20]
        span_sim_seconds = (subset[-1].timestamp - subset[0].timestamp) / 1000
        tcr = 0.05 / max(span_sim_seconds, 1e-9)  # ~50 ms of wall time
        schedule = Scheduler(subset, frequencies, parameters).build()
        report = Driver(_fresh_graph(driver_setup), time_compression_ratio=tcr).run(
            schedule
        )
        assert report.wall_seconds >= 0.04
        assert report.is_valid_run  # everything started on schedule


class TestReport:
    def _entry(self, name, delay, duration=0.001):
        return ResultsLogEntry(name, 100.0, 100.0 + delay, duration, 1)

    def test_on_time_fraction(self):
        report = DriverReport(
            log=[self._entry("IC 1", 0.1), self._entry("IC 2", 2.0)],
            wall_seconds=1.0,
        )
        assert report.on_time_fraction() == 0.5
        assert not report.is_valid_run

    def test_valid_run_at_95_percent(self):
        entries = [self._entry("IC 1", 0.0)] * 19 + [self._entry("IC 1", 5.0)]
        report = DriverReport(log=entries, wall_seconds=1.0)
        assert report.on_time_fraction() == 0.95
        assert report.is_valid_run

    def test_throughput(self):
        report = DriverReport(
            log=[self._entry("IU 2", 0.0)] * 50, wall_seconds=2.0
        )
        assert report.throughput == 25.0

    def test_per_operation_stats(self):
        report = DriverReport(
            log=[
                self._entry("IC 1", 0, duration=0.002),
                self._entry("IC 1", 0, duration=0.004),
                self._entry("IU 2", 0, duration=0.001),
            ],
            wall_seconds=1.0,
        )
        stats = report.per_operation_stats()
        assert stats["IC 1"]["count"] == 2
        assert stats["IC 1"]["mean_ms"] == pytest.approx(3.0)
        assert "IU 2" in stats

    def test_format_table_mentions_everything(self):
        report = DriverReport(
            log=[self._entry("IC 1", 0.0)], wall_seconds=1.0
        )
        text = report.format_table()
        assert "IC 1" in text and "ops/s" in text

    def test_empty_log(self):
        report = DriverReport(log=[], wall_seconds=0.5)
        assert report.on_time_fraction() == 1.0
        assert report.total_operations == 0


def _fresh_graph(driver_setup):
    """A new bulk graph sharing nothing with the fixture graph."""
    return driver_setup[0].copy()
